#![warn(missing_docs)]

//! # dsd — dependable storage designer
//!
//! A Rust reproduction of *"Designing dependable storage solutions for
//! shared application environments"* (Gaonkar, Keeton, Merchant, Sanders —
//! DSN 2006): an automated design tool that chooses data protection
//! techniques (remote mirroring, snapshots, tape backup, offsite
//! vaulting), their configuration parameters, and the resources backing
//! them for *multiple* applications sharing an infrastructure, minimizing
//! amortized outlays plus expected downtime/data-loss penalties.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`units`] — typed quantities (GB, MB/s, $, $/hr, time spans, annual
//!   rates);
//! * [`workload`] — application workloads and business requirements
//!   (Table 1);
//! * [`protection`] — the copy-hierarchy technique framework (Table 2);
//! * [`resources`] — device catalog, sites, topology, provisioning
//!   (Table 3);
//! * [`failure`] — failure scopes and annualized likelihoods;
//! * [`recovery`] — the contention-aware recovery evaluation engine;
//! * [`core`] — the design solver (Algorithm 1), configuration solver,
//!   and baseline heuristics;
//! * [`obs`] — structured tracing (spans, events) and a metrics registry
//!   instrumented throughout the search and recovery stack, with JSONL
//!   and Chrome `trace_event` exporters;
//! * [`scenarios`] — the paper's evaluation environments and one driver
//!   per table/figure;
//! * [`trace`] — synthetic block-I/O trace generation and analysis
//!   (substitutes the paper's proprietary cello2002 traces).
//!
//! # Quickstart
//!
//! ```
//! use dsd::core::{Budget, DesignSolver};
//! use dsd::scenarios::environments::peer_sites;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let env = peer_sites();
//! let mut rng = ChaCha8Rng::seed_from_u64(2006);
//! let outcome = DesignSolver::new(&env).solve(Budget::iterations(10), &mut rng);
//! let best = outcome.best.expect("the case study is feasible");
//! println!("annual cost: {}", best.cost().total());
//! for (app, assignment) in best.assignments() {
//!     println!("{app}: {}", env.catalog[assignment.technique].name);
//! }
//! ```

pub use dsd_core as core;
pub use dsd_failure as failure;
pub use dsd_obs as obs;
pub use dsd_protection as protection;
pub use dsd_recovery as recovery;
pub use dsd_resources as resources;
pub use dsd_scenarios as scenarios;
pub use dsd_trace as trace;
pub use dsd_units as units;
pub use dsd_workload as workload;
