//! Designing against SLA objectives instead of linear penalty rates.
//!
//! The paper charges every minute of outage and loss linearly. Real
//! contracts are usually deductible: outages inside the recovery-time
//! objective (RTO) and losses inside the recovery-point objective (RPO)
//! are free; beyond them the rate applies plus a breach fine. This
//! example designs the same workloads under both models and shows how
//! the objectives change what is worth buying.
//!
//! ```text
//! cargo run --release --example sla_objectives
//! ```

use dsd::core::{Budget, DesignSolver};
use dsd::scenarios::environments::peer_sites_with;
use dsd::units::{Dollars, TimeSpan};
use dsd::workload::{PenaltySchedule, WorkloadSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let linear_env = peer_sites_with(8);

    // The same eight applications under a typical enterprise SLA:
    // RTO 4 h, RPO 24 h, $250K per breached objective.
    let sla = PenaltySchedule::Deductible {
        rto: TimeSpan::from_hours(4.0),
        rpo: TimeSpan::from_hours(24.0),
        breach_fine: Dollars::new(250_000.0),
    };
    let mut sla_env = peer_sites_with(8);
    let mut set = WorkloadSet::new();
    for app in linear_env.workloads.iter() {
        set.push(app.profile.clone().with_schedule(sla));
    }
    sla_env.workloads = set;

    let budget = Budget::iterations(250);
    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    let linear = DesignSolver::new(&linear_env).solve(budget, &mut rng).best.unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    let under_sla = DesignSolver::new(&sla_env).solve(budget, &mut rng).best.unwrap();

    println!("{:<18} {:>12} {:>14} {:>12}", "model", "outlay $M", "penalties $M", "total $M");
    for (name, best) in [("linear (paper)", &linear), ("SLA deductible", &under_sla)] {
        let c = best.cost();
        println!(
            "{:<18} {:>12.2} {:>14.2} {:>12.2}",
            name,
            c.outlay.as_f64() / 1e6,
            c.penalties.total().as_f64() / 1e6,
            c.total().as_f64() / 1e6
        );
    }

    println!("\ntechniques chosen:");
    println!("{:<26} {:<34} {:<34}", "application", "linear", "SLA");
    for app in linear_env.workloads.iter() {
        let l = &linear_env.catalog[linear.assignment(app.id).unwrap().technique].name;
        let s = &sla_env.catalog[under_sla.assignment(app.id).unwrap().technique].name;
        println!("{:<26} {:<34} {:<34}", app.name, l, s);
    }
    println!(
        "\nwith a 24 h RPO, the 12 h snapshot staleness that dominated the linear\n\
         model's loss penalties becomes free — protection budgets shift accordingly."
    );
}
