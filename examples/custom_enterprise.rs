//! Designing protection for a custom enterprise: three sites with mixed
//! hardware, randomized workloads, and a per-scenario recovery report.
//!
//! Shows the public API beyond the canned paper environments: building a
//! topology, generating workloads, solving, and drilling into *why* the
//! chosen design behaves as it does under each failure scenario.
//!
//! ```text
//! cargo run --release --example custom_enterprise
//! ```

use std::sync::Arc;

use dsd::core::{Budget, DesignSolver, Environment};
use dsd::failure::{FailureModel, FailureRates};
use dsd::protection::TechniqueCatalog;
use dsd::recovery::Evaluator;
use dsd::resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd::units::PerYear;
use dsd::workload::{GeneratorConfig, WorkloadGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Three sites: a high-end production site, a mid-range regional site,
    // and a low-cost DR bunker without compute.
    let sites = vec![
        Site::new(0, "prod")
            .with_array_slot(DeviceSpec::xp1200())
            .with_array_slot(DeviceSpec::eva800())
            .with_tape_library(DeviceSpec::tape_library_high())
            .with_compute(12),
        Site::new(1, "regional")
            .with_array_slot(DeviceSpec::eva800())
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_med())
            .with_compute(6),
        Site::new(2, "bunker")
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_med())
            .with_compute(2),
    ];
    let topology = Arc::new(Topology::fully_connected(sites, NetworkSpec::med()));

    // Six workloads: perturbed variants of the Table 1 mix.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let generator = WorkloadGenerator::new(GeneratorConfig::default());
    let workloads = generator.generate(6, &mut rng);

    // A riskier failure model than the paper's: object errors monthly.
    let rates = FailureRates::sensitivity_baseline().with_data_object(PerYear::new(12.0));
    let env =
        Environment::new(workloads, topology, TechniqueCatalog::table2(), FailureModel::new(rates));

    let outcome = DesignSolver::new(&env).solve(Budget::iterations(200), &mut rng);
    let Some(best) = outcome.best else {
        println!("no feasible design for this enterprise — add hardware");
        return;
    };

    println!("== chosen design ==");
    for (app, a) in best.assignments() {
        println!(
            "  {:<26} {:<30} primary@{}",
            env.workloads[*app].name, env.catalog[a.technique].name, a.placement.primary
        );
    }
    println!("  annual cost: {}\n", best.cost());

    // Drill into recovery behavior: what actually happens, scenario by
    // scenario?
    println!("== recovery behavior by scenario ==");
    let protections = best.protections(&env);
    let scenarios = env.failures.enumerate(best.primaries());
    let evaluator = Evaluator::new(&env.workloads, best.provision(), env.recovery);
    for scenario in &scenarios {
        let outcome = evaluator.evaluate_scenario(&protections, &scenario.scope);
        if outcome.outcomes.is_empty() {
            continue;
        }
        println!("  {} ({}):", scenario.scope, scenario.likelihood);
        for o in &outcome.outcomes {
            println!(
                "    {:<26} {:<22} outage {:<12} loss {}",
                env.workloads[o.app].name,
                o.path.to_string(),
                o.recovery_time.to_string(),
                o.loss_time
            );
        }
    }
}
