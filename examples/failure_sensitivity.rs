//! Reduced-scale run of the §4.5 sensitivity study (Figures 5–7): how the
//! design tool's solution cost reacts to each failure likelihood.
//!
//! ```text
//! cargo run --release --example failure_sensitivity
//! ```
//! Use the `figure5`/`figure6`/`figure7` binaries in `dsd-bench` for the
//! full paper-scale sweeps.

use dsd::core::Budget;
use dsd::scenarios::experiments::sensitivity::{run, SweepKind};

fn main() {
    let budget = Budget::iterations(40);
    for kind in [SweepKind::DataObject, SweepKind::DiskArray, SweepKind::SiteDisaster] {
        // Sweep the two extremes plus the middle of the paper's range to
        // keep the example snappy.
        let all = kind.paper_rates();
        let picks = [all[0], all[all.len() / 2], *all.last().expect("non-empty range")];
        let fig = run(kind, &picks, budget, 2006);
        print!("{fig}");
        println!();
    }
    println!(
        "expected shape (paper §4.5): cost is relatively insensitive to disk and site\n\
         failure likelihood, but grows sharply once data-object failures become\n\
         frequent enough that added resources can no longer compensate."
    );
}
