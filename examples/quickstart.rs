//! Quickstart: design dependable storage for the paper's peer-sites case
//! study and print the chosen solution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsd::core::{Budget, DesignSolver};
use dsd::scenarios::environments::peer_sites;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // The environment bundles everything the tool needs: the eight Table 1
    // applications, two sites with the Table 3 devices, the nine Table 2
    // protection techniques, and the failure model.
    let env = peer_sites();

    println!("== applications (Table 1) ==");
    for app in env.workloads.iter() {
        println!("  {} — {}", app, app.profile);
    }
    println!("\n== candidate techniques (Table 2) ==");
    for t in env.catalog.iter() {
        println!("  {t}");
    }
    println!("\n== sites ==");
    for s in env.topology.sites() {
        println!("  {s}");
    }

    // Run the two-stage design solver. A few hundred iterations suffice
    // for this environment; crank it up (or use Budget::wall_clock) for
    // the paper's thirty-minute setting.
    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    let outcome = DesignSolver::new(&env).solve(Budget::iterations(150), &mut rng);
    let best = outcome.best.expect("the peer-sites case study is feasible");

    println!("\n== chosen design ==");
    for (app, a) in best.assignments() {
        let workload = &env.workloads[*app];
        let technique = &env.catalog[a.technique];
        println!(
            "  {:<24} {:<30} primary {} ({})",
            workload.name, technique.name, a.placement.primary, a.config
        );
    }

    let cost = best.cost();
    println!("\n== annual cost ==");
    println!("  outlay:          {}", cost.outlay);
    println!("  outage penalty:  {}", cost.penalties.outage);
    println!("  loss penalty:    {}", cost.penalties.loss);
    println!("  total:           {}", cost.total());
    println!(
        "\nsearch: {} nodes evaluated, {} greedy builds, {} refit rounds in {:?}",
        outcome.stats.nodes_evaluated,
        outcome.stats.greedy_builds,
        outcome.stats.refit_rounds,
        outcome.elapsed
    );
}
