//! The full §4.3 case study: regenerate Table 4 and Figure 3 and check
//! the paper's qualitative observations.
//!
//! ```text
//! cargo run --release --example peer_sites_case_study
//! ```

use dsd::core::Budget;
use dsd::scenarios::experiments::{figure3, table4};

fn main() {
    let budget = Budget::iterations(250);

    let table = table4::run(budget, 2006).expect("peer sites is feasible");
    print!("{table}");
    println!();
    println!(
        "every app has tape backup:        {}",
        if table.all_have_backup() { "yes (matches the paper)" } else { "NO" }
    );
    println!(
        "central banking uses failover:    {}",
        if table.gold_apps_use_failover() { "yes (matches the paper)" } else { "NO" }
    );
    let async_count =
        table.rows.iter().filter(|r| r.type_code == 'B' && r.technique.contains("async")).count();
    println!(
        "central banking on async mirrors: {async_count}/2 \
         (the paper found async chosen over sync — counter to intuition)"
    );

    println!("\n---\n");
    let fig = figure3::run(budget, 2_000, 2006);
    print!("{fig}");
}
