//! Budget-capped design: "minimize our risk exposure, but capital
//! expenditure must stay under the cap."
//!
//! Sweeps the outlay cap and shows the resulting penalty/outlay frontier
//! — the trade-off curve a storage architect actually negotiates with
//! finance.
//!
//! ```text
//! cargo run --release --example budget_capped
//! ```

use dsd::core::{Budget, DesignSolver, Objective};
use dsd::scenarios::environments::peer_sites;
use dsd::units::Dollars;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Learn the unconstrained design first.
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    let unconstrained =
        DesignSolver::new(&env).solve(Budget::iterations(150), &mut rng).best.expect("feasible");
    let natural = unconstrained.cost().outlay;
    println!(
        "unconstrained optimum: outlay {}, penalties {}",
        natural,
        unconstrained.cost().penalties.total()
    );

    println!(
        "\n{:>12} {:>14} {:>16} {:>10}",
        "cap $M/yr", "outlay $M/yr", "penalties $M/yr", "feasible"
    );
    for fraction in [1.2, 1.0, 0.8, 0.6, 0.4] {
        let cap = Dollars::new(natural.as_f64() * fraction);
        let mut capped_env = peer_sites();
        capped_env.objective = Objective::PenaltiesWithOutlayCap { cap };
        let mut rng = ChaCha8Rng::seed_from_u64(2006);
        let best = DesignSolver::new(&capped_env).solve(Budget::iterations(150), &mut rng).best;
        match best {
            Some(b) if capped_env.objective.is_compliant(b.cost()) => println!(
                "{:>12.2} {:>14.2} {:>16.2} {:>10}",
                cap.as_f64() / 1e6,
                b.cost().outlay.as_f64() / 1e6,
                b.cost().penalties.total().as_f64() / 1e6,
                "yes"
            ),
            Some(b) => println!(
                "{:>12.2} {:>14.2} {:>16.2} {:>10}",
                cap.as_f64() / 1e6,
                b.cost().outlay.as_f64() / 1e6,
                b.cost().penalties.total().as_f64() / 1e6,
                "over cap"
            ),
            None => println!("{:>12.2} {:>14} {:>16} {:>10}", cap.as_f64() / 1e6, "-", "-", "no"),
        }
    }
    println!("\nlower caps force cheaper protection; penalties rise as the cap tightens.");
}
