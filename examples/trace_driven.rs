//! Trace-driven design: synthesize block-I/O traces for three in-house
//! applications, measure their Table 1 characteristics from the traces,
//! and design protection for what was *measured* rather than guessed.
//!
//! This is the workflow the paper's authors used with their internal
//! cello2002 traces; `dsd::trace` is our open substitute.
//!
//! ```text
//! cargo run --release --example trace_driven
//! ```

use std::sync::Arc;

use dsd::core::{Budget, DesignSolver, Environment};
use dsd::failure::{FailureModel, FailureRates};
use dsd::protection::TechniqueCatalog;
use dsd::resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd::trace::{TraceConfig, TraceGenerator, TraceStats};
use dsd::units::{DollarsPerHour, Gigabytes, MegabytesPerSec, TimeSpan};
use dsd::workload::{PenaltyRates, WorkloadSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(404);

    // Three applications with different I/O personalities.
    let candidates = [
        (
            "order processing",
            'O',
            TraceConfig {
                duration: TimeSpan::from_hours(24.0),
                volume: Gigabytes::new(1200.0),
                mean_update: MegabytesPerSec::new(4.0),
                read_ratio: 6.0,
                peak_to_mean: 4.0,
                working_set_fraction: 0.15,
                mean_io_blocks: 2,
            },
            PenaltyRates::new(DollarsPerHour::new(2e6), DollarsPerHour::new(2e6)),
        ),
        (
            "analytics warehouse",
            'A',
            TraceConfig {
                duration: TimeSpan::from_hours(24.0),
                volume: Gigabytes::new(6000.0),
                mean_update: MegabytesPerSec::new(8.0),
                read_ratio: 10.0,
                peak_to_mean: 2.0,
                working_set_fraction: 0.6,
                mean_io_blocks: 16,
            },
            PenaltyRates::new(DollarsPerHour::new(5e4), DollarsPerHour::new(5e3)),
        ),
        (
            "dev sandbox",
            'D',
            TraceConfig {
                duration: TimeSpan::from_hours(24.0),
                volume: Gigabytes::new(400.0),
                mean_update: MegabytesPerSec::new(1.0),
                read_ratio: 3.0,
                peak_to_mean: 1.5,
                working_set_fraction: 0.4,
                mean_io_blocks: 4,
            },
            PenaltyRates::new(DollarsPerHour::new(2e3), DollarsPerHour::new(2e3)),
        ),
    ];

    println!("== measured workload characteristics ==");
    let mut workloads = WorkloadSet::new();
    for (name, code, config, penalties) in candidates {
        let trace = TraceGenerator::new(config).generate(&mut rng);
        let stats = TraceStats::analyze(&trace);
        println!("  {name:<22} {} events, {stats}", trace.len());
        workloads.push(stats.to_profile(name, code, penalties));
    }

    let sites = vec![
        Site::new(0, "dc-east")
            .with_array_slot(DeviceSpec::xp1200())
            .with_array_slot(DeviceSpec::eva800())
            .with_tape_library(DeviceSpec::tape_library_high())
            .with_compute(6),
        Site::new(1, "dc-west")
            .with_array_slot(DeviceSpec::eva800())
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_med())
            .with_compute(6),
    ];
    let env = Environment::new(
        workloads,
        Arc::new(Topology::fully_connected(sites, NetworkSpec::med())),
        TechniqueCatalog::extended(),
        FailureModel::new(FailureRates::sensitivity_baseline()),
    );

    let outcome = DesignSolver::new(&env).solve(Budget::iterations(200), &mut rng);
    let Some(best) = outcome.best else {
        println!("no feasible design");
        return;
    };
    println!("\n== design for the measured workloads ==");
    for (app, a) in best.assignments() {
        println!(
            "  {:<22} {:<40} {}",
            env.workloads[*app].name, env.catalog[a.technique].name, a.config
        );
    }
    println!("  annual cost: {}", best.cost());
}
