//! Integration: SLA-style deductible penalty schedules change which
//! designs are worth buying.

use dsd::core::{Budget, DesignSolver};
use dsd::scenarios::environments::peer_sites_with;
use dsd::units::{Dollars, TimeSpan};
use dsd::workload::PenaltySchedule;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn generous_objectives_remove_most_penalties() {
    // Same workloads, same infrastructure; one environment charges
    // linearly, the other forgives outages under 2 days and losses under
    // a week (absurdly lax objectives).
    let linear_env = peer_sites_with(4);
    let mut lax_env = peer_sites_with(4);
    {
        // Rebuild the workload set with the lax schedule on every app.
        let mut set = dsd::workload::WorkloadSet::new();
        for app in linear_env.workloads.iter() {
            set.push(app.profile.clone().with_schedule(PenaltySchedule::Deductible {
                rto: TimeSpan::from_days(2.0),
                rpo: TimeSpan::from_days(7.0),
                breach_fine: Dollars::ZERO,
            }));
        }
        lax_env.workloads = set;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(81);
    let linear =
        DesignSolver::new(&linear_env).solve(Budget::iterations(40), &mut rng).best.unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(81);
    let lax = DesignSolver::new(&lax_env).solve(Budget::iterations(40), &mut rng).best.unwrap();

    // Lax objectives absorb the 12h snapshot staleness and the short
    // recoveries entirely: expected penalties collapse.
    assert!(
        lax.cost().penalties.total().as_f64() < linear.cost().penalties.total().as_f64() * 0.2,
        "lax {} vs linear {}",
        lax.cost().penalties.total(),
        linear.cost().penalties.total()
    );
    // And the solver stops buying expensive protection it no longer
    // needs (or at least never spends more).
    assert!(lax.cost().outlay <= linear.cost().outlay);
}

#[test]
fn breach_fines_show_up_in_expected_penalties() {
    // Zero-rate, fine-only schedule: every breach costs exactly the fine,
    // so expected penalties become likelihood-weighted fines.
    let mut env = peer_sites_with(1);
    let mut set = dsd::workload::WorkloadSet::new();
    let profile = env.workloads.iter().next().unwrap().profile.clone();
    let mut profile = profile;
    profile.penalties = dsd::workload::PenaltyRates::default(); // zero rates
    set.push(profile.with_schedule(PenaltySchedule::Deductible {
        rto: TimeSpan::ZERO,
        rpo: TimeSpan::ZERO,
        breach_fine: Dollars::new(1_000_000.0),
    }));
    env.workloads = set;

    let mut rng = ChaCha8Rng::seed_from_u64(82);
    let best = DesignSolver::new(&env).solve(Budget::iterations(15), &mut rng).best.unwrap();
    let penalties = best.cost().penalties.total().as_f64();
    // Three scenario kinds (object 1/3yr, array 1/3yr, site 1/5yr), each
    // breaching both objectives: expected fines = (1/3 + 1/3 + 1/5) x $2M.
    let expected = (1.0 / 3.0 + 1.0 / 3.0 + 1.0 / 5.0) * 2_000_000.0;
    assert!(
        (penalties - expected).abs() < expected * 0.01,
        "measured {penalties} vs expected {expected}"
    );
}
