//! Gap regression gates: a fixed-seed tournament must keep every
//! heuristic's optimality gap under pinned ceilings. The ceilings carry
//! deliberate headroom over the measured values (worst observed:
//! ~1.0% vs the exhaustive optimum, ~3.8% vs the relaxation bound at
//! this seed/budget), so they only trip when a solver change genuinely
//! degrades solution quality — at which point either fix the regression
//! or consciously re-pin these numbers.

use dsd::core::{run_tournament, TournamentConfig};

/// No heuristic may stray more than this far from the exhaustive
/// optimum on enumerable instances.
const MAX_GAP_TO_EXHAUSTIVE_PCT: f64 = 5.0;
/// ... nor more than this far from the relaxation lower bound anywhere
/// (the bound itself is loose, so this ceiling is wider).
const MAX_GAP_TO_BOUND_PCT: f64 = 10.0;

fn pinned_config() -> TournamentConfig {
    TournamentConfig { seed: 2006, budget: 12, app_counts: vec![2, 3], max_exhaustive: 200_000 }
}

#[test]
fn fixed_seed_tournament_gaps_stay_under_the_pinned_ceilings() {
    let report = run_tournament(&pinned_config());
    assert_eq!(report.violations(), 0, "certified ordering broken:\n{report}");

    // The grid must actually exercise the exhaustive sandwich somewhere,
    // otherwise the gap-to-exhaustive gate gates nothing.
    let enumerated = report.instances.iter().filter(|i| i.exhaustive.is_some()).count();
    assert!(enumerated >= 2, "expected ≥2 enumerable instances, got {enumerated}:\n{report}");

    for s in &report.summary {
        assert!(s.instances > 0, "{} never produced a design:\n{report}", s.heuristic);
        assert!(
            s.worst_gap_to_bound_pct <= MAX_GAP_TO_BOUND_PCT,
            "{} worst gap to bound {:.2}% exceeds the pinned {:.1}% ceiling:\n{report}",
            s.heuristic,
            s.worst_gap_to_bound_pct,
            MAX_GAP_TO_BOUND_PCT
        );
        assert!(
            s.worst_gap_to_exhaustive_pct <= MAX_GAP_TO_EXHAUSTIVE_PCT,
            "{} worst gap to exhaustive {:.2}% exceeds the pinned {:.1}% ceiling:\n{report}",
            s.heuristic,
            s.worst_gap_to_exhaustive_pct,
            MAX_GAP_TO_EXHAUSTIVE_PCT
        );
    }
}

#[test]
fn every_enumerated_instance_is_sandwiched() {
    let report = run_tournament(&pinned_config());
    for inst in &report.instances {
        assert!(inst.lower_bound > 0.0, "{}: vacuous bound", inst.label);
        let Some(exact) = inst.exhaustive else { continue };
        assert!(
            inst.lower_bound <= exact,
            "{}: bound {} above exhaustive {exact}",
            inst.label,
            inst.lower_bound
        );
        for e in &inst.entries {
            if let Some(cost) = e.cost {
                assert!(
                    exact <= cost * (1.0 + 1e-9),
                    "{}: {} found {cost} below the exhaustive optimum {exact}",
                    inst.label,
                    e.heuristic
                );
            }
        }
    }
}
