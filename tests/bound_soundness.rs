//! Soundness of the relaxation lower bound over randomized environments:
//! `lower_bound(env)` must stay at or below the cost of the exhaustive
//! optimum, of every heuristic's output, and of every delta-evaluated
//! incumbent along a random move sequence. A violation anywhere means
//! the bound (or the evaluator) is wrong, so these are the certifying
//! tests behind the `dsd explain` Certificate section.

use dsd::core::bounds::CERTIFICATE_TOLERANCE;
use dsd::core::heuristics::{SimulatedAnnealing, TabuSearch};
use dsd::core::{
    exhaustive_optimal_with, lower_bound, Budget, DesignSolver, Environment, ExhaustiveOptions,
    Move, PlacementOptions, ScenarioOutcomeCache,
};
use dsd::failure::{FailureModel, FailureRates};
use dsd::protection::TechniqueCatalog;
use dsd::resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd::workload::{GeneratorConfig, WorkloadGenerator};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A randomized but structurally sane environment: paper-style sites,
/// perturbed paper workloads (same shape as `solver_properties.rs`).
fn random_env(seed: u64, sites: usize, apps: usize) -> Environment {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sites: Vec<Site> = (0..sites)
        .map(|i| {
            Site::new(i, format!("S{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        })
        .collect();
    let generator = WorkloadGenerator::new(GeneratorConfig {
        scale_min: 0.5,
        scale_max: 1.5,
        penalty_scale_min: 0.5,
        penalty_scale_max: 2.0,
    });
    Environment::new(
        generator.generate(apps, &mut rng),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

/// `cost` may not undercut the bound beyond float tolerance.
fn respects(bound: f64, cost: f64) -> bool {
    cost >= bound * (1.0 - CERTIFICATE_TOLERANCE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The bound floors the default-config exhaustive optimum (when the
    /// space is enumerable) and every heuristic at its default settings
    /// — including with resource additions enabled, which the bound's
    /// relaxations must already account for.
    #[test]
    fn bound_floors_exhaustive_and_every_heuristic(seed in 0u64..500) {
        let env = random_env(seed, 2, 3);
        let bound = lower_bound(&env).total.as_f64();
        prop_assert!(bound >= 0.0);

        let options = ExhaustiveOptions { limit: 200_000, config_grid: false };
        if let Ok(result) = exhaustive_optimal_with(&env, options) {
            if let Some(best) = result.best {
                let exact = best.cost().total().as_f64();
                prop_assert!(respects(bound, exact), "bound {bound} > exhaustive {exact}");
            }
        }

        let budget = Budget::iterations(6);
        let solvers: [&str; 3] = ["greedy", "annealing", "tabu"];
        for (i, name) in solvers.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0xC0DE + i as u64));
            let outcome = match i {
                0 => DesignSolver::new(&env).solve(budget, &mut rng),
                1 => SimulatedAnnealing::new(&env).solve(budget, &mut rng),
                _ => TabuSearch::new(&env).solve(budget, &mut rng),
            };
            if let Some(best) = outcome.best {
                let cost = best.cost().total().as_f64();
                prop_assert!(respects(bound, cost), "bound {bound} > {name} {cost}");
            }
        }
    }

    /// Every delta-evaluated incumbent along a random reassignment walk
    /// respects the bound — the incremental evaluator may never report a
    /// cost the full evaluator (and hence the bound) would not stand by.
    #[test]
    fn bound_holds_for_every_delta_evaluated_incumbent(seed in 0u64..500) {
        let env = random_env(seed, 2, 3);
        let bound = lower_bound(&env).total.as_f64();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0DD);
        let Some(mut incumbent) =
            DesignSolver::new(&env).solve(Budget::iterations(4), &mut rng).best
        else {
            return Ok(());
        };
        let mut cache = ScenarioOutcomeCache::new();
        let mut best = incumbent.evaluate_with(&env, &mut cache).total();
        prop_assert!(respects(bound, best.as_f64()));

        let apps: Vec<_> = env.workloads.iter().map(|a| a.id).collect();
        for _ in 0..12 {
            let app = apps[rng.gen_range(0..apps.len())];
            let class = env.workloads[app].class_with(&env.thresholds);
            let eligible: Vec<_> = env.catalog.eligible_for(class).collect();
            let (technique, t) = eligible[rng.gen_range(0..eligible.len())];
            let placements = PlacementOptions::enumerate(&env, technique);
            if placements.is_empty() {
                continue;
            }
            let placement = placements[rng.gen_range(0..placements.len())];
            let configs = t.config_space();
            let config = configs[rng.gen_range(0..configs.len())];
            let mv = Move::Reassign { app, technique, config, placement };
            let Ok((cost, undo)) = incumbent.evaluate_delta(&env, &mv, &mut cache) else {
                continue;
            };
            prop_assert!(
                respects(bound, cost.total().as_f64()),
                "bound {bound} > delta incumbent {}",
                cost.total()
            );
            if cost.total() <= best {
                best = cost.total();
            } else {
                incumbent.undo_move(undo);
            }
        }
        // The walk's final accepted incumbent re-evaluates from scratch to
        // the same certified-above-bound cost.
        let fresh = incumbent.evaluate(&env).total();
        prop_assert!(respects(bound, fresh.as_f64()));
    }
}
