//! Property-based integration tests over randomized environments.

use dsd::core::{
    parallel_solve_with_cache, Budget, CandidateKey, ConfigurationSolver, DesignSolver,
    Environment, EvalCache, Reconfigurator, Thoroughness, DEFAULT_CACHE_CAPACITY,
};
use dsd::failure::{FailureModel, FailureRates};
use dsd::protection::TechniqueCatalog;
use dsd::resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd::workload::{GeneratorConfig, WorkloadGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A randomized but structurally sane environment: 2–3 paper-style sites,
/// 2–6 perturbed workloads.
fn random_env(seed: u64, sites: usize, apps: usize) -> Environment {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sites: Vec<Site> = (0..sites)
        .map(|i| {
            Site::new(i, format!("S{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        })
        .collect();
    let generator = WorkloadGenerator::new(GeneratorConfig {
        scale_min: 0.5,
        scale_max: 1.5,
        penalty_scale_min: 0.5,
        penalty_scale_max: 2.0,
    });
    Environment::new(
        generator.generate(apps, &mut rng),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn solver_output_is_always_complete_and_class_respecting(
        seed in 0u64..1000,
        sites in 2usize..4,
        apps in 2usize..6,
    ) {
        let env = random_env(seed, sites, apps);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let outcome = DesignSolver::new(&env).solve(Budget::iterations(8), &mut rng);
        if let Some(best) = outcome.best {
            prop_assert!(best.is_complete(&env));
            prop_assert!(best.cost().total().is_finite());
            prop_assert!(best.validate(&env).is_ok(), "{:?}", best.validate(&env));
            for (app, a) in best.assignments() {
                let class = env.workloads[*app].class_with(&env.thresholds);
                prop_assert!(env.catalog[a.technique].category.satisfies(class));
                if let Some(m) = a.placement.mirror {
                    prop_assert_ne!(m.site, a.placement.primary.site);
                }
            }
        }
    }

    #[test]
    fn cost_decomposition_is_consistent(
        seed in 0u64..1000,
    ) {
        let env = random_env(seed, 2, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        if let Some(best) = DesignSolver::new(&env).solve(Budget::iterations(6), &mut rng).best {
            let cost = best.cost();
            let sum = cost.outlay + cost.penalties.outage + cost.penalties.loss;
            prop_assert!((cost.total().as_f64() - sum.as_f64()).abs() < 1e-6);
            // Per-app penalties sum to the global penalty figures.
            let per_app_outage: f64 =
                cost.penalties.per_app.values().map(|(o, _)| o.as_f64()).sum();
            let per_app_loss: f64 =
                cost.penalties.per_app.values().map(|(_, l)| l.as_f64()).sum();
            prop_assert!((per_app_outage - cost.penalties.outage.as_f64()).abs()
                <= 1e-6 * (1.0 + per_app_outage));
            prop_assert!((per_app_loss - cost.penalties.loss.as_f64()).abs()
                <= 1e-6 * (1.0 + per_app_loss));
        }
    }

    #[test]
    fn outlay_reflects_provisioned_hardware(
        seed in 0u64..1000,
    ) {
        let env = random_env(seed, 2, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 7);
        if let Some(best) = DesignSolver::new(&env).solve(Budget::iterations(5), &mut rng).best {
            let outlay = best.cost().outlay;
            let hardware = best.provision().annual_outlay();
            let media = best.vault_media_annual(&env);
            prop_assert!(
                (outlay.as_f64() - (hardware + media).as_f64()).abs() < 1e-6
            );
            prop_assert!(!best.provision().provisioned_arrays().is_empty());
        }
    }
}

#[test]
fn solver_never_panics_on_hostile_tiny_environment() {
    // One site, no tape, one compute: almost everything is infeasible.
    let sites = vec![Site::new(0, "tiny").with_array_slot(DeviceSpec::msa1500()).with_compute(1)];
    let env = Environment::new(
        dsd::workload::WorkloadSet::scaled_paper_mix(2),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::med())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let outcome = DesignSolver::new(&env).solve(Budget::iterations(5), &mut rng);
    assert!(outcome.best.is_none(), "gold app cannot be protected without a second site");
}

// ---------------------------------------------------------------------
// Solver-equivalence suite: the evaluation cache must be a pure
// memoization — attaching it may never change what the search finds.
// ---------------------------------------------------------------------

/// Runs the same seeded search with and without a cache and demands
/// bit-identical outcomes: same best design, same full cost breakdown,
/// same node count (the cache replays completions, it must not skip or
/// reorder them).
fn assert_cache_transparent(env: &Environment, seed: u64, budget: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let plain = DesignSolver::new(env).solve(Budget::iterations(budget), &mut rng);

    let cache = EvalCache::new(DEFAULT_CACHE_CAPACITY);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let memo =
        DesignSolver::new(env).with_cache(&cache).solve(Budget::iterations(budget), &mut rng);

    assert_eq!(plain.stats.nodes_evaluated, memo.stats.nodes_evaluated, "seed {seed}");
    match (&plain.best, &memo.best) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.assignments(), b.assignments(), "seed {seed}: designs diverge");
            assert_eq!(a.cost(), b.cost(), "seed {seed}: costs diverge");
        }
        (a, b) => {
            panic!("seed {seed}: feasibility diverges ({:?} vs {:?})", a.is_some(), b.is_some())
        }
    }
}

#[test]
fn cached_search_is_bit_identical_across_seeds_and_environments() {
    for seed in [1u64, 7, 42, 2006] {
        let env = random_env(seed.wrapping_mul(31), 2, 3);
        assert_cache_transparent(&env, seed, 10);
    }
    // A bigger fixed environment, matching the paper's peer-sites study.
    let env = dsd::scenarios::environments::peer_sites_with(4);
    for seed in [3u64, 11] {
        assert_cache_transparent(&env, seed, 12);
    }
}

#[test]
fn tiny_cache_still_gives_identical_results() {
    // Constant eviction pressure must only cost hits, never correctness.
    let env = dsd::scenarios::environments::peer_sites_with(3);
    let cache = EvalCache::new(4);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let memo = DesignSolver::new(&env).with_cache(&cache).solve(Budget::iterations(8), &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let plain = DesignSolver::new(&env).solve(Budget::iterations(8), &mut rng);
    assert_eq!(
        plain.best.as_ref().map(|c| c.cost().clone()),
        memo.best.as_ref().map(|c| c.cost().clone())
    );
    assert!(cache.stats().evictions > 0, "capacity 4 must churn");
    assert!(cache.len() <= 4, "LRU may never exceed capacity");
}

#[test]
fn parallel_shared_cache_beats_or_matches_every_single_seed() {
    let env = dsd::scenarios::environments::peer_sites_with(4);
    let budget = Budget::iterations(8);
    let seeds = [1u64, 2, 3];
    let cache = EvalCache::new(DEFAULT_CACHE_CAPACITY);
    let par = parallel_solve_with_cache(&env, budget, &seeds, &cache);
    let par_cost = par.best.as_ref().expect("peer sites are solvable").cost().total();
    for seed in seeds {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        if let Some(best) = DesignSolver::new(&env).solve(budget, &mut rng).best {
            assert!(
                par_cost <= best.cost().total(),
                "shared-cache fan-out lost to seed {seed}: {par_cost} > {}",
                best.cost().total()
            );
        }
    }
    let stats = par.cache.expect("fan-out reports its cache");
    // Every completion goes through the cache (greedy best-fit probes are
    // raw evaluations, so lookups are a subset of all nodes evaluated).
    assert!(stats.hits + stats.misses <= par.stats.nodes_evaluated);
    assert_eq!(stats.hits + stats.misses, par.stats.cache_hits + par.stats.cache_misses);
    assert!(stats.hits > 0, "three seeds on one environment must share completions");
}

// ---------------------------------------------------------------------
// Cache-key properties: the key must separate exactly the states the
// completion function distinguishes.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Recomputing the key from an untouched candidate is stable, and a
    /// successful `Reconfigurator` move that lands on a different
    /// assignment always changes the key.
    #[test]
    fn reconfigurator_moves_change_the_cache_key(seed in 0u64..500) {
        let env = random_env(seed, 2, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51DE);
        let Some(best) = DesignSolver::new(&env).solve(Budget::iterations(4), &mut rng).best
        else {
            return Ok(());
        };
        let limits = ConfigurationSolver::new(&env).addition_limits();
        let before_key = CandidateKey::of(&best, Thoroughness::Quick, limits);
        prop_assert_eq!(
            before_key,
            CandidateKey::of(&best, Thoroughness::Quick, limits),
            "key must be a pure function of candidate state"
        );

        let mut moved = best.clone();
        let mut reconfigurator = Reconfigurator::default();
        for _ in 0..4 {
            if !reconfigurator.reconfigure(&env, &mut moved, &mut rng) {
                continue;
            }
            let after_key = CandidateKey::of(&moved, Thoroughness::Quick, limits);
            if moved.assignments() == best.assignments() {
                // The move may legitimately re-pick the original layout;
                // then the key must not spuriously differ on assignments.
                // (Provision extras are part of the key, and removal
                // resets them, so only compare when those match too.)
                continue;
            }
            prop_assert_ne!(
                before_key, after_key,
                "distinct assignments must produce distinct keys"
            );
        }
    }
}
