//! Property-based integration tests over randomized environments.

use dsd::core::{Budget, DesignSolver, Environment};
use dsd::failure::{FailureModel, FailureRates};
use dsd::protection::TechniqueCatalog;
use dsd::resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd::workload::{GeneratorConfig, WorkloadGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A randomized but structurally sane environment: 2–3 paper-style sites,
/// 2–6 perturbed workloads.
fn random_env(seed: u64, sites: usize, apps: usize) -> Environment {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sites: Vec<Site> = (0..sites)
        .map(|i| {
            Site::new(i, format!("S{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        })
        .collect();
    let generator = WorkloadGenerator::new(GeneratorConfig {
        scale_min: 0.5,
        scale_max: 1.5,
        penalty_scale_min: 0.5,
        penalty_scale_max: 2.0,
    });
    Environment::new(
        generator.generate(apps, &mut rng),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn solver_output_is_always_complete_and_class_respecting(
        seed in 0u64..1000,
        sites in 2usize..4,
        apps in 2usize..6,
    ) {
        let env = random_env(seed, sites, apps);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let outcome = DesignSolver::new(&env).solve(Budget::iterations(8), &mut rng);
        if let Some(best) = outcome.best {
            prop_assert!(best.is_complete(&env));
            prop_assert!(best.cost().total().is_finite());
            prop_assert!(best.validate(&env).is_ok(), "{:?}", best.validate(&env));
            for (app, a) in best.assignments() {
                let class = env.workloads[*app].class_with(&env.thresholds);
                prop_assert!(env.catalog[a.technique].category.satisfies(class));
                if let Some(m) = a.placement.mirror {
                    prop_assert_ne!(m.site, a.placement.primary.site);
                }
            }
        }
    }

    #[test]
    fn cost_decomposition_is_consistent(
        seed in 0u64..1000,
    ) {
        let env = random_env(seed, 2, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        if let Some(best) = DesignSolver::new(&env).solve(Budget::iterations(6), &mut rng).best {
            let cost = best.cost();
            let sum = cost.outlay + cost.penalties.outage + cost.penalties.loss;
            prop_assert!((cost.total().as_f64() - sum.as_f64()).abs() < 1e-6);
            // Per-app penalties sum to the global penalty figures.
            let per_app_outage: f64 =
                cost.penalties.per_app.values().map(|(o, _)| o.as_f64()).sum();
            let per_app_loss: f64 =
                cost.penalties.per_app.values().map(|(_, l)| l.as_f64()).sum();
            prop_assert!((per_app_outage - cost.penalties.outage.as_f64()).abs()
                <= 1e-6 * (1.0 + per_app_outage));
            prop_assert!((per_app_loss - cost.penalties.loss.as_f64()).abs()
                <= 1e-6 * (1.0 + per_app_loss));
        }
    }

    #[test]
    fn outlay_reflects_provisioned_hardware(
        seed in 0u64..1000,
    ) {
        let env = random_env(seed, 2, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 7);
        if let Some(best) = DesignSolver::new(&env).solve(Budget::iterations(5), &mut rng).best {
            let outlay = best.cost().outlay;
            let hardware = best.provision().annual_outlay();
            let media = best.vault_media_annual(&env);
            prop_assert!(
                (outlay.as_f64() - (hardware + media).as_f64()).abs() < 1e-6
            );
            prop_assert!(!best.provision().provisioned_arrays().is_empty());
        }
    }
}

#[test]
fn solver_never_panics_on_hostile_tiny_environment() {
    // One site, no tape, one compute: almost everything is infeasible.
    let sites =
        vec![Site::new(0, "tiny").with_array_slot(DeviceSpec::msa1500()).with_compute(1)];
    let env = Environment::new(
        dsd::workload::WorkloadSet::scaled_paper_mix(2),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::med())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let outcome = DesignSolver::new(&env).solve(Budget::iterations(5), &mut rng);
    assert!(outcome.best.is_none(), "gold app cannot be protected without a second site");
}
