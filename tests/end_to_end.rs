//! End-to-end integration: the full pipeline on the paper's environments.

use dsd::core::heuristics::{HumanHeuristic, RandomHeuristic};
use dsd::core::{Budget, DesignSolver};
use dsd::scenarios::environments::{four_sites, peer_sites};
use dsd::scenarios::experiments::{figure3, table4};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn design_tool_produces_complete_feasible_peer_sites_design() {
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let outcome = DesignSolver::new(&env).solve(Budget::iterations(40), &mut rng);
    let best = outcome.best.expect("feasible");
    assert!(best.is_complete(&env));
    assert_eq!(best.assigned_count(), 8);
    let cost = best.cost();
    assert!(cost.total().is_finite());
    assert!(cost.outlay.as_f64() > 0.0, "real designs buy hardware");
    // Every application's resources are actually provisioned.
    for a in best.assignments().values() {
        assert!(best.provision().array(a.placement.primary).is_some());
        if let Some(m) = a.placement.mirror {
            assert!(best.provision().array(m).is_some());
        }
        if let Some(t) = a.placement.tape {
            assert!(best.provision().tape(t).is_some());
        }
    }
}

#[test]
fn design_tool_beats_human_and_random_on_peer_sites() {
    let fig = figure3::run(Budget::iterations(40), 0, 99);
    let tool = fig.tool.expect("tool design").total();
    let human = fig.human.expect("human design").total();
    let random = fig.random.expect("random design").total();
    assert!(tool <= human);
    assert!(tool <= random);
}

#[test]
fn table4_reproduces_paper_observations() {
    let table = table4::run(Budget::iterations(60), 2006).expect("feasible");
    assert_eq!(table.rows.len(), 8);
    assert!(table.all_have_backup(), "paper: all apps employ some form of tape backup");
    assert!(
        table.gold_apps_use_failover(),
        "paper: high outage penalty rates always employ failover"
    );
}

#[test]
fn whole_pipeline_is_deterministic_under_seed() {
    let env = peer_sites();
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        DesignSolver::new(&env)
            .solve(Budget::iterations(25), &mut rng)
            .best
            .map(|b| b.cost().total().as_f64())
    };
    assert_eq!(run(), run());
}

#[test]
fn four_site_environment_solves_at_moderate_scale() {
    let env = four_sites(12);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let outcome = DesignSolver::new(&env).solve(Budget::iterations(25), &mut rng);
    let best = outcome.best.expect("12 apps fit on four sites");
    assert!(best.is_complete(&env));
    // Primaries must not all pile onto one site at this scale: capacity
    // and compute limits force spreading.
    let sites_used: std::collections::BTreeSet<_> =
        best.assignments().values().map(|a| a.placement.primary.site).collect();
    assert!(sites_used.len() >= 2);
}

#[test]
fn heuristics_all_respect_class_eligibility_end_to_end() {
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let tool = DesignSolver::new(&env).solve(Budget::iterations(20), &mut rng).best.unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let human = HumanHeuristic::new(&env).solve(Budget::iterations(3), &mut rng).best.unwrap();
    for best in [&tool, &human] {
        for (app, a) in best.assignments() {
            let class = env.workloads[*app].class_with(&env.thresholds);
            assert!(env.catalog[a.technique].category.satisfies(class), "{app} under-protected");
        }
    }
    // The random heuristic deliberately ignores classes; it must still
    // produce complete designs.
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let random = RandomHeuristic::new(&env).solve(Budget::iterations(10), &mut rng).best.unwrap();
    assert!(random.is_complete(&env));
}
