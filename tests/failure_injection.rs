//! Failure-injection integration tests: drive solved designs through
//! every failure scope and check the recovery engine's cross-crate
//! behavior.

use dsd::core::{Budget, Candidate, DesignSolver, Environment};
use dsd::failure::{FailureScenario, FailureScope};
use dsd::recovery::{Evaluator, RecoveryPath};
use dsd::scenarios::environments::peer_sites;
use dsd::units::PerYear;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn solved(env: &Environment) -> Candidate {
    let mut rng = ChaCha8Rng::seed_from_u64(55);
    DesignSolver::new(env).solve(Budget::iterations(30), &mut rng).best.expect("feasible")
}

#[test]
fn every_scenario_recovers_every_affected_app() {
    let env = peer_sites();
    let best = solved(&env);
    let protections = best.protections(&env);
    let evaluator = Evaluator::new(&env.workloads, best.provision(), env.recovery);
    for scenario in env.failures.enumerate(best.primaries()) {
        let outcome = evaluator.evaluate_scenario(&protections, &scenario.scope);
        for o in &outcome.outcomes {
            assert!(o.recovery_time.is_finite(), "{}: {} never recovers", scenario.scope, o.app);
            assert!(o.loss_time.is_finite());
            assert_ne!(
                o.path,
                RecoveryPath::Unprotected,
                "a cost-optimized design never leaves an app unprotected"
            );
        }
        // Affected set matches the scope.
        match scenario.scope {
            FailureScope::DataObject { app } => {
                assert_eq!(outcome.outcomes.len(), 1);
                assert_eq!(outcome.outcomes[0].app, app);
            }
            FailureScope::DiskArray { array } => {
                for p in &protections {
                    let affected = outcome.outcomes.iter().any(|o| o.app == p.app);
                    assert_eq!(affected, p.placement.primary == array);
                }
            }
            FailureScope::SiteDisaster { site } => {
                for p in &protections {
                    let affected = outcome.outcomes.iter().any(|o| o.app == p.app);
                    assert_eq!(affected, p.placement.primary.site == site);
                }
            }
        }
    }
}

#[test]
fn failover_outage_is_shorter_than_any_restore() {
    let env = peer_sites();
    let best = solved(&env);
    let protections = best.protections(&env);
    let evaluator = Evaluator::new(&env.workloads, best.provision(), env.recovery);
    for scenario in env.failures.enumerate(best.primaries()) {
        let outcome = evaluator.evaluate_scenario(&protections, &scenario.scope);
        let fastest_restore = outcome
            .outcomes
            .iter()
            .filter(|o| matches!(o.path, RecoveryPath::Restore(_)))
            .map(|o| o.recovery_time)
            .min_by(|a, b| a.partial_cmp(b).unwrap());
        let slowest_failover = outcome
            .outcomes
            .iter()
            .filter(|o| o.path == RecoveryPath::Failover)
            .map(|o| o.recovery_time)
            .max_by(|a, b| a.partial_cmp(b).unwrap());
        if let (Some(f), Some(r)) = (slowest_failover, fastest_restore) {
            assert!(f < r, "failover {f} must beat restore {r} in {}", scenario.scope);
        }
    }
}

#[test]
fn penalties_scale_linearly_with_scenario_likelihood() {
    let env = peer_sites();
    let best = solved(&env);
    let protections = best.protections(&env);
    let evaluator = Evaluator::new(&env.workloads, best.provision(), env.recovery);
    let scenarios: Vec<FailureScenario> = env.failures.enumerate(best.primaries());
    let (base, _) = evaluator.annual_penalties(&protections, &scenarios);
    let tripled: Vec<FailureScenario> = scenarios
        .iter()
        .map(|s| FailureScenario {
            scope: s.scope,
            likelihood: PerYear::new(s.likelihood.as_f64() * 3.0),
        })
        .collect();
    let (scaled, _) = evaluator.annual_penalties(&protections, &tripled);
    let expected = base.total().as_f64() * 3.0;
    assert!(
        (scaled.total().as_f64() - expected).abs() <= 1e-6 * expected.max(1.0),
        "{} vs 3x{}",
        scaled.total(),
        base.total()
    );
}

#[test]
fn site_disaster_is_the_most_expensive_scope_per_event() {
    let env = peer_sites();
    let best = solved(&env);
    let protections = best.protections(&env);
    let evaluator = Evaluator::new(&env.workloads, best.provision(), env.recovery);

    // For one app with a mirror, compare its outage across scopes.
    let mirrored = protections.iter().find(|p| p.placement.mirror.is_some()).unwrap();
    let object =
        evaluator.evaluate_scenario(&protections, &FailureScope::DataObject { app: mirrored.app });
    let disaster = evaluator.evaluate_scenario(
        &protections,
        &FailureScope::SiteDisaster { site: mirrored.placement.primary.site },
    );
    let outage_of = |outcome: &dsd::recovery::ScenarioOutcome| {
        outcome.outcomes.iter().find(|o| o.app == mirrored.app).map(|o| o.loss_time).unwrap()
    };
    // Data-object failure forces point-in-time recovery, losing more
    // recent updates than failing over to the mirror after a disaster.
    assert!(outage_of(&object) >= outage_of(&disaster));
}

#[test]
fn disabling_a_failure_mode_removes_its_penalties() {
    let mut env = peer_sites();
    let best = solved(&env);
    let baseline = best.cost().penalties.total();

    env.failures = dsd::failure::FailureModel::new(
        env.failures
            .rates()
            .with_data_object(PerYear::NEVER)
            .with_disk_array(PerYear::NEVER)
            .with_site_disaster(PerYear::NEVER),
    );
    let mut clone = best.clone();
    clone.provision_mut(); // invalidate cached cost
    let no_failures = clone.evaluate(&env).penalties.total();
    assert_eq!(no_failures.as_f64(), 0.0);
    assert!(baseline.as_f64() > 0.0);
}
