//! Integration tests for the budget-capped objective.

use dsd::core::{Budget, DesignSolver, Objective};
use dsd::scenarios::environments::peer_sites;
use dsd::units::Dollars;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn outlay_cap_is_respected_when_attainable() {
    // Solve unconstrained to learn the natural outlay; capping *at* that
    // outlay is attainable by construction (the unconstrained design
    // itself complies), so the capped solver must return a compliant
    // design.
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    let unconstrained =
        DesignSolver::new(&env).solve(Budget::iterations(40), &mut rng).best.unwrap();
    let cap = unconstrained.cost().outlay;

    let mut capped_env = peer_sites();
    capped_env.objective = Objective::PenaltiesWithOutlayCap { cap };
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    // The cap binds on the cumulative outlay, so the refit stage needs
    // room to swap expensive techniques back out; give it a real budget.
    let capped = DesignSolver::new(&capped_env)
        .solve(Budget::iterations(150), &mut rng)
        .best
        .expect("a compliant design exists");

    assert!(
        capped.cost().outlay <= cap,
        "capped design spends {} over the attainable {} cap",
        capped.cost().outlay,
        cap
    );
    assert!(capped.is_complete(&capped_env));
}

#[test]
fn unattainable_cap_still_pushes_outlay_down() {
    // A cap below the hardware floor (facilities + compute + minimum
    // devices) cannot be met; the exact-penalty objective must still
    // drive outlay *toward* it, well below the unconstrained optimum.
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(74);
    let unconstrained =
        DesignSolver::new(&env).solve(Budget::iterations(30), &mut rng).best.unwrap();

    let mut capped_env = peer_sites();
    capped_env.objective = Objective::PenaltiesWithOutlayCap { cap: Dollars::new(1.0) };
    let mut rng = ChaCha8Rng::seed_from_u64(74);
    let squeezed =
        DesignSolver::new(&capped_env).solve(Budget::iterations(30), &mut rng).best.unwrap();

    assert!(
        squeezed.cost().outlay.as_f64() < unconstrained.cost().outlay.as_f64() * 0.95,
        "squeezed {} vs unconstrained {}",
        squeezed.cost().outlay,
        unconstrained.cost().outlay
    );
}

#[test]
fn generous_cap_changes_nothing() {
    let mut env = peer_sites();
    env.objective = Objective::PenaltiesWithOutlayCap { cap: Dollars::new(1e12) };
    let mut rng = ChaCha8Rng::seed_from_u64(72);
    let capped = DesignSolver::new(&env).solve(Budget::iterations(25), &mut rng).best.unwrap();
    assert!(env.objective.is_compliant(capped.cost()));
    assert!(capped.is_complete(&env));
}

#[test]
fn score_matches_objective_semantics_on_solved_designs() {
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(73);
    let best = DesignSolver::new(&env).solve(Budget::iterations(15), &mut rng).best.unwrap();
    let cost = best.cost();
    assert_eq!(env.score(cost), cost.total(), "default objective scores the total");
    let capped = Objective::PenaltiesWithOutlayCap { cap: Dollars::new(0.0) };
    assert!(
        capped.score(cost) > cost.penalties.total(),
        "an unattainable cap charges every outlay dollar as overrun"
    );
}
