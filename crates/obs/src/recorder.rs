//! The recorder: a thread-installable sink for trace events and metrics.
//!
//! Instrumented code never receives a recorder handle; it calls the free
//! functions in this module ([`span`], [`instant`], [`add`], [`observe`],
//! …), which consult a thread-local *current recorder*. When none is
//! installed every call is a branch on a thread-local `Option` — cheap
//! enough to leave instrumentation unconditionally compiled in (and the
//! `off` cargo feature removes even that branch).
//!
//! Recording is designed to stay off the contended path:
//!
//! * events are pushed into a per-thread buffer and drained into the
//!   shared store only when the buffer fills or the install guard drops;
//! * counters and gauges are `Arc`-shared atomics, cached per thread
//!   after the first registry lookup;
//! * histogram observations accumulate in per-thread [`Histogram`]s and
//!   merge into the registry on flush — merging is exact, so concurrent
//!   observers lose nothing.
//!
//! Recording never consumes randomness and never mutates solver state, so
//! instrumented and uninstrumented runs are bit-identical.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{ArgValue, Event, EventKind};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

/// Events buffered per thread before draining into the shared store.
const FLUSH_THRESHOLD: usize = 1024;

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    enabled: bool,
    events: Mutex<Vec<Event>>,
    metrics: MetricsRegistry,
    next_thread: AtomicU64,
}

/// A handle to a trace/metrics sink. Cloning is cheap (one `Arc`); all
/// clones share the same event store and registry.
#[derive(Debug, Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder that collects everything.
    #[must_use]
    pub fn new() -> Self {
        Recorder::with_enabled(true)
    }

    /// A recorder that can be installed but records nothing — the
    /// baseline for overhead measurements: instrumentation sites run
    /// their thread-local check and then bail.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                enabled,
                events: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
                next_thread: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this recorder actually collects data.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Installs this recorder as the current thread's sink and returns a
    /// guard; recording stops (and buffered data flushes) when the guard
    /// drops. The previously installed recorder, if any, is restored.
    ///
    /// Worker threads each call `install` on their own clone — buffers
    /// are per-thread, so workers never contend on the event store until
    /// flush.
    #[must_use]
    pub fn install(&self) -> InstallGuard {
        if cfg!(feature = "off") {
            return InstallGuard { previous: None, active: false };
        }
        let thread = self.shared.next_thread.fetch_add(1, Ordering::Relaxed);
        let ctx = ThreadCtx {
            shared: Arc::clone(&self.shared),
            thread,
            buffer: Vec::new(),
            counters: HashMap::new(),
            gauges: HashMap::new(),
            histograms: HashMap::new(),
        };
        let previous = CURRENT.with(|c| c.borrow_mut().replace(ctx));
        ACTIVE.with(|a| a.set(self.shared.enabled));
        InstallGuard { previous, active: true }
    }

    /// Takes every event recorded so far (sorted by start time). Call
    /// after the install guards have dropped, so all buffers have
    /// flushed.
    #[must_use]
    pub fn drain_events(&self) -> Vec<Event> {
        let mut events =
            std::mem::take(&mut *self.shared.events.lock().expect("event store poisoned"));
        events.sort_by_key(|e| e.start_ns);
        events
    }

    /// A snapshot of the metrics registry. Call after the install guards
    /// have dropped so per-thread histogram buffers have merged.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Direct access to the registry (for publishing pre-aggregated
    /// values, e.g. exporting `SolveStats` as a view).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }
}

struct ThreadCtx {
    shared: Arc<Shared>,
    thread: u64,
    buffer: Vec<Event>,
    counters: HashMap<&'static str, Arc<Counter>>,
    gauges: HashMap<&'static str, Arc<Gauge>>,
    histograms: HashMap<&'static str, Histogram>,
}

impl ThreadCtx {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&mut self, event: Event) {
        self.buffer.push(event);
        if self.buffer.len() >= FLUSH_THRESHOLD {
            self.flush_events();
        }
    }

    fn flush_events(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut store = self.shared.events.lock().expect("event store poisoned");
        store.append(&mut self.buffer);
    }

    fn flush(&mut self) {
        self.flush_events();
        for (name, hist) in self.histograms.drain() {
            self.shared.metrics.merge_histogram(name, &hist);
        }
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
    // Fast gate consulted before touching the RefCell: true only while an
    // *enabled* recorder is installed. Keeps the disabled/absent path to a
    // single thread-local bool read — the overhead bound the solver relies
    // on when tracing flags are absent.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Guard returned by [`Recorder::install`]; restores the previous
/// recorder (and flushes this thread's buffers) on drop.
pub struct InstallGuard {
    previous: Option<ThreadCtx>,
    active: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let restored_active = self.previous.as_ref().is_some_and(|ctx| ctx.shared.enabled);
        CURRENT.with(|c| {
            // Dropping the replaced ctx flushes its buffers.
            *c.borrow_mut() = self.previous.take();
        });
        ACTIVE.with(|a| a.set(restored_active));
    }
}

/// Runs `f` with the current thread context, if one is installed and
/// enabled. The single place the "is anyone listening" check happens.
fn with_ctx<T>(f: impl FnOnce(&mut ThreadCtx) -> T) -> Option<T> {
    if cfg!(feature = "off") {
        return None;
    }
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    CURRENT.with(|c| {
        let mut borrow = match c.try_borrow_mut() {
            Ok(b) => b,
            Err(_) => return None, // re-entrant call from a Drop; skip
        };
        match borrow.as_mut() {
            Some(ctx) if ctx.shared.enabled => Some(f(ctx)),
            _ => None,
        }
    })
}

/// Whether an enabled recorder is installed on this thread.
#[must_use]
pub fn enabled() -> bool {
    with_ctx(|_| ()).is_some()
}

/// The recorder currently installed on this thread, if any (enabled or
/// not). Lets fan-out drivers propagate the caller's recorder to worker
/// threads.
#[must_use]
pub fn current() -> Option<Recorder> {
    if cfg!(feature = "off") {
        return None;
    }
    CURRENT.with(|c| {
        c.try_borrow()
            .ok()
            .and_then(|b| b.as_ref().map(|ctx| Recorder { shared: Arc::clone(&ctx.shared) }))
    })
}

/// Records an instant event.
pub fn instant(name: &'static str, cat: &'static str) {
    instant_with(name, cat, Vec::new());
}

/// Records an instant event with arguments.
pub fn instant_with(name: &'static str, cat: &'static str, args: Vec<(&'static str, ArgValue)>) {
    with_ctx(|ctx| {
        let start_ns = ctx.now_ns();
        let thread = ctx.thread;
        ctx.push(Event { name, cat, kind: EventKind::Instant, start_ns, dur_ns: 0, thread, args });
    });
}

/// Opens a span; the event is recorded (with its measured duration) when
/// the returned guard drops. Inert when no enabled recorder is installed.
#[must_use]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    let started = enabled().then(Instant::now);
    Span { name, cat, started, args: Vec::new() }
}

/// A span guard. Attach arguments with [`Span::arg`]; the completed
/// event is recorded on drop.
pub struct Span {
    name: &'static str,
    cat: &'static str,
    started: Option<Instant>,
    args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// Attaches an argument (no-op when the span is inert).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.started.is_some() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let args = std::mem::take(&mut self.args);
        let (name, cat) = (self.name, self.cat);
        with_ctx(|ctx| {
            let end_ns = ctx.now_ns();
            let dur_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let thread = ctx.thread;
            ctx.push(Event {
                name,
                cat,
                kind: EventKind::Span,
                start_ns: end_ns.saturating_sub(dur_ns),
                dur_ns,
                thread,
                args,
            });
        });
    }
}

/// Adds `delta` to the named counter.
pub fn add(name: &'static str, delta: u64) {
    with_ctx(|ctx| {
        let cell = match ctx.counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = ctx.shared.metrics.counter(name);
                ctx.counters.insert(name, Arc::clone(&c));
                c
            }
        };
        cell.add(delta);
    });
}

/// Sets the named gauge.
pub fn gauge(name: &'static str, value: f64) {
    with_ctx(|ctx| {
        let cell = match ctx.gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = ctx.shared.metrics.gauge(name);
                ctx.gauges.insert(name, Arc::clone(&g));
                g
            }
        };
        cell.set(value);
    });
}

/// Records an observation into the named histogram (buffered per
/// thread; merged into the registry on flush).
pub fn observe(name: &'static str, value: f64) {
    with_ctx(|ctx| {
        ctx.histograms.entry(name).or_default().observe(value);
    });
}

/// Flushes this thread's buffered events and histograms into the shared
/// store without uninstalling. Useful before taking a snapshot while a
/// guard is still alive.
pub fn flush() {
    with_ctx(ThreadCtx::flush);
}

// Recording is compiled away under the `off` feature, so these tests
// only make sense without it.
#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn nothing_recorded_without_install() {
        instant("ghost", "test");
        add("ghost.counter", 1);
        observe("ghost.hist", 1.0);
        assert!(!enabled());
        assert!(current().is_none());
        // A fresh recorder sees none of it.
        let r = Recorder::new();
        assert!(r.drain_events().is_empty());
        assert_eq!(r.metrics_snapshot().series_count(), 0);
    }

    #[test]
    fn install_records_events_metrics_and_spans() {
        let r = Recorder::new();
        {
            let _g = r.install();
            assert!(enabled());
            instant_with("place", "solver", vec![("app", ArgValue::Int(3))]);
            add("solver.nodes", 2);
            add("solver.nodes", 3);
            gauge("solver.best", 42.5);
            observe("lat", 0.5);
            {
                let mut s = span("refit", "solver");
                s.arg("round", 1u64);
            }
        }
        let events = r.drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "place");
        assert_eq!(events[0].kind, EventKind::Instant);
        assert_eq!(events[0].arg("app"), Some(&ArgValue::Int(3)));
        assert_eq!(events[1].name, "refit");
        assert_eq!(events[1].kind, EventKind::Span);
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("solver.nodes"), Some(5));
        assert_eq!(snap.gauges.get("solver.best"), Some(&42.5));
        assert_eq!(snap.histogram("lat").expect("lat").count, 1);
    }

    #[test]
    fn disabled_recorder_collects_nothing() {
        let r = Recorder::disabled();
        {
            let _g = r.install();
            assert!(!enabled());
            instant("x", "t");
            add("c", 1);
        }
        assert!(r.drain_events().is_empty());
        assert_eq!(r.metrics_snapshot().series_count(), 0);
    }

    #[test]
    fn nested_install_restores_previous() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _og = outer.install();
        instant("a", "t");
        {
            let _ig = inner.install();
            instant("b", "t");
            assert!(current().is_some());
        }
        instant("c", "t");
        drop(_og);
        let outer_names: Vec<_> = outer.drain_events().iter().map(|e| e.name).collect();
        assert_eq!(outer_names, vec!["a", "c"]);
        let inner_names: Vec<_> = inner.drain_events().iter().map(|e| e.name).collect();
        assert_eq!(inner_names, vec!["b"]);
    }

    #[test]
    fn current_returns_the_installed_recorder() {
        let r = Recorder::new();
        let _g = r.install();
        let got = current().expect("installed");
        {
            let _g2 = got.install();
            instant("via-clone", "t");
        }
        drop(_g);
        assert_eq!(r.drain_events().len(), 1);
    }

    #[test]
    fn cross_thread_events_and_metrics_aggregate() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let r = r.clone();
                scope.spawn(move || {
                    let _g = r.install();
                    for _ in 0..100 {
                        add("work", 1);
                        observe("h", 1.0 + i as f64);
                    }
                    instant("done", "t");
                });
            }
        });
        let events = r.drain_events();
        assert_eq!(events.len(), 4);
        let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 4, "each worker gets its own thread index");
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("work"), Some(400));
        assert_eq!(snap.histogram("h").expect("h").count, 400);
    }

    #[test]
    fn flush_makes_buffered_data_visible_mid_install() {
        let r = Recorder::new();
        let _g = r.install();
        add("c", 1);
        observe("h", 2.0);
        instant("e", "t");
        flush();
        assert_eq!(r.metrics_snapshot().histogram("h").expect("h").count, 1);
        assert_eq!(r.drain_events().len(), 1);
    }
}
