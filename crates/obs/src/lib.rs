#![warn(missing_docs)]

//! `dsd-obs` — structured tracing and metrics for the designer stack.
//!
//! The two-level search (design solver over configuration solver) is an
//! opaque randomized optimizer; this crate makes it observable without
//! perturbing it. Three pieces:
//!
//! * a **tracing core** ([`Recorder`], [`span`], [`instant`]): span
//!   guards with monotonic timing, collected through per-thread buffers
//!   so `parallel_solve` workers never contend on the hot path;
//! * a **metrics registry** ([`MetricsRegistry`]): named counters,
//!   gauges, and log-linear [`Histogram`]s (e.g. `solver.eval_latency`,
//!   `cache.hit_ratio`, `recovery.schedule_len`), snapshotable to JSON;
//! * **exporters** ([`export`]): a JSONL solver trace (one event per
//!   greedy placement, refit move, cache hit/miss, scenario batch) and a
//!   Chrome `trace_event` file loadable in `about:tracing` / Perfetto;
//! * a **self-profiler** ([`profile`]): folds the recorded span stream
//!   into a deterministic, mergeable call-path tree (per-node self and
//!   total time, call counts) behind `dsd obs profile` / `dsd obs
//!   flame` and the bench overhead gates;
//! * a **flight recorder** ([`progress`]): a bounded live channel of
//!   typed progress events — incumbent improvements with the gap to the
//!   certificate bound, phase transitions, per-worker heartbeats — that
//!   a consumer polls while the search runs (status lines, progress
//!   logs, convergence curves);
//! * the workspace's **monotonic clock** ([`Stopwatch`]): the single
//!   helper every elapsed-time field is measured with.
//!
//! # Usage
//!
//! Instrumented code calls the free functions; they are no-ops unless a
//! recorder is installed on the current thread:
//!
//! ```
//! # if cfg!(feature = "off") { return; } // recording compiled away
//! let recorder = dsd_obs::Recorder::new();
//! {
//!     let _guard = recorder.install();
//!     let mut span = dsd_obs::span("solve", "solver");
//!     span.arg("budget", 300u64);
//!     dsd_obs::add("solver.nodes_evaluated", 1);
//!     dsd_obs::observe("solver.eval_latency", 0.002);
//! } // guard drop flushes this thread's buffers
//! let trace = dsd_obs::export::trace_jsonl(&recorder.drain_events());
//! let metrics = recorder.metrics_snapshot();
//! assert_eq!(metrics.counter("solver.nodes_evaluated"), Some(1));
//! assert!(trace.contains("\"name\":\"solve\""));
//! ```
//!
//! # Overhead
//!
//! With no recorder installed every entry point is one thread-local
//! check (see `bench/src/bin/obs.rs` for the measured bound); the `off`
//! cargo feature compiles even that away. Recording never consumes
//! randomness, so instrumented and uninstrumented searches are
//! bit-identical.

mod clock;
mod event;
pub mod export;
mod metrics;
pub mod profile;
pub mod progress;
mod recorder;

pub use clock::{duration_ns, Stopwatch};
pub use event::{ArgValue, Event, EventKind};
pub use metrics::{
    BucketSnapshot, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    MoveRates,
};
pub use profile::{ProfileNode, ProfileRow, ProfileTree, PROFILE_SCHEMA_VERSION};
pub use progress::{ProgressChannel, ProgressEvent, ProgressGuard, ProgressKind};
pub use recorder::{
    add, current, enabled, flush, gauge, instant, instant_with, observe, span, InstallGuard,
    Recorder, Span,
};
