//! Deterministic span-tree self-profiler.
//!
//! The recorder emits a flat span stream (each span knows its name,
//! thread, start offset, and duration — but not its parent). This
//! module folds that stream into a [`ProfileTree`]: per call-path
//! self/total wall time and call counts, plus attached solver counters
//! (evals, cache hits, scenarios recombined). Nesting is reconstructed
//! offline by interval containment — on one thread a span is a child of
//! the innermost span that encloses it — so recording stays a
//! zero-allocation guard drop on the hot path.
//!
//! Design rules, matching the rest of the crate:
//!
//! * **Deterministic**: folding is a pure function of the span stream;
//!   no randomness is consumed, and instrumented solver results are
//!   bit-identical to uninstrumented ones.
//! * **Always mergeable**: nodes are keyed by their span-name path, so
//!   trees folded from parallel workers (or separate runs) merge
//!   losslessly by summing — like the metric histograms, the merged
//!   tree is independent of merge order.
//! * **Verifiable**: within one clock quantum per recorded span, the
//!   children of every node must fit inside it ([`ProfileTree::verify`]).
//!
//! ```
//! # if cfg!(feature = "off") { return; }
//! use dsd_obs::{profile::ProfileTree, span, Recorder};
//! let r = Recorder::new();
//! {
//!     let _g = r.install();
//!     let _solve = span("solver.solve", "solver");
//!     let _greedy = span("solver.greedy", "solver");
//! }
//! let tree = ProfileTree::from_events(&r.drain_events());
//! assert!(tree.verify().is_ok());
//! assert_eq!(tree.rows().len(), 2);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::export::TraceRecord;
use serde::Value;

/// Version of the profile JSON layout ([`ProfileTree::to_value`]).
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Separator between span names in a node path (the collapsed-stack
/// flamegraph convention).
pub const PATH_SEPARATOR: char = ';';

/// One call-path node: aggregated time and count for every span
/// instance that folded onto this path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Total wall time spent in spans on this path (including children).
    pub total_ns: u64,
    /// Span instances folded onto this path.
    pub count: u64,
    /// Child nodes by span name, in name order.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// Total time of the direct children.
    #[must_use]
    pub fn child_total_ns(&self) -> u64 {
        self.children.values().map(|c| c.total_ns).sum()
    }

    /// Time spent in this node itself, excluding children (clamped at
    /// zero: quantization can make children overshoot by a quantum).
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_total_ns())
    }

    fn merge_from(&mut self, other: &ProfileNode) {
        self.total_ns += other.total_ns;
        self.count += other.count;
        for (name, child) in &other.children {
            self.children.entry(name.clone()).or_default().merge_from(child);
        }
    }
}

/// One flattened row of the tree, for tables and exports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Full `;`-separated span-name path from the root.
    pub path: String,
    /// Leaf span name.
    pub name: String,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Total wall time including children.
    pub total_ns: u64,
    /// Self wall time excluding children.
    pub self_ns: u64,
    /// Span instances on this path.
    pub count: u64,
}

/// A merged span-path profile. Build one with
/// [`ProfileTree::from_events`] (in-process) or
/// [`ProfileTree::from_records`] (from a parsed JSONL trace), then
/// combine worker or run trees with [`ProfileTree::merge`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileTree {
    /// Top-level nodes (spans with no enclosing span on their thread).
    pub roots: BTreeMap<String, ProfileNode>,
    /// Clock quantum of the folded source, in nanoseconds: 1 for
    /// in-process events, 1000 for microsecond JSONL traces.
    pub quantum_ns: u64,
    /// Distinct recording threads folded in (summed across merges).
    pub threads: u64,
    /// Attached counters (evals, cache hits, …), summed across merges.
    pub counters: BTreeMap<String, u64>,
}

/// A span interval queued for folding. `idx` points back at the source
/// record so per-instance annotations (the enriched Chrome trace) can
/// be emitted alongside the aggregate tree.
struct SpanIval {
    tid: u64,
    start_ns: u64,
    end_ns: u64,
    name: String,
    idx: usize,
}

/// Per-record fold annotation: the call path the span landed on and its
/// per-instance self time.
struct SpanAnnotation {
    idx: usize,
    path: String,
    self_ns: u64,
}

/// Folds intervals (any order) into path-keyed roots, returning the
/// per-instance annotations as a by-product. Nesting is reconstructed
/// per thread: sort by (start ascending, end descending) so enclosing
/// spans come first, then maintain a stack of open spans.
fn fold(
    mut spans: Vec<SpanIval>,
    roots: &mut BTreeMap<String, ProfileNode>,
) -> Vec<SpanAnnotation> {
    spans.sort_by(|a, b| {
        a.tid
            .cmp(&b.tid)
            .then(a.start_ns.cmp(&b.start_ns))
            .then(b.end_ns.cmp(&a.end_ns))
            .then(a.idx.cmp(&b.idx))
    });

    struct Open {
        end_ns: u64,
        dur_ns: u64,
        child_ns: u64,
        path: String,
        idx: usize,
    }
    let mut annotations = Vec::with_capacity(spans.len());
    let mut stack: Vec<Open> = Vec::new();
    let close = |stack: &mut Vec<Open>, annotations: &mut Vec<SpanAnnotation>| {
        if let Some(open) = stack.pop() {
            annotations.push(SpanAnnotation {
                idx: open.idx,
                path: open.path,
                self_ns: open.dur_ns.saturating_sub(open.child_ns),
            });
        }
    };

    let mut tid = None;
    for span in spans {
        if tid != Some(span.tid) {
            // New thread: every span still open belongs to the previous
            // thread and is finished.
            while !stack.is_empty() {
                close(&mut stack, &mut annotations);
            }
            tid = Some(span.tid);
        }
        while stack.last().is_some_and(|top| top.end_ns <= span.start_ns) {
            close(&mut stack, &mut annotations);
        }
        let (path, end_ns, dur_ns) = match stack.last_mut() {
            Some(parent) => {
                // A child's recorded end can overshoot its parent's — by
                // one quantum of rounding in healthy traces, arbitrarily
                // in truncated or hand-edited ones. Attribute only the
                // overlap with the parent's window, so children stay
                // disjoint and containment holds for any input.
                let end_ns = span.end_ns.min(parent.end_ns);
                let dur_ns = end_ns.saturating_sub(span.start_ns);
                parent.child_ns += dur_ns;
                (format!("{}{PATH_SEPARATOR}{}", parent.path, span.name), end_ns, dur_ns)
            }
            None => (span.name.clone(), span.end_ns, span.end_ns.saturating_sub(span.start_ns)),
        };
        let mut segments = path.split(PATH_SEPARATOR);
        let first = segments.next().expect("path has at least one segment");
        let mut node = roots.entry(first.to_string()).or_default();
        for seg in segments {
            node = node.children.entry(seg.to_string()).or_default();
        }
        node.total_ns += dur_ns;
        node.count += 1;
        stack.push(Open { end_ns, dur_ns, child_ns: 0, path, idx: span.idx });
    }
    while !stack.is_empty() {
        close(&mut stack, &mut annotations);
    }
    annotations
}

fn record_spans(records: &[TraceRecord]) -> Vec<SpanIval> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.kind == "span")
        .map(|(idx, r)| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let start_ns = (r.ts_us.max(0.0) * 1000.0).round() as u64;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let dur_ns = (r.dur_us.max(0.0) * 1000.0).round() as u64;
            SpanIval {
                tid: r.tid,
                start_ns,
                end_ns: start_ns.saturating_add(dur_ns),
                name: r.name.clone(),
                idx,
            }
        })
        .collect()
}

impl ProfileTree {
    /// Folds a drained in-process event stream (nanosecond precision).
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let spans: Vec<SpanIval> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EventKind::Span)
            .map(|(idx, e)| SpanIval {
                tid: e.thread,
                start_ns: e.start_ns,
                end_ns: e.start_ns.saturating_add(e.dur_ns),
                name: e.name.to_string(),
                idx,
            })
            .collect();
        let threads = distinct_tids(spans.iter().map(|s| s.tid));
        let mut roots = BTreeMap::new();
        fold(spans, &mut roots);
        ProfileTree { roots, quantum_ns: 1, threads, counters: BTreeMap::new() }
    }

    /// Folds records parsed from a JSONL trace (microsecond precision).
    #[must_use]
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let spans = record_spans(records);
        let threads = distinct_tids(spans.iter().map(|s| s.tid));
        let mut roots = BTreeMap::new();
        fold(spans, &mut roots);
        ProfileTree { roots, quantum_ns: 1000, threads, counters: BTreeMap::new() }
    }

    /// Attaches named counters (typically a metrics snapshot's counter
    /// map) to the tree. Re-attaching or merging sums values, so
    /// per-worker counter sets stay lossless.
    pub fn attach_counters<'a, I>(&mut self, counters: I)
    where
        I: IntoIterator<Item = (&'a String, &'a u64)>,
    {
        for (name, value) in counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// Merges another tree into this one by summing path-keyed nodes,
    /// thread counts, and counters. Merging is commutative and
    /// associative, so worker trees can be combined in any order.
    pub fn merge(&mut self, other: &ProfileTree) {
        self.quantum_ns = self.quantum_ns.max(other.quantum_ns);
        self.threads += other.threads;
        for (name, node) in &other.roots {
            self.roots.entry(name.clone()).or_default().merge_from(node);
        }
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// Total wall time across all roots.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.roots.values().map(|n| n.total_ns).sum()
    }

    /// Fraction of root wall time attributed to non-root nodes:
    /// `1 - Σ root self / Σ root total`. Zero for an empty tree.
    #[must_use]
    pub fn attributed_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        let self_ns: u64 = self.roots.values().map(ProfileNode::self_ns).sum();
        #[allow(clippy::cast_precision_loss)]
        {
            1.0 - self_ns as f64 / total as f64
        }
    }

    /// Checks the containment invariant on every node: the children's
    /// total time must fit inside the parent's, within one clock
    /// quantum of slack per folded span instance (quantization error
    /// accumulates once per recorded span).
    ///
    /// # Errors
    ///
    /// The path and amounts of the first violating node.
    pub fn verify(&self) -> Result<(), String> {
        fn walk(path: &str, node: &ProfileNode, quantum_ns: u64) -> Result<(), String> {
            let child_total = node.child_total_ns();
            let instances: u64 = node.children.values().map(|c| c.count).sum::<u64>() + node.count;
            let slack = quantum_ns.saturating_mul(instances);
            if child_total > node.total_ns.saturating_add(slack) {
                return Err(format!(
                    "node `{path}`: children total {child_total}ns exceeds \
                     own total {}ns + slack {slack}ns",
                    node.total_ns
                ));
            }
            for (name, child) in &node.children {
                walk(&format!("{path}{PATH_SEPARATOR}{name}"), child, quantum_ns)?;
            }
            Ok(())
        }
        for (name, node) in &self.roots {
            walk(name, node, self.quantum_ns)?;
        }
        Ok(())
    }

    /// Flattens the tree into preorder rows (depth-first, children in
    /// name order) for tables and exports.
    #[must_use]
    pub fn rows(&self) -> Vec<ProfileRow> {
        fn walk(
            path: &str,
            name: &str,
            depth: usize,
            node: &ProfileNode,
            out: &mut Vec<ProfileRow>,
        ) {
            out.push(ProfileRow {
                path: path.to_string(),
                name: name.to_string(),
                depth,
                total_ns: node.total_ns,
                self_ns: node.self_ns(),
                count: node.count,
            });
            for (child_name, child) in &node.children {
                walk(
                    &format!("{path}{PATH_SEPARATOR}{child_name}"),
                    child_name,
                    depth + 1,
                    child,
                    out,
                );
            }
        }
        let mut out = Vec::new();
        for (name, node) in &self.roots {
            walk(name, name, 0, node, &mut out);
        }
        out
    }

    /// Renders the tree in the collapsed-stack format consumed by
    /// standard flamegraph tooling: one `path self_time` line per node
    /// with nonzero self time, self time in integer microseconds,
    /// preorder (deterministic for a given tree).
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for row in self.rows() {
            let self_us = row.self_ns / 1000;
            if self_us > 0 {
                let _ = writeln!(out, "{} {}", row.path, self_us);
            }
        }
        out
    }

    /// Serializes the profile as a schema-versioned JSON value for
    /// `--json` exports and the bench report. Times are microseconds;
    /// every numeric leaf is diffable by `flatten_numeric`.
    #[must_use]
    pub fn to_value(&self) -> Value {
        fn node_value(node: &ProfileNode) -> Value {
            Value::Map(vec![
                ("total_us".to_string(), Value::Float(ns_to_us(node.total_ns))),
                ("self_us".to_string(), Value::Float(ns_to_us(node.self_ns()))),
                ("count".to_string(), Value::Int(int(node.count))),
                (
                    "children".to_string(),
                    Value::Map(
                        node.children
                            .iter()
                            .map(|(name, child)| (name.clone(), node_value(child)))
                            .collect(),
                    ),
                ),
            ])
        }
        Value::Map(vec![
            ("schema_version".to_string(), Value::Int(int(PROFILE_SCHEMA_VERSION))),
            ("quantum_ns".to_string(), Value::Int(int(self.quantum_ns))),
            ("threads".to_string(), Value::Int(int(self.threads))),
            ("attributed_fraction".to_string(), Value::Float(self.attributed_fraction())),
            (
                "counters".to_string(),
                Value::Map(
                    self.counters.iter().map(|(k, v)| (k.clone(), Value::Int(int(*v)))).collect(),
                ),
            ),
            (
                "tree".to_string(),
                Value::Map(self.roots.iter().map(|(k, v)| (k.clone(), node_value(v))).collect()),
            ),
        ])
    }
}

#[allow(clippy::cast_precision_loss)]
fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

#[allow(clippy::cast_possible_wrap)]
fn int(v: u64) -> i64 {
    v as i64
}

fn distinct_tids<I: Iterator<Item = u64>>(tids: I) -> u64 {
    let mut seen: Vec<u64> = tids.collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u64
}

/// Chrome `trace_event` JSON enriched with the fold: every span event
/// gains `path` (its reconstructed call path) and `self_us` arguments,
/// so flamegraph-style grouping works directly in the trace viewer.
/// Instants pass through unchanged.
#[must_use]
pub fn chrome_trace_enriched(records: &[TraceRecord]) -> String {
    let mut roots = BTreeMap::new();
    let annotations = fold(record_spans(records), &mut roots);
    let mut extras: BTreeMap<usize, (String, u64)> =
        annotations.into_iter().map(|a| (a.idx, (a.path, a.self_ns))).collect();

    let mut entries = Vec::with_capacity(records.len());
    for (idx, r) in records.iter().enumerate() {
        let mut fields: Vec<(String, Value)> = vec![
            ("name".to_string(), Value::Str(r.name.clone())),
            ("cat".to_string(), Value::Str(r.cat.clone())),
            ("ph".to_string(), Value::Str(if r.kind == "span" { "X" } else { "i" }.to_string())),
            ("ts".to_string(), Value::Float(r.ts_us)),
        ];
        if r.kind == "span" {
            fields.push(("dur".to_string(), Value::Float(r.dur_us)));
        }
        fields.push(("pid".to_string(), Value::Int(1)));
        fields.push(("tid".to_string(), Value::Int(int(r.tid))));
        let mut args: Vec<(String, Value)> = match &r.args {
            Value::Map(entries) => entries.clone(),
            _ => Vec::new(),
        };
        if let Some((path, self_ns)) = extras.remove(&idx) {
            args.push(("path".to_string(), Value::Str(path)));
            args.push(("self_us".to_string(), Value::Float(ns_to_us(self_ns))));
        }
        fields.push(("args".to_string(), Value::Map(args)));
        entries.push(Value::Map(fields));
    }
    let doc = Value::Map(vec![("traceEvents".to_string(), Value::Seq(entries))]);
    crate::export::to_compact_json(&doc)
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::export::parse_jsonl;

    /// A synthetic span line in the recorder's JSONL schema.
    fn span_line(name: &str, ts_us: f64, dur_us: f64, tid: u64) -> String {
        format!(
            "{{\"ts_us\":{ts_us},\"dur_us\":{dur_us},\"kind\":\"span\",\
             \"name\":\"{name}\",\"cat\":\"t\",\"tid\":{tid},\"args\":{{}}}}"
        )
    }

    fn sample_tree() -> ProfileTree {
        // solve [0,1000) > greedy [0,300) + refit [300,900); refit >
        // round [310,400) + round [420,520).
        let text = [
            span_line("solve", 0.0, 1000.0, 0),
            span_line("greedy", 0.0, 300.0, 0),
            span_line("refit", 300.0, 600.0, 0),
            span_line("round", 310.0, 90.0, 0),
            span_line("round", 420.0, 100.0, 0),
        ]
        .join("\n");
        ProfileTree::from_records(&parse_jsonl(&text).records)
    }

    #[test]
    fn fold_reconstructs_nesting_by_containment() {
        let tree = sample_tree();
        assert_eq!(tree.roots.len(), 1);
        let solve = &tree.roots["solve"];
        assert_eq!(solve.total_ns, 1_000_000);
        assert_eq!(solve.children.len(), 2);
        let refit = &solve.children["refit"];
        assert_eq!(refit.total_ns, 600_000);
        let round = &refit.children["round"];
        assert_eq!(round.count, 2);
        assert_eq!(round.total_ns, 190_000);
        assert_eq!(refit.self_ns(), 410_000);
        assert_eq!(solve.self_ns(), 100_000);
        assert!(tree.verify().is_ok());
    }

    #[test]
    fn same_name_spans_on_different_threads_stay_separate_roots_until_merged() {
        let text = [span_line("work", 0.0, 100.0, 0), span_line("work", 0.0, 200.0, 1)].join("\n");
        let tree = ProfileTree::from_records(&parse_jsonl(&text).records);
        assert_eq!(tree.threads, 2);
        assert_eq!(tree.roots["work"].count, 2);
        assert_eq!(tree.roots["work"].total_ns, 300_000);
    }

    #[test]
    fn merge_sums_paths_threads_and_counters() {
        let mut a = sample_tree();
        let counters = [("evals".to_string(), 7u64)];
        a.attach_counters(counters.iter().map(|(k, v)| (k, v)));
        let mut b = sample_tree();
        b.attach_counters(counters.iter().map(|(k, v)| (k, v)));
        a.merge(&b);
        assert_eq!(a.roots["solve"].total_ns, 2_000_000);
        assert_eq!(a.roots["solve"].children["refit"].children["round"].count, 4);
        assert_eq!(a.counters["evals"], 14);
        assert_eq!(a.threads, 2);
        assert!(a.verify().is_ok());
    }

    #[test]
    fn verify_rejects_an_overfull_parent() {
        let mut tree = sample_tree();
        let solve = tree.roots.get_mut("solve").unwrap();
        solve.total_ns = 100; // far less than the children's 900_000
        let err = tree.verify().unwrap_err();
        assert!(err.contains("solve"), "unexpected error: {err}");
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let tree = sample_tree();
        let collapsed = tree.collapsed();
        let expected = "solve 100\nsolve;greedy 300\nsolve;refit 410\nsolve;refit;round 190\n";
        assert_eq!(collapsed, expected);
    }

    #[test]
    fn attributed_fraction_counts_non_root_time() {
        let tree = sample_tree();
        let frac = tree.attributed_fraction();
        assert!((frac - 0.9).abs() < 1e-9, "fraction {frac}");
    }

    #[test]
    fn json_export_is_schema_versioned_and_diffable() {
        let tree = sample_tree();
        let value = tree.to_value();
        assert_eq!(value.get("schema_version"), Some(&Value::Int(1)));
        let flat = crate::export::flatten_numeric(&value);
        assert!(flat.iter().any(|(path, v)| path == "tree.solve.total_us" && *v == 1000.0));
        assert!(flat
            .iter()
            .any(|(path, v)| path == "tree.solve.children.refit.self_us" && *v == 410.0));
    }

    #[test]
    fn enriched_chrome_trace_carries_paths() {
        let text =
            [span_line("solve", 0.0, 1000.0, 0), span_line("greedy", 0.0, 300.0, 0)].join("\n");
        let records = parse_jsonl(&text).records;
        let chrome = chrome_trace_enriched(&records);
        assert!(chrome.contains("\"path\":\"solve;greedy\""), "missing path: {chrome}");
        assert!(chrome.contains("\"self_us\":700"), "missing self: {chrome}");
    }

    /// Diffing two profile exports where a node flow appears or
    /// disappears classifies its one-sided leaves as added/removed —
    /// the `dsd obs diff` contract for profile sections.
    #[test]
    fn diff_classifies_appearing_and_vanishing_node_flows() {
        use crate::export::{diff_numeric, DiffClass};
        let a = sample_tree().to_value();
        let with_polish = [
            span_line("solve", 0.0, 1000.0, 0),
            span_line("greedy", 0.0, 300.0, 0),
            span_line("polish", 300.0, 600.0, 0),
        ]
        .join("\n");
        let b = ProfileTree::from_records(&parse_jsonl(&with_polish).records).to_value();
        let entries = diff_numeric(&a, &b);
        let class_of = |path: &str| {
            entries.iter().find(|e| e.name == path).map(super::super::export::DiffEntry::classify)
        };
        assert_eq!(
            class_of("tree.solve.children.polish.total_us"),
            Some(DiffClass::Added),
            "new node flow classifies as added"
        );
        assert_eq!(
            class_of("tree.solve.children.refit.total_us"),
            Some(DiffClass::Removed),
            "vanished node flow classifies as removed"
        );
        assert_eq!(
            class_of("tree.solve.children.greedy.total_us"),
            Some(DiffClass::Unchanged),
            "stable flows stay unchanged"
        );
    }

    #[test]
    fn empty_tree_is_valid_and_zero() {
        let tree = ProfileTree::from_records(&[]);
        assert!(tree.verify().is_ok());
        assert_eq!(tree.total_ns(), 0);
        assert_eq!(tree.attributed_fraction(), 0.0);
        assert!(tree.collapsed().is_empty());
    }
}
