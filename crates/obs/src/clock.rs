//! The single monotonic clock the workspace times with.
//!
//! Every elapsed-time field the solvers and benches report —
//! `SolveStats` stage times, budget deadlines, bench rep timings,
//! progress-event offsets — goes through [`Stopwatch`] so there is
//! exactly one place that decides which clock is read. The clock is
//! `std::time::Instant` (monotonic, immune to wall-clock adjustments);
//! nothing in the workspace should call `Instant::now()` for timing
//! directly.

use std::time::{Duration, Instant};

/// A started monotonic clock. Cheap to copy; reading it never blocks and
/// never consumes randomness.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

impl Stopwatch {
    /// Starts the clock now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in whole nanoseconds, saturating at `u64::MAX`
    /// (~584 years — effectively never).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        duration_ns(self.elapsed())
    }

    /// Elapsed time in (fractional) seconds.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// A `Duration` as whole nanoseconds, saturating at `u64::MAX`.
#[must_use]
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn duration_ns_saturates() {
        assert_eq!(duration_ns(Duration::from_nanos(125)), 125);
        assert_eq!(duration_ns(Duration::MAX), u64::MAX);
    }
}
