//! Metrics registry: named counters, gauges, and log-linear histograms.
//!
//! The registry is the durable side of the observability layer: where the
//! trace answers "what happened, in order", the registry answers "how
//! much, how often, how slow" in constant space. Counters and gauges are
//! single atomics shared by reference, so the hot path never takes the
//! registry lock after the first touch of a series; histograms are
//! accumulated in per-thread buffers (see [`crate::recorder`]) and merged
//! in, so concurrent observations are lossless.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two. Eight gives ~9% relative bucket width,
/// plenty for latency percentiles.
const SUB_BUCKETS: i32 = 8;

/// A shared monotonically-increasing counter cell.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared last-write-wins gauge cell (stores f64 bits atomically).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log-linear histogram over positive `f64` values.
///
/// Each power of two is split into [`SUB_BUCKETS`] linear sub-buckets, so
/// relative error is bounded (~9%) across the full dynamic range without
/// preconfigured bounds. Non-positive and non-finite values land in a
/// dedicated underflow count so they are visible rather than silently
/// dropped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    underflow: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(value: f64) -> i32 {
        // value in [2^e, 2^(e+1)) maps to octave e, linear sub-bucket.
        let octave = value.log2().floor();
        let sub = ((value / octave.exp2() - 1.0) * f64::from(SUB_BUCKETS)).floor();
        let sub = (sub as i32).clamp(0, SUB_BUCKETS - 1);
        (octave as i32) * SUB_BUCKETS + sub
    }

    /// Lower bound of the bucket with the given index.
    #[must_use]
    fn bucket_lower(index: i32) -> f64 {
        let octave = index.div_euclid(SUB_BUCKETS);
        let sub = index.rem_euclid(SUB_BUCKETS);
        f64::from(octave).exp2() * (1.0 + f64::from(sub) / f64::from(SUB_BUCKETS))
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if !(value.is_finite() && value > 0.0) {
            self.underflow += 1;
            return;
        }
        *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Merges another histogram into this one. Merging is exact: bucket
    /// counts add, so the merged histogram equals one built from the
    /// concatenated observation streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.underflow += other.underflow;
    }

    /// Number of positive observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all positive observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of positive observations (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket containing the q-th observation, clamped to the observed
    /// min/max so the extremes are exact.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Self::bucket_lower(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Snapshot for export.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            underflow: self.underflow,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .map(|(&idx, &n)| BucketSnapshot { lower: Self::bucket_lower(idx), count: n })
                .collect(),
        }
    }
}

/// One exported histogram bucket: `[lower, next.lower)` holds `count`
/// observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Inclusive lower bound of the bucket.
    pub lower: f64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Exported summary of a histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Positive observations recorded.
    pub count: u64,
    /// Non-positive / non-finite observations (recorded but unbucketed).
    pub underflow: u64,
    /// Sum of positive observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Mean observation.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 95th percentile estimate.
    pub p95: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<BucketSnapshot>,
}

/// A named-series registry. Cheap to share: lookups hand out `Arc` cells
/// so repeat increments bypass the registry lock entirely.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter cell named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge cell named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// Records one observation into the histogram named `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut h = Histogram::new();
        h.observe(value);
        self.merge_histogram(name, &h);
    }

    /// Merges a locally-accumulated histogram into the named series.
    pub fn merge_histogram(&self, name: &str, local: &Histogram) {
        let cell = {
            let mut map = self.histograms.lock().expect("histogram map poisoned");
            match map.get(name) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = Arc::new(Mutex::new(Histogram::new()));
                    map.insert(name.to_owned(), Arc::clone(&h));
                    h
                }
            }
        };
        cell.lock().expect("histogram cell poisoned").merge(local);
    }

    /// A point-in-time snapshot of every series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().expect("histogram cell poisoned").snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Total number of named series across all kinds.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// A counter's value, when present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A histogram's snapshot, when present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// A gauge's value, when present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Per-move-type trial/acceptance rates, paired from the solvers'
    /// `solver.trials.<kind>` / `solver.accepted.<kind>` counters. One
    /// entry per kind that recorded at least one trial or acceptance,
    /// in name order.
    #[must_use]
    pub fn move_rates(&self) -> Vec<MoveRates> {
        let mut kinds: Vec<String> = self
            .counters
            .keys()
            .filter_map(|name| {
                name.strip_prefix("solver.trials.")
                    .or_else(|| name.strip_prefix("solver.accepted."))
                    .map(str::to_string)
            })
            .collect();
        kinds.sort();
        kinds.dedup();
        kinds
            .into_iter()
            .map(|kind| MoveRates {
                trials: self.counter(&format!("solver.trials.{kind}")).unwrap_or(0),
                accepted: self.counter(&format!("solver.accepted.{kind}")).unwrap_or(0),
                kind,
            })
            .collect()
    }
}

/// Trial and acceptance counts of one move kind, for convergence
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRates {
    /// Move-kind label (`reassign`, `add_links`, ...).
    pub kind: String,
    /// Applied-and-evaluated trials.
    pub trials: u64,
    /// Trials committed into the design.
    pub accepted: u64,
}

impl MoveRates {
    /// Accepted / trials, `None` when no trials ran.
    #[must_use]
    pub fn acceptance_rate(&self) -> Option<f64> {
        if self.trials == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.accepted as f64 / self.trials as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.counter("a").add(4);
        reg.gauge("g").set(2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(7));
        assert_eq!(snap.gauges.get("g"), Some(&2.5));
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.series_count(), 2);
    }

    #[test]
    fn move_rates_pair_trial_and_accept_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("solver.trials.reassign").add(10);
        reg.counter("solver.accepted.reassign").add(4);
        reg.counter("solver.trials.add_links").add(3);
        reg.counter("unrelated").add(1);
        let rates = reg.snapshot().move_rates();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].kind, "add_links");
        assert_eq!(rates[0].trials, 3);
        assert_eq!(rates[0].accepted, 0);
        assert_eq!(rates[0].acceptance_rate(), Some(0.0));
        assert_eq!(rates[1].kind, "reassign");
        assert_eq!(rates[1].acceptance_rate(), Some(0.4));
        assert_eq!(MoveRates { kind: "x".into(), trials: 0, accepted: 0 }.acceptance_rate(), None);
    }

    #[test]
    fn histogram_buckets_bound_relative_error() {
        let mut h = Histogram::new();
        for &v in &[0.001, 0.5, 1.0, 1.5, 2.0, 100.0, 1e6] {
            h.observe(v);
            let idx = Histogram::bucket_index(v);
            let lower = Histogram::bucket_lower(idx);
            let upper = Histogram::bucket_lower(idx + 1);
            assert!(
                lower <= v * 1.0000001 && v < upper * 1.0000001,
                "{v} not in [{lower},{upper})"
            );
        }
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantiles_are_order_accurate() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(f64::from(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99 {p99}");
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        // Quarter-integer values sum exactly in f64, so the merged sum
        // matches the interleaved sum bit-for-bit.
        for i in 0..500 {
            let v = 0.25 * f64::from(i + 1);
            all.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn non_positive_observations_counted_as_underflow() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-1.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(1.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.underflow, 4);
    }

    #[test]
    fn snapshot_serializes_and_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("solver.nodes").add(10);
        reg.observe("lat", 0.25);
        reg.observe("lat", 0.5);
        let snap = reg.snapshot();
        let json = serde_json::to_string_pretty(&snap).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.histogram("lat").expect("lat").count, 2);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!((snap.count, snap.min, snap.max, snap.p50), (0, 0.0, 0.0, 0.0));
    }
}
