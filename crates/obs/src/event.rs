//! Trace events: the unit of data the recorder collects.

use serde::Value;

/// The shape of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed region with a start and a duration (Chrome `ph: "X"`).
    Span,
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant,
}

impl EventKind {
    /// The event's name in the JSONL schema.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        }
    }
}

/// A single argument value attached to an event.
///
/// A small closed set keeps the hot path allocation-free for numeric
/// arguments; strings allocate only when actually attached.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Integer argument.
    Int(i64),
    /// Floating-point argument.
    Float(f64),
    /// String argument.
    Str(String),
    /// Boolean argument.
    Bool(bool),
}

impl ArgValue {
    /// Converts to the serde value tree for export.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            ArgValue::Int(i) => Value::Int(*i),
            ArgValue::Float(f) => Value::Float(*f),
            ArgValue::Str(s) => Value::Str(s.clone()),
            ArgValue::Bool(b) => Value::Bool(*b),
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded event. Timestamps are nanoseconds since the owning
/// recorder's epoch (monotonic clock), so events from different threads
/// order consistently.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (static so recording never allocates for it).
    pub name: &'static str,
    /// Category, e.g. `"solver"`, `"cache"`, `"recovery"`.
    pub cat: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start offset from the recorder epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Dense per-recorder thread index (assigned at install time).
    pub thread: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Looks up an argument by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}
