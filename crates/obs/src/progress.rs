//! The flight recorder: a live progress channel for long-running solves.
//!
//! Spans and metrics ([`crate::Recorder`]) answer *where did the time
//! go* after a run finishes; the [`ProgressChannel`] answers *how is the
//! search doing right now*. Solvers emit typed [`ProgressEvent`]s —
//! incumbent improvements (with the gap to the certificate bound),
//! phase transitions, per-worker heartbeats, restarts, completion — and
//! a consumer on another thread polls them to drive a status line, a
//! progress log, or (eventually) a fleet scheduler.
//!
//! The discipline matches the tracing core:
//!
//! * with no channel installed, every emission is one thread-local bool
//!   read (and the `off` cargo feature compiles even that away);
//! * emission never consumes randomness and never mutates solver state,
//!   so instrumented and uninstrumented searches are bit-identical;
//! * the queue is bounded: on overflow the *oldest* event is dropped
//!   (and counted), so the most recent incumbent always survives — a
//!   truncated flight log still ends at the final answer.
//!
//! ```
//! # if cfg!(feature = "off") { return; }
//! use dsd_obs::progress;
//! let channel = progress::ProgressChannel::new();
//! {
//!     let _guard = channel.install();
//!     progress::phase_entered("greedy");
//!     progress::incumbent_improved(120.5, Some(4.2), 37);
//!     progress::done(Some(120.5), Some(4.2), 37);
//! }
//! let events = channel.poll();
//! assert_eq!(events.len(), 3);
//! ```

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Stopwatch;
use crate::export::{to_compact_json, write_compact};
use serde::Value;

/// Queued events retained before the oldest are dropped.
const DEFAULT_CAPACITY: usize = 65_536;

/// What a [`ProgressEvent`] reports.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressKind {
    /// The worker entered a named solver phase (greedy, refit, …).
    PhaseEntered {
        /// Phase name.
        phase: String,
    },
    /// A new best design was found.
    IncumbentImproved {
        /// Objective value of the new incumbent (dollars).
        cost: f64,
        /// Gap to the certificate lower bound, percent; `None` when no
        /// bound was computed for this run.
        gap_pct: Option<f64>,
        /// Candidate evaluations performed so far on this worker.
        evals: u64,
    },
    /// Periodic liveness/throughput report from one worker.
    WorkerHeartbeat {
        /// Candidate evaluations performed so far on this worker.
        evals: u64,
        /// Evaluation throughput since the worker started.
        evals_per_sec: f64,
        /// Evaluation-cache hit rate in `[0, 1]` (0 when no cache).
        cache_hit_rate: f64,
    },
    /// The search restarted from a fresh design.
    Restart {
        /// Restarts performed so far on this worker (1-based).
        restarts: u64,
    },
    /// A portfolio worker stole a queued task from another worker.
    TaskStolen {
        /// Lane index of the worker the task was taken from.
        victim: u64,
        /// Steals performed so far on this worker (1-based).
        steals: u64,
    },
    /// A portfolio worker adopted the shared incumbent as its working
    /// design (cooperation, as opposed to finding its own improvement).
    IncumbentAdopted {
        /// Objective value of the adopted incumbent (dollars).
        cost: f64,
        /// Adoptions performed so far on this worker (1-based).
        adoptions: u64,
    },
    /// The worker finished its search.
    Done {
        /// Final objective value, when a feasible design was found.
        cost: Option<f64>,
        /// Final gap to the certificate bound, percent.
        gap_pct: Option<f64>,
        /// Total candidate evaluations on this worker.
        evals: u64,
    },
}

impl ProgressKind {
    /// Short tag used as the `t` field of the JSONL encoding.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            ProgressKind::PhaseEntered { .. } => "phase",
            ProgressKind::IncumbentImproved { .. } => "incumbent",
            ProgressKind::WorkerHeartbeat { .. } => "heartbeat",
            ProgressKind::Restart { .. } => "restart",
            ProgressKind::TaskStolen { .. } => "steal",
            ProgressKind::IncumbentAdopted { .. } => "adopt",
            ProgressKind::Done { .. } => "done",
        }
    }
}

/// One typed event on the progress channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Dense worker index (assigned per [`ProgressChannel::install`]).
    pub worker: u64,
    /// Nanoseconds since the channel was created (monotonic).
    pub elapsed_ns: u64,
    /// What happened.
    pub kind: ProgressKind,
}

impl ProgressEvent {
    /// Elapsed time as fractional seconds.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }
}

#[derive(Debug)]
struct Shared {
    epoch: Stopwatch,
    enabled: bool,
    capacity: usize,
    queue: Mutex<VecDeque<ProgressEvent>>,
    dropped: AtomicU64,
    next_worker: AtomicU64,
}

/// A bounded multi-producer channel of [`ProgressEvent`]s. Cloning is
/// cheap (one `Arc`); all clones share the queue, so a consumer thread
/// can [`ProgressChannel::poll`] while worker threads emit.
#[derive(Debug, Clone)]
pub struct ProgressChannel {
    shared: Arc<Shared>,
}

impl Default for ProgressChannel {
    fn default() -> Self {
        ProgressChannel::new()
    }
}

impl ProgressChannel {
    /// A channel that collects events (default capacity).
    #[must_use]
    pub fn new() -> Self {
        ProgressChannel::with_settings(true, DEFAULT_CAPACITY)
    }

    /// A channel with an explicit queue capacity (≥ 1). On overflow the
    /// oldest queued event is dropped and counted.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ProgressChannel::with_settings(true, capacity.max(1))
    }

    /// A channel that can be installed but records nothing — the
    /// baseline for overhead measurements.
    #[must_use]
    pub fn disabled() -> Self {
        ProgressChannel::with_settings(false, 1)
    }

    fn with_settings(enabled: bool, capacity: usize) -> Self {
        ProgressChannel {
            shared: Arc::new(Shared {
                epoch: Stopwatch::start(),
                enabled,
                capacity,
                queue: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
                next_worker: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this channel actually collects events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Installs this channel as the current thread's progress sink and
    /// returns a guard; emission stops when the guard drops and the
    /// previously installed channel, if any, is restored. Each install
    /// is assigned the next dense worker index, so fan-out workers that
    /// install their own clone get distinct lanes.
    #[must_use]
    pub fn install(&self) -> ProgressGuard {
        if cfg!(feature = "off") {
            return ProgressGuard { previous: None, active: false };
        }
        let worker = self.shared.next_worker.fetch_add(1, Ordering::Relaxed);
        let sender = Sender { shared: Arc::clone(&self.shared), worker };
        let previous = CURRENT.with(|c| c.borrow_mut().replace(sender));
        ACTIVE.with(|a| a.set(self.shared.enabled));
        ProgressGuard { previous, active: true }
    }

    /// Takes every event queued since the last poll, in emission order.
    /// Safe to call from any thread while producers are still emitting.
    #[must_use]
    pub fn poll(&self) -> Vec<ProgressEvent> {
        let mut queue = self.shared.queue.lock().expect("progress queue poisoned");
        queue.drain(..).collect()
    }

    /// Events dropped so far because the queue was full (oldest-first).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    fn push(&self, event: ProgressEvent) {
        let mut queue = self.shared.queue.lock().expect("progress queue poisoned");
        if queue.len() >= self.shared.capacity {
            queue.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(event);
    }
}

#[derive(Debug, Clone)]
struct Sender {
    shared: Arc<Shared>,
    worker: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<Sender>> = const { RefCell::new(None) };
    // Fast gate consulted before touching the RefCell: true only while
    // an *enabled* channel is installed — the same single-bool discipline
    // as the tracing recorder.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Guard returned by [`ProgressChannel::install`]; restores the previous
/// channel on drop.
pub struct ProgressGuard {
    previous: Option<Sender>,
    active: bool,
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let restored_active = self.previous.as_ref().is_some_and(|s| s.shared.enabled);
        CURRENT.with(|c| {
            *c.borrow_mut() = self.previous.take();
        });
        ACTIVE.with(|a| a.set(restored_active));
    }
}

/// Runs `f` with the current thread's sender, if an enabled channel is
/// installed — the single "is anyone listening" check.
fn with_sender<T>(f: impl FnOnce(&Sender) -> T) -> Option<T> {
    if cfg!(feature = "off") {
        return None;
    }
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    CURRENT.with(|c| {
        let borrow = c.try_borrow().ok()?;
        match borrow.as_ref() {
            Some(sender) if sender.shared.enabled => Some(f(sender)),
            _ => None,
        }
    })
}

/// Whether an enabled progress channel is installed on this thread.
#[must_use]
pub fn enabled() -> bool {
    with_sender(|_| ()).is_some()
}

/// The channel currently installed on this thread, if any (enabled or
/// not). Lets fan-out drivers propagate the caller's channel to worker
/// threads, exactly like [`crate::current`] for the recorder.
#[must_use]
pub fn current() -> Option<ProgressChannel> {
    if cfg!(feature = "off") {
        return None;
    }
    CURRENT.with(|c| {
        c.try_borrow()
            .ok()
            .and_then(|b| b.as_ref().map(|s| ProgressChannel { shared: Arc::clone(&s.shared) }))
    })
}

fn emit(kind: ProgressKind) {
    with_sender(|sender| {
        let event = ProgressEvent {
            worker: sender.worker,
            elapsed_ns: sender.shared.epoch.elapsed_ns(),
            kind,
        };
        ProgressChannel { shared: Arc::clone(&sender.shared) }.push(event);
    });
}

/// Reports entry into a named solver phase.
pub fn phase_entered(phase: &str) {
    if enabled() {
        emit(ProgressKind::PhaseEntered { phase: phase.to_string() });
    }
}

/// Reports a new incumbent design.
pub fn incumbent_improved(cost: f64, gap_pct: Option<f64>, evals: u64) {
    emit(ProgressKind::IncumbentImproved { cost, gap_pct, evals });
}

/// Reports worker liveness and throughput.
pub fn worker_heartbeat(evals: u64, evals_per_sec: f64, cache_hit_rate: f64) {
    emit(ProgressKind::WorkerHeartbeat { evals, evals_per_sec, cache_hit_rate });
}

/// Reports a restart from a fresh design.
pub fn restart(restarts: u64) {
    emit(ProgressKind::Restart { restarts });
}

/// Reports a work-stealing event: this worker took a task queued on
/// `victim`'s deque.
pub fn task_stolen(victim: u64, steals: u64) {
    emit(ProgressKind::TaskStolen { victim, steals });
}

/// Reports adoption of the shared incumbent as this worker's design.
pub fn incumbent_adopted(cost: f64, adoptions: u64) {
    emit(ProgressKind::IncumbentAdopted { cost, adoptions });
}

/// Reports search completion.
pub fn done(cost: Option<f64>, gap_pct: Option<f64>, evals: u64) {
    emit(ProgressKind::Done { cost, gap_pct, evals });
}

fn opt_float(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Float)
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn event_value(event: &ProgressEvent) -> Value {
    let mut map = vec![
        ("t".to_string(), Value::Str(event.kind.tag().to_string())),
        ("worker".to_string(), int(event.worker)),
        ("ns".to_string(), int(event.elapsed_ns)),
    ];
    match &event.kind {
        ProgressKind::PhaseEntered { phase } => {
            map.push(("phase".to_string(), Value::Str(phase.clone())));
        }
        ProgressKind::IncumbentImproved { cost, gap_pct, evals } => {
            map.push(("cost".to_string(), Value::Float(*cost)));
            map.push(("gap_pct".to_string(), opt_float(*gap_pct)));
            map.push(("evals".to_string(), int(*evals)));
        }
        ProgressKind::WorkerHeartbeat { evals, evals_per_sec, cache_hit_rate } => {
            map.push(("evals".to_string(), int(*evals)));
            map.push(("evals_per_sec".to_string(), Value::Float(*evals_per_sec)));
            map.push(("cache_hit_rate".to_string(), Value::Float(*cache_hit_rate)));
        }
        ProgressKind::Restart { restarts } => {
            map.push(("restarts".to_string(), int(*restarts)));
        }
        ProgressKind::TaskStolen { victim, steals } => {
            map.push(("victim".to_string(), int(*victim)));
            map.push(("steals".to_string(), int(*steals)));
        }
        ProgressKind::IncumbentAdopted { cost, adoptions } => {
            map.push(("cost".to_string(), Value::Float(*cost)));
            map.push(("adoptions".to_string(), int(*adoptions)));
        }
        ProgressKind::Done { cost, gap_pct, evals } => {
            map.push(("cost".to_string(), opt_float(*cost)));
            map.push(("gap_pct".to_string(), opt_float(*gap_pct)));
            map.push(("evals".to_string(), int(*evals)));
        }
    }
    Value::Map(map)
}

/// Renders progress events as JSONL — one compact object per line, in
/// emission order. Floats use Rust's shortest round-trip formatting, so
/// a parsed-back `cost` is bit-identical to the emitted one.
#[must_use]
pub fn progress_jsonl(events: &[ProgressEvent]) -> String {
    let mut out = String::new();
    for event in events {
        write_compact(&event_value(event), &mut out);
        out.push('\n');
    }
    out
}

/// One progress event as a compact JSON line (no trailing newline) —
/// for streaming appends to an open log.
#[must_use]
pub fn progress_line(event: &ProgressEvent) -> String {
    to_compact_json(&event_value(event))
}

/// Result of leniently parsing a progress log: everything that parsed,
/// plus a count of lines that did not (truncated tails, corruption).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedProgress {
    /// Events in file order.
    pub events: Vec<ProgressEvent>,
    /// Non-blank lines skipped because they did not parse.
    pub skipped: u64,
    /// Description of the first skipped line, for diagnostics.
    pub first_error: Option<String>,
}

fn num(map: &Value, key: &str) -> Option<f64> {
    match map.get(key)? {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn opt_num(map: &Value, key: &str) -> Option<f64> {
    match map.get(key) {
        Some(Value::Float(f)) => Some(*f),
        Some(Value::Int(i)) => Some(*i as f64),
        _ => None,
    }
}

fn parse_event(value: &Value) -> Option<ProgressEvent> {
    let Value::Str(tag) = value.get("t")? else { return None };
    let worker = num(value, "worker")? as u64;
    let elapsed_ns = num(value, "ns")? as u64;
    let kind = match tag.as_str() {
        "phase" => match value.get("phase")? {
            Value::Str(phase) => ProgressKind::PhaseEntered { phase: phase.clone() },
            _ => return None,
        },
        "incumbent" => ProgressKind::IncumbentImproved {
            cost: num(value, "cost")?,
            gap_pct: opt_num(value, "gap_pct"),
            evals: num(value, "evals")? as u64,
        },
        "heartbeat" => ProgressKind::WorkerHeartbeat {
            evals: num(value, "evals")? as u64,
            evals_per_sec: num(value, "evals_per_sec")?,
            cache_hit_rate: num(value, "cache_hit_rate")?,
        },
        "restart" => ProgressKind::Restart { restarts: num(value, "restarts")? as u64 },
        "steal" => ProgressKind::TaskStolen {
            victim: num(value, "victim")? as u64,
            steals: num(value, "steals")? as u64,
        },
        "adopt" => ProgressKind::IncumbentAdopted {
            cost: num(value, "cost")?,
            adoptions: num(value, "adoptions")? as u64,
        },
        "done" => ProgressKind::Done {
            cost: opt_num(value, "cost"),
            gap_pct: opt_num(value, "gap_pct"),
            evals: num(value, "evals")? as u64,
        },
        _ => return None,
    };
    Some(ProgressEvent { worker, elapsed_ns, kind })
}

/// Parses a progress log produced by [`progress_jsonl`]. Lenient by
/// design: a malformed or truncated line (a killed run's torn tail) is
/// counted and skipped, never fatal — the same contract as
/// [`crate::export::parse_jsonl`].
#[must_use]
pub fn parse_progress_jsonl(text: &str) -> ParsedProgress {
    let mut parsed = ParsedProgress::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::parse(line).ok().as_ref().and_then(parse_event);
        match event {
            Some(event) => parsed.events.push(event),
            None => {
                parsed.skipped += 1;
                if parsed.first_error.is_none() {
                    parsed.first_error =
                        Some(format!("line {}: unparseable progress event", i + 1));
                }
            }
        }
    }
    parsed
}

// Emission is compiled away under the `off` feature, so these tests only
// make sense without it.
#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn nothing_emitted_without_install() {
        incumbent_improved(1.0, None, 1);
        worker_heartbeat(1, 1.0, 0.0);
        assert!(!enabled());
        assert!(current().is_none());
        let c = ProgressChannel::new();
        assert!(c.poll().is_empty());
    }

    #[test]
    fn install_emits_typed_events_in_order() {
        let c = ProgressChannel::new();
        {
            let _g = c.install();
            assert!(enabled());
            phase_entered("greedy");
            incumbent_improved(90.0, Some(12.5), 7);
            restart(1);
            worker_heartbeat(10, 1000.0, 0.25);
            done(Some(90.0), Some(12.5), 10);
        }
        let events = c.poll();
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, vec!["phase", "incumbent", "restart", "heartbeat", "done"]);
        assert!(events.windows(2).all(|w| w[0].elapsed_ns <= w[1].elapsed_ns));
        assert!(events.iter().all(|e| e.worker == 0));
        assert_eq!(
            events[1].kind,
            ProgressKind::IncumbentImproved { cost: 90.0, gap_pct: Some(12.5), evals: 7 }
        );
    }

    #[test]
    fn disabled_channel_emits_nothing() {
        let c = ProgressChannel::disabled();
        {
            let _g = c.install();
            assert!(!enabled());
            assert!(current().is_some(), "still propagatable");
            incumbent_improved(1.0, None, 1);
        }
        assert!(c.poll().is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let c = ProgressChannel::with_capacity(3);
        let _g = c.install();
        for i in 0..5u64 {
            restart(i);
        }
        incumbent_improved(42.0, None, 5);
        let events = c.poll();
        assert_eq!(events.len(), 3);
        assert_eq!(c.dropped(), 3);
        // The newest events survive — including the final incumbent.
        assert_eq!(events[0].kind, ProgressKind::Restart { restarts: 3 });
        assert_eq!(
            events[2].kind,
            ProgressKind::IncumbentImproved { cost: 42.0, gap_pct: None, evals: 5 }
        );
    }

    #[test]
    fn nested_install_restores_previous() {
        let outer = ProgressChannel::new();
        let inner = ProgressChannel::new();
        let _og = outer.install();
        restart(1);
        {
            let _ig = inner.install();
            restart(2);
        }
        restart(3);
        let outer_events = outer.poll();
        assert_eq!(outer_events.len(), 2);
        assert_eq!(inner.poll().len(), 1);
    }

    #[test]
    fn workers_get_distinct_lanes() {
        let c = ProgressChannel::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    let _g = c.install();
                    worker_heartbeat(1, 1.0, 0.0);
                });
            }
        });
        let workers: std::collections::BTreeSet<u64> = c.poll().iter().map(|e| e.worker).collect();
        assert_eq!(workers.len(), 4, "each install gets its own worker index");
    }

    #[test]
    fn poll_while_producing_sees_everything_once() {
        let c = ProgressChannel::new();
        let _g = c.install();
        restart(1);
        let first = c.poll();
        restart(2);
        let second = c.poll();
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        assert!(c.poll().is_empty());
    }

    #[test]
    fn steal_and_adopt_events_carry_cooperation_counts() {
        let c = ProgressChannel::new();
        {
            let _g = c.install();
            task_stolen(3, 1);
            incumbent_adopted(250.5, 2);
        }
        let events = c.poll();
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, vec!["steal", "adopt"]);
        assert_eq!(events[0].kind, ProgressKind::TaskStolen { victim: 3, steals: 1 });
        assert_eq!(events[1].kind, ProgressKind::IncumbentAdopted { cost: 250.5, adoptions: 2 });
    }

    #[test]
    fn jsonl_roundtrips_bit_exactly() {
        let c = ProgressChannel::new();
        {
            let _g = c.install();
            phase_entered("refit");
            incumbent_improved(123.456_789_012_345, Some(3.75), 42);
            worker_heartbeat(100, 98_765.432_1, 0.875);
            restart(2);
            task_stolen(1, 4);
            incumbent_adopted(99.000_000_000_25, 3);
            done(None, None, 100);
        }
        let events = c.poll();
        let text = progress_jsonl(&events);
        assert_eq!(text.lines().count(), 7);
        let parsed = parse_progress_jsonl(&text);
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.events, events, "floats round-trip bit-exactly");
    }

    #[test]
    fn parse_skips_torn_tail_lines() {
        let c = ProgressChannel::new();
        {
            let _g = c.install();
            incumbent_improved(50.0, Some(1.0), 9);
        }
        let mut text = progress_jsonl(&c.poll());
        text.push_str("{\"t\":\"incumbent\",\"worker\":0,\"ns\":12,\"cos"); // torn mid-write
        let parsed = parse_progress_jsonl(&text);
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.skipped, 1);
        assert!(parsed.first_error.is_some());
        assert!(parse_progress_jsonl("\n\n").events.is_empty());
        assert_eq!(parse_progress_jsonl("{\"t\":\"wat\",\"worker\":0,\"ns\":0}").skipped, 1);
    }

    #[test]
    fn progress_line_matches_jsonl() {
        let event = ProgressEvent {
            worker: 1,
            elapsed_ns: 500,
            kind: ProgressKind::PhaseEntered { phase: "greedy".into() },
        };
        let line = progress_line(&event);
        assert!(!line.contains('\n'));
        assert_eq!(progress_jsonl(std::slice::from_ref(&event)), format!("{line}\n"));
    }
}
