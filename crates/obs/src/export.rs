//! Exporters: JSONL solver traces and Chrome `trace_event` files.
//!
//! The JSONL format is the tool-friendly one — one self-contained JSON
//! object per line, streamable and greppable:
//!
//! ```text
//! {"ts_us":12.5,"dur_us":0,"kind":"instant","name":"greedy.place","cat":"solver","tid":0,"args":{"app":3}}
//! ```
//!
//! The Chrome format is the human-friendly one: load it in
//! `about:tracing` or <https://ui.perfetto.dev> to see the solver's
//! stages on a per-thread timeline.

use std::fmt;

use serde::Value;

use crate::event::{Event, EventKind};

/// Export/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    msg: String,
}

impl TraceError {
    fn new(msg: impl Into<String>) -> Self {
        TraceError { msg: msg.into() }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error: {}", self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Writes a [`Value`] as compact (single-line) JSON. The vendored
/// `serde_json` stand-in only pretty-prints, which would break the
/// one-object-per-line JSONL contract.
pub fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Compact JSON for a value, as a string.
#[must_use]
pub fn to_compact_json(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn event_value(event: &Event) -> Value {
    let mut map = vec![
        ("ts_us".to_string(), Value::Float(event.start_ns as f64 / 1000.0)),
        ("dur_us".to_string(), Value::Float(event.dur_ns as f64 / 1000.0)),
        ("kind".to_string(), Value::Str(event.kind.as_str().to_string())),
        ("name".to_string(), Value::Str(event.name.to_string())),
        ("cat".to_string(), Value::Str(event.cat.to_string())),
        ("tid".to_string(), Value::Int(i64::try_from(event.thread).unwrap_or(i64::MAX))),
    ];
    if !event.args.is_empty() {
        map.push((
            "args".to_string(),
            Value::Map(event.args.iter().map(|(k, v)| ((*k).to_string(), v.to_value())).collect()),
        ));
    }
    Value::Map(map)
}

/// Renders events as JSONL: one compact JSON object per line, in start
/// order.
#[must_use]
pub fn trace_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        write_compact(&event_value(event), &mut out);
        out.push('\n');
    }
    out
}

/// Renders events as a Chrome `trace_event` file (the "JSON array
/// format"), loadable in `about:tracing` and Perfetto.
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let entries: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut map = vec![
                ("name".to_string(), Value::Str(e.name.to_string())),
                ("cat".to_string(), Value::Str(e.cat.to_string())),
                (
                    "ph".to_string(),
                    Value::Str(
                        match e.kind {
                            EventKind::Span => "X",
                            EventKind::Instant => "i",
                        }
                        .to_string(),
                    ),
                ),
                ("ts".to_string(), Value::Float(e.start_ns as f64 / 1000.0)),
                ("pid".to_string(), Value::Int(1)),
                ("tid".to_string(), Value::Int(i64::try_from(e.thread).unwrap_or(i64::MAX))),
            ];
            if e.kind == EventKind::Span {
                map.insert(4, ("dur".to_string(), Value::Float(e.dur_ns as f64 / 1000.0)));
            }
            if !e.args.is_empty() {
                map.push((
                    "args".to_string(),
                    Value::Map(
                        e.args.iter().map(|(k, v)| ((*k).to_string(), v.to_value())).collect(),
                    ),
                ));
            }
            Value::Map(map)
        })
        .collect();
    to_compact_json(&Value::Seq(entries))
}

/// A trace event parsed back from JSONL (names are owned strings, since
/// they no longer point into the instrumented binary).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// `"span"` or `"instant"`.
    pub kind: String,
    /// Start offset in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (zero for instants).
    pub dur_us: f64,
    /// Recording thread index.
    pub tid: u64,
    /// Arguments (an empty map when the event had none).
    pub args: Value,
}

impl TraceRecord {
    /// A numeric argument (integer or float), by key.
    #[must_use]
    pub fn num_arg(&self, key: &str) -> Option<f64> {
        match self.args.get(key) {
            Some(Value::Int(i)) => Some(*i as f64),
            Some(Value::Float(f)) => Some(*f),
            _ => None,
        }
    }
}

fn field<'v>(map: &'v Value, key: &str, line: usize) -> Result<&'v Value, TraceError> {
    map.get(key).ok_or_else(|| TraceError::new(format!("line {line}: missing field `{key}`")))
}

fn str_field(map: &Value, key: &str, line: usize) -> Result<String, TraceError> {
    match field(map, key, line)? {
        Value::Str(s) => Ok(s.clone()),
        other => Err(TraceError::new(format!("line {line}: `{key}` is not a string: {other:?}"))),
    }
}

fn num_field(map: &Value, key: &str, line: usize) -> Result<f64, TraceError> {
    match field(map, key, line)? {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        other => Err(TraceError::new(format!("line {line}: `{key}` is not a number: {other:?}"))),
    }
}

/// Result of leniently parsing a JSONL trace: every line that matched
/// the schema, plus a count of lines that did not.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedTrace {
    /// Records in file order.
    pub records: Vec<TraceRecord>,
    /// Non-blank lines skipped because they were malformed (the
    /// `parse.skipped` diagnostic).
    pub skipped: u64,
    /// Description of the first skipped line, for diagnostics.
    pub first_error: Option<String>,
}

fn parse_line(line: &str, line_no: usize) -> Result<TraceRecord, TraceError> {
    let value =
        serde_json::parse(line).map_err(|e| TraceError::new(format!("line {line_no}: {e}")))?;
    let kind = str_field(&value, "kind", line_no)?;
    if kind != "span" && kind != "instant" {
        return Err(TraceError::new(format!("line {line_no}: unknown kind `{kind}`")));
    }
    Ok(TraceRecord {
        name: str_field(&value, "name", line_no)?,
        cat: str_field(&value, "cat", line_no)?,
        kind,
        ts_us: num_field(&value, "ts_us", line_no)?,
        dur_us: num_field(&value, "dur_us", line_no)?,
        tid: num_field(&value, "tid", line_no)? as u64,
        args: value.get("args").cloned().unwrap_or(Value::Map(Vec::new())),
    })
}

/// Parses a JSONL trace produced by [`trace_jsonl`], validating the
/// schema of every line. Lenient by design: a malformed line — most
/// commonly the torn tail of a trace whose writer was killed mid-line —
/// is counted and skipped, never fatal. Callers surface
/// [`ParsedTrace::skipped`] as a `parse.skipped` diagnostic.
#[must_use]
pub fn parse_jsonl(text: &str) -> ParsedTrace {
    let mut parsed = ParsedTrace::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, i + 1) {
            Ok(record) => parsed.records.push(record),
            Err(e) => {
                parsed.skipped += 1;
                if parsed.first_error.is_none() {
                    parsed.first_error = Some(e.to_string());
                }
            }
        }
    }
    parsed
}

/// Cumulative statistics of one event name within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotal {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Occurrences.
    pub count: u64,
    /// Total duration across occurrences, microseconds (zero for
    /// instants).
    pub total_us: f64,
}

/// Aggregates a parsed trace by event name, sorted by cumulative
/// duration descending (instants sort by count within zero duration).
#[must_use]
pub fn totals_by_name(records: &[TraceRecord]) -> Vec<SpanTotal> {
    let mut by_name: std::collections::BTreeMap<(String, String), (u64, f64)> =
        std::collections::BTreeMap::new();
    for r in records {
        let entry = by_name.entry((r.name.clone(), r.cat.clone())).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += r.dur_us;
    }
    let mut totals: Vec<SpanTotal> = by_name
        .into_iter()
        .map(|((name, cat), (count, total_us))| SpanTotal { name, cat, count, total_us })
        .collect();
    totals.sort_by(|a, b| {
        b.total_us
            .partial_cmp(&a.total_us)
            .expect("durations are finite")
            .then(b.count.cmp(&a.count))
    });
    totals
}

/// One point of the objective-vs-evaluations convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Evaluations performed when the improvement was found.
    pub evals: f64,
    /// The new best objective value.
    pub cost: f64,
}

/// Extracts the objective-vs-evaluation convergence curve from a parsed
/// trace: every `solver.improved` instant carrying `evals` and `cost`
/// arguments, in emission order.
#[must_use]
pub fn objective_curve(records: &[TraceRecord]) -> Vec<CurvePoint> {
    records
        .iter()
        .filter(|r| r.name == "solver.improved")
        .filter_map(|r| Some(CurvePoint { evals: r.num_arg("evals")?, cost: r.num_arg("cost")? }))
        .collect()
}

/// How one numeric series moved between two exported runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// Identical in both runs.
    Unchanged,
    /// Changed in the favorable direction for this series.
    Improved,
    /// Changed in the unfavorable direction for this series.
    Regressed,
    /// Changed, with no known better/worse direction.
    Changed,
    /// Present only in the second run.
    Added,
    /// Present only in the first run.
    Removed,
}

/// One numeric leaf compared across two exported runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the leaf, e.g. `counters.solver.nodes_evaluated`.
    pub name: String,
    /// Value in the first run, when present.
    pub a: Option<f64>,
    /// Value in the second run, when present.
    pub b: Option<f64>,
}

impl DiffEntry {
    /// Signed absolute delta `b - a`; `None` unless present in both.
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        Some(self.b? - self.a?)
    }

    /// Percentage delta relative to the first run; `None` unless both
    /// present and `a != 0`.
    #[must_use]
    pub fn pct_delta(&self) -> Option<f64> {
        let (a, b) = (self.a?, self.b?);
        if a == 0.0 {
            return None;
        }
        Some((b - a) / a * 100.0)
    }

    /// Classification of the change, using [`series_direction`].
    #[must_use]
    pub fn classify(&self) -> DiffClass {
        match (self.a, self.b) {
            (None, None) => DiffClass::Unchanged,
            (None, Some(_)) => DiffClass::Added,
            (Some(_), None) => DiffClass::Removed,
            (Some(a), Some(b)) => {
                if a.to_bits() == b.to_bits() {
                    DiffClass::Unchanged
                } else {
                    match series_direction(&self.name) {
                        Some(true) if b > a => DiffClass::Regressed,
                        Some(true) => DiffClass::Improved,
                        Some(false) if b < a => DiffClass::Regressed,
                        Some(false) => DiffClass::Improved,
                        None => DiffClass::Changed,
                    }
                }
            }
        }
    }
}

/// Whether lower values are better for a series, judged by its name:
/// `Some(true)` = lower is better (costs, penalties, times, misses),
/// `Some(false)` = higher is better (hits, rates), `None` = neutral.
#[must_use]
pub fn series_direction(name: &str) -> Option<bool> {
    let lower = name.to_ascii_lowercase();
    const LOWER_IS_BETTER: &[&str] = &[
        "cost",
        "penalt",
        "outlay",
        "objective",
        "total",
        "time",
        "latency",
        "miss",
        "overrun",
        "failures",
        "recomputed",
        "clones",
        "makespan",
    ];
    const HIGHER_IS_BETTER: &[&str] = &["hit", "evals_per_sec", "availability"];
    if LOWER_IS_BETTER.iter().any(|pat| lower.contains(pat)) {
        return Some(true);
    }
    if HIGHER_IS_BETTER.iter().any(|pat| lower.contains(pat)) {
        return Some(false);
    }
    None
}

fn flatten_into(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Int(i) => out.push((prefix.to_string(), *i as f64)),
        Value::Float(f) => out.push((prefix.to_string(), *f)),
        Value::Map(entries) => {
            for (k, v) in entries {
                // Histogram bucket arrays are layout detail, not series.
                if k == "buckets" {
                    continue;
                }
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten_into(v, &path, out);
            }
        }
        Value::Seq(items) => {
            for (i, v) in items.iter().enumerate() {
                let path = if prefix.is_empty() { i.to_string() } else { format!("{prefix}.{i}") };
                flatten_into(v, &path, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Flattens every numeric leaf of a JSON value into `(dotted.path, value)`
/// pairs, in document order. Histogram `buckets` arrays are skipped.
#[must_use]
pub fn flatten_numeric(value: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into(value, "", &mut out);
    out
}

/// Compares the numeric leaves of two exported runs (metrics snapshots,
/// explain reports — any JSON), returning one [`DiffEntry`] per path in
/// the union, sorted by path. A run diffed against itself yields only
/// [`DiffClass::Unchanged`] entries.
#[must_use]
pub fn diff_numeric(a: &Value, b: &Value) -> Vec<DiffEntry> {
    let left: std::collections::BTreeMap<String, f64> = flatten_numeric(a).into_iter().collect();
    let right: std::collections::BTreeMap<String, f64> = flatten_numeric(b).into_iter().collect();
    let mut names: Vec<&String> = left.keys().chain(right.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| DiffEntry {
            name: name.clone(),
            a: left.get(name).copied(),
            b: right.get(name).copied(),
        })
        .collect()
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::event::ArgValue;
    use crate::recorder::{instant_with, span, Recorder};

    fn sample_events() -> Vec<Event> {
        let r = Recorder::new();
        {
            let _g = r.install();
            instant_with(
                "greedy.place",
                "solver",
                vec![("app", ArgValue::Int(3)), ("note", ArgValue::Str("a \"b\"\n".into()))],
            );
            {
                let mut s = span("refit.round", "solver");
                s.arg("round", 1u64);
            }
        }
        r.drain_events()
    }

    #[test]
    fn jsonl_roundtrips_through_the_parser() {
        let events = sample_events();
        let text = trace_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.skipped, 0);
        let records = parsed.records;
        assert_eq!(records.len(), 2);
        let place = records.iter().find(|r| r.name == "greedy.place").expect("place");
        assert_eq!(place.kind, "instant");
        assert_eq!(place.num_arg("app"), Some(3.0));
        assert_eq!(place.args.get("note"), Some(&Value::Str("a \"b\"\n".into())));
        let refit = records.iter().find(|r| r.name == "refit.round").expect("refit");
        assert_eq!(refit.kind, "span");
        assert!(refit.dur_us >= 0.0);
    }

    #[test]
    fn objective_curve_extracts_improvements_in_order() {
        let r = Recorder::new();
        {
            let _g = r.install();
            instant_with(
                "solver.improved",
                "solver",
                vec![("evals", ArgValue::Int(5)), ("cost", ArgValue::Float(90.0))],
            );
            instant_with("greedy.place", "solver", vec![("app", ArgValue::Int(0))]);
            instant_with(
                "solver.improved",
                "solver",
                vec![("evals", ArgValue::Int(12)), ("cost", ArgValue::Float(70.0))],
            );
        }
        let records = parse_jsonl(&trace_jsonl(&r.drain_events())).records;
        let curve = objective_curve(&records);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], CurvePoint { evals: 5.0, cost: 90.0 });
        assert_eq!(curve[1], CurvePoint { evals: 12.0, cost: 70.0 });
    }

    fn map(entries: Vec<(&str, Value)>) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn self_diff_is_entirely_unchanged() {
        let run = map(vec![
            ("counters", map(vec![("solver.nodes_evaluated", Value::Int(42))])),
            ("gauges", map(vec![("cost.total", Value::Float(123.5))])),
        ]);
        let entries = diff_numeric(&run, &run);
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.classify() == DiffClass::Unchanged));
        assert!(entries.iter().all(|e| e.delta() == Some(0.0)));
    }

    #[test]
    fn diff_classifies_regressions_by_series_direction() {
        let a = map(vec![
            ("cost.total", Value::Float(100.0)),
            ("cache.hit", Value::Int(50)),
            ("nodes", Value::Int(10)),
            ("gone", Value::Int(1)),
        ]);
        let b = map(vec![
            ("cost.total", Value::Float(110.0)),
            ("cache.hit", Value::Int(40)),
            ("nodes", Value::Int(11)),
            ("new", Value::Int(1)),
        ]);
        let entries = diff_numeric(&a, &b);
        let by_name = |n: &str| entries.iter().find(|e| e.name == n).expect("entry");
        assert_eq!(by_name("cost.total").classify(), DiffClass::Regressed);
        assert!((by_name("cost.total").pct_delta().unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(by_name("cache.hit").classify(), DiffClass::Regressed, "hits fell");
        assert_eq!(by_name("nodes").classify(), DiffClass::Changed, "neutral series");
        assert_eq!(by_name("gone").classify(), DiffClass::Removed);
        assert_eq!(by_name("new").classify(), DiffClass::Added);
    }

    #[test]
    fn flatten_skips_histogram_buckets_and_recurses_seqs() {
        let v = map(vec![(
            "histograms",
            map(vec![(
                "solver.eval_latency",
                map(vec![
                    ("count", Value::Int(3)),
                    ("buckets", Value::Seq(vec![Value::Int(1), Value::Int(2)])),
                    ("quantiles", Value::Seq(vec![Value::Float(0.5)])),
                ]),
            )]),
        )]);
        let flat = flatten_numeric(&v);
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"histograms.solver.eval_latency.count"));
        assert!(names.contains(&"histograms.solver.eval_latency.quantiles.0"));
        assert!(!names.iter().any(|n| n.contains("buckets")));
    }

    #[test]
    fn every_jsonl_line_is_standalone_json() {
        let text = trace_jsonl(&sample_events());
        for line in text.lines() {
            assert!(serde_json::parse(line).is_ok(), "unparseable line: {line}");
        }
    }

    #[test]
    fn chrome_trace_is_one_json_array_with_phases() {
        let events = sample_events();
        let parsed = serde_json::parse(&chrome_trace(&events)).expect("valid JSON");
        let Value::Seq(items) = parsed else { panic!("expected array") };
        assert_eq!(items.len(), 2);
        let phases: Vec<_> =
            items.iter().map(|e| e.get("ph").cloned().expect("ph present")).collect();
        assert!(phases.contains(&Value::Str("i".into())));
        assert!(phases.contains(&Value::Str("X".into())));
        for item in &items {
            assert!(item.get("ts").is_some());
            assert!(item.get("tid").is_some());
        }
    }

    #[test]
    fn parse_skips_malformed_lines_with_a_count() {
        let parsed = parse_jsonl("not json\n");
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.skipped, 1);
        assert!(parsed.first_error.as_deref().is_some_and(|e| e.contains("line 1")));

        let parsed = parse_jsonl("{\"kind\":\"span\"}\n");
        assert_eq!(parsed.skipped, 1, "missing fields");
        let bad_kind = "{\"ts_us\":0.0,\"dur_us\":0.0,\"kind\":\"wat\",\"name\":\"n\",\"cat\":\"c\",\"tid\":0}";
        assert_eq!(parse_jsonl(bad_kind).skipped, 1);

        let blank = parse_jsonl("\n\n");
        assert!(blank.records.is_empty() && blank.skipped == 0, "blank lines ok");
    }

    #[test]
    fn parse_keeps_good_lines_around_a_torn_tail() {
        let mut text = trace_jsonl(&sample_events());
        text.push_str("{\"ts_us\":9.0,\"dur_us\":0.0,\"kind\":\"insta"); // killed mid-write
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.records.len(), 2, "good lines survive");
        assert_eq!(parsed.skipped, 1);
        assert!(parsed.first_error.as_deref().is_some_and(|e| e.contains("line 3")));
    }

    #[test]
    fn totals_rank_spans_by_cumulative_time() {
        let text = "\
{\"ts_us\":0.0,\"dur_us\":10.0,\"kind\":\"span\",\"name\":\"a\",\"cat\":\"s\",\"tid\":0}
{\"ts_us\":1.0,\"dur_us\":50.0,\"kind\":\"span\",\"name\":\"b\",\"cat\":\"s\",\"tid\":0}
{\"ts_us\":2.0,\"dur_us\":5.0,\"kind\":\"span\",\"name\":\"a\",\"cat\":\"s\",\"tid\":0}
{\"ts_us\":3.0,\"dur_us\":0.0,\"kind\":\"instant\",\"name\":\"c\",\"cat\":\"s\",\"tid\":0}
";
        let totals = totals_by_name(&parse_jsonl(text).records);
        assert_eq!(totals[0].name, "b");
        assert_eq!(totals[1].name, "a");
        assert_eq!(totals[1].count, 2);
        assert!((totals[1].total_us - 15.0).abs() < 1e-9);
        assert_eq!(totals[2].name, "c");
    }

    #[test]
    fn compact_json_escapes_and_parses() {
        let v = Value::Map(vec![
            ("s".into(), Value::Str("quote \" slash \\ nl \n".into())),
            ("n".into(), Value::Float(1.5)),
            ("i".into(), Value::Int(-3)),
            ("b".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
            ("seq".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let text = to_compact_json(&v);
        assert!(!text.contains('\n'));
        assert_eq!(serde_json::parse(&text).expect("parses"), v);
    }
}
