//! Concurrency guarantees of the metrics registry: parallel counter
//! increments are never lost, and per-thread histogram buffers merge
//! losslessly — a multi-thread run produces the exact snapshot a
//! single-thread run over the same observations would.
//!
//! Observed values are quarter-integers, which sum exactly in `f64`, so
//! snapshots compare bit-for-bit regardless of merge order.

use std::thread;

use dsd_obs::{Histogram, MetricsRegistry, Recorder};
use proptest::prelude::*;

/// An exact-in-f64 positive value derived from an index.
fn exact_value(i: usize) -> f64 {
    0.25 * ((i % 97) + 1) as f64
}

#[test]
fn parallel_counter_increments_are_never_lost() {
    if cfg!(feature = "off") {
        return; // recording compiled away
    }
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let recorder = Recorder::new();
    thread::scope(|s| {
        for t in 0..THREADS {
            let recorder = recorder.clone();
            s.spawn(move || {
                let _guard = recorder.install();
                for i in 0..PER_THREAD {
                    dsd_obs::add("conc.total", 1);
                    if i % 2 == 0 {
                        dsd_obs::add("conc.even", 1);
                    }
                }
                dsd_obs::gauge("conc.last_thread", t as f64);
            });
        }
    });
    let snap = recorder.metrics_snapshot();
    assert_eq!(snap.counter("conc.total"), Some(THREADS as u64 * PER_THREAD));
    assert_eq!(snap.counter("conc.even"), Some(THREADS as u64 * PER_THREAD / 2));
    let last = snap.gauges.get("conc.last_thread").copied().expect("gauge recorded");
    assert!(
        last.fract() == 0.0 && last >= 0.0 && last < THREADS as f64,
        "gauge must hold exactly one thread's write, got {last}"
    );
}

#[test]
fn threaded_histogram_observations_merge_losslessly() {
    if cfg!(feature = "off") {
        return;
    }
    const THREADS: usize = 6;
    // Above the recorder's flush threshold, so mid-run flushes interleave
    // with other threads' merges rather than everything arriving at drop.
    const PER_THREAD: usize = 5_000;
    let recorder = Recorder::new();
    thread::scope(|s| {
        for t in 0..THREADS {
            let recorder = recorder.clone();
            s.spawn(move || {
                let _guard = recorder.install();
                for i in 0..PER_THREAD {
                    dsd_obs::observe("conc.latency", exact_value(t * PER_THREAD + i));
                }
            });
        }
    });
    let mut reference = Histogram::new();
    for i in 0..THREADS * PER_THREAD {
        reference.observe(exact_value(i));
    }
    let snap = recorder.metrics_snapshot();
    let got = snap.histogram("conc.latency").expect("histogram recorded");
    assert_eq!(*got, reference.snapshot(), "threaded merge must equal the sequential reference");
}

#[test]
fn registry_cells_are_safe_to_share_across_threads() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 2_000;
    let registry = MetricsRegistry::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let registry = &registry;
            s.spawn(move || {
                let hits = registry.counter("direct.hits");
                let mut local = Histogram::new();
                for i in 0..PER_THREAD {
                    hits.add(1);
                    local.observe(exact_value(i));
                }
                registry.merge_histogram("direct.lat", &local);
            });
        }
    });
    let mut reference = Histogram::new();
    for _ in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.observe(exact_value(i));
        }
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("direct.hits"), Some((THREADS * PER_THREAD) as u64));
    assert_eq!(*snap.histogram("direct.lat").expect("histogram present"), reference.snapshot());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Merging any partition of an observation stream, in any part
    /// order, reproduces the all-at-once histogram exactly.
    #[test]
    fn histogram_merge_is_exact_for_any_partition(
        assignments in prop::collection::vec((0usize..4000, 0usize..5), 1..200),
    ) {
        let mut all = Histogram::new();
        let mut parts = vec![Histogram::new(); 5];
        for &(i, p) in &assignments {
            let v = exact_value(i);
            all.observe(v);
            parts[p].observe(v);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(&merged, &all);
        prop_assert_eq!(merged.snapshot(), all.snapshot());
    }

    /// Underflow (non-positive / non-finite) observations survive merges
    /// with exact counts, never leaking into the positive buckets.
    #[test]
    fn merge_preserves_underflow_counts(
        raw in prop::collection::vec(-2000i32..2000, 1..150),
    ) {
        let mut all = Histogram::new();
        let mut even = Histogram::new();
        let mut odd = Histogram::new();
        for (i, &x) in raw.iter().enumerate() {
            let v = 0.25 * f64::from(x);
            all.observe(v);
            if i % 2 == 0 { even.observe(v) } else { odd.observe(v) }
        }
        let mut merged = Histogram::new();
        merged.merge(&even);
        merged.merge(&odd);
        let positives = raw.iter().filter(|&&x| x > 0).count() as u64;
        prop_assert_eq!(merged.count(), positives);
        prop_assert_eq!(merged.snapshot().underflow, raw.len() as u64 - positives);
        prop_assert_eq!(&merged, &all);
    }
}
