//! Property tests for the span-tree profiler: the fold must satisfy its
//! sum invariant on arbitrary span streams, and per-worker trees must
//! merge losslessly regardless of merge order — the guarantee that lets
//! parallel portfolio workers profile independently and combine after.

use dsd_obs::{Event, EventKind, ProfileTree};
use proptest::prelude::*;

/// Fixed name pool — span names are `&'static str` in the recorder, so
/// generated spans index into it.
const NAMES: [&str; 5] = ["solve", "greedy", "refit", "eval", "probe"];

/// One generated span: `(name index, thread, start_ns, dur_ns)`.
type RawSpan = (usize, u64, u64, u64);

fn events_from(raw: &[RawSpan]) -> Vec<Event> {
    raw.iter()
        .map(|&(name, thread, start_ns, dur_ns)| Event {
            name: NAMES[name % NAMES.len()],
            cat: "test",
            kind: EventKind::Span,
            start_ns,
            dur_ns,
            thread,
            args: Vec::new(),
        })
        .collect()
}

fn raw_spans() -> impl Strategy<Value = Vec<RawSpan>> {
    prop::collection::vec((0..NAMES.len(), 0u64..4, 0u64..10_000, 0u64..2_000), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any span stream folds into a tree that passes its containment
    /// invariant: each node's children never sum past the node's total
    /// (plus the documented quantization slack).
    #[test]
    fn fold_satisfies_the_sum_invariant(raw in raw_spans()) {
        let tree = ProfileTree::from_events(&events_from(&raw));
        prop_assert!(tree.verify().is_ok(), "{:?}", tree.verify());
    }

    /// Folding all threads at once equals folding each thread's stream
    /// separately and merging — in either merge order. This is the
    /// losslessness guarantee for per-worker profile trees.
    #[test]
    fn per_thread_trees_merge_losslessly_in_any_order(raw in raw_spans()) {
        let whole = ProfileTree::from_events(&events_from(&raw));

        let mut by_thread: Vec<Vec<RawSpan>> = vec![Vec::new(); 4];
        for &span in &raw {
            by_thread[span.1 as usize].push(span);
        }
        let parts: Vec<ProfileTree> = by_thread
            .iter()
            .map(|part| ProfileTree::from_events(&events_from(part)))
            .collect();

        let mut forward = ProfileTree::default();
        for part in &parts {
            forward.merge(part);
        }
        let mut reverse = ProfileTree::default();
        for part in parts.iter().rev() {
            reverse.merge(part);
        }

        prop_assert_eq!(&forward, &reverse);
        // `default()` starts with quantum 0; a real fold stamps 1.
        prop_assert_eq!(forward.roots.clone(), whole.roots.clone());
        prop_assert_eq!(forward.threads, whole.threads);
        prop_assert!(forward.verify().is_ok(), "{:?}", forward.verify());
    }

    /// Merging preserves the summed wall time exactly: no nanosecond is
    /// created or lost when worker trees combine.
    #[test]
    fn merge_preserves_total_time(raw in raw_spans()) {
        let mut by_thread: Vec<Vec<RawSpan>> = vec![Vec::new(); 4];
        for &span in &raw {
            by_thread[span.1 as usize].push(span);
        }
        let parts: Vec<ProfileTree> = by_thread
            .iter()
            .map(|part| ProfileTree::from_events(&events_from(part)))
            .collect();
        let part_total: u64 = parts.iter().map(ProfileTree::total_ns).sum();

        let mut merged = ProfileTree::default();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.total_ns(), part_total);
    }

    /// Attached counters sum across merges like every other field.
    #[test]
    fn merge_sums_counters(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let counters_a = std::collections::BTreeMap::from([("evals".to_string(), a)]);
        let counters_b = std::collections::BTreeMap::from([("evals".to_string(), b)]);
        let mut left = ProfileTree::default();
        left.attach_counters(&counters_a);
        let mut right = ProfileTree::default();
        right.attach_counters(&counters_b);
        left.merge(&right);
        prop_assert_eq!(left.counters.get("evals").copied(), Some(a + b));
    }
}
