//! Workload profiles (Table 1) and business classification.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_units::{DollarsPerHour, Gigabytes, MegabytesPerSec};

use crate::penalty::{PenaltyModel, PenaltySchedule};

/// Business penalty rates for one application (paper §2.4, Table 1).
///
/// * `outage` — cost per hour of data unavailability while the application
///   is down after a failure;
/// * `recent_loss` — cost per hour of lost recent updates (the staleness of
///   the copy used for recovery).
///
/// # Examples
///
/// ```
/// use dsd_workload::PenaltyRates;
/// use dsd_units::DollarsPerHour;
/// let p = PenaltyRates::new(DollarsPerHour::new(5e6), DollarsPerHour::new(5e3));
/// assert_eq!(p.sum().as_f64(), 5_005_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PenaltyRates {
    /// Data outage penalty rate ($/hr of downtime).
    pub outage: DollarsPerHour,
    /// Recent data loss penalty rate ($/hr of lost updates).
    pub recent_loss: DollarsPerHour,
}

impl PenaltyRates {
    /// Creates a pair of penalty rates.
    #[must_use]
    pub fn new(outage: DollarsPerHour, recent_loss: DollarsPerHour) -> Self {
        PenaltyRates { outage, recent_loss }
    }

    /// Sum of the two rates: the paper uses this as the application's
    /// priority for recovery scheduling (§3.2.2), for the greedy insertion
    /// order (§3.1.1) and for business classification (§3.1.3).
    #[must_use]
    pub fn sum(&self) -> DollarsPerHour {
        self.outage + self.recent_loss
    }
}

impl fmt::Display for PenaltyRates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "outage {}, loss {}", self.outage, self.recent_loss)
    }
}

/// Business class of an application, data protection technique, or resource
/// (paper §3.1.3 / §4.1).
///
/// The ordering is significant: `Gold > Silver > Bronze`. An application of
/// a given class may be protected by a technique of the *same or better*
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// Least stringent requirements.
    Bronze,
    /// Intermediate requirements.
    Silver,
    /// Most stringent requirements.
    Gold,
}

impl AppClass {
    /// All classes in descending order of protection.
    pub const ALL: [AppClass; 3] = [AppClass::Gold, AppClass::Silver, AppClass::Bronze];

    /// True if a technique/resource of class `self` may serve an
    /// application of class `required` (same or better).
    #[must_use]
    pub fn satisfies(self, required: AppClass) -> bool {
        self >= required
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppClass::Gold => "gold",
            AppClass::Silver => "silver",
            AppClass::Bronze => "bronze",
        };
        f.write_str(s)
    }
}

/// Fixed thresholds classifying applications by the sum of their penalty
/// rates (paper §3.1.3: "applications are categorized based on fixed
/// thresholds of the sum of their penalty rates").
///
/// Defaults are chosen so the Table 1 classes come out as printed there:
/// central banking ($10M/hr) → gold, web service and consumer banking
/// (~$5M/hr) → silver, student accounts ($10K/hr) → bronze.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassThresholds {
    /// Sum of penalty rates at or above which an application is gold.
    pub gold_at_least: DollarsPerHour,
    /// Sum of penalty rates at or above which an application is silver.
    pub silver_at_least: DollarsPerHour,
}

impl ClassThresholds {
    /// Classifies a penalty-rate sum.
    #[must_use]
    pub fn classify(&self, sum: DollarsPerHour) -> AppClass {
        if sum >= self.gold_at_least {
            AppClass::Gold
        } else if sum >= self.silver_at_least {
            AppClass::Silver
        } else {
            AppClass::Bronze
        }
    }
}

impl Default for ClassThresholds {
    fn default() -> Self {
        ClassThresholds {
            gold_at_least: DollarsPerHour::new(8e6),
            silver_at_least: DollarsPerHour::new(1e5),
        }
    }
}

/// A reusable application workload template — one row of Table 1.
///
/// A profile carries everything the solver needs to estimate bandwidth and
/// capacity requirements for creating secondary copies (paper §2.2):
///
/// * `capacity` — for techniques that retain a full copy;
/// * `peak_update` — for synchronous mirroring network sizing;
/// * `avg_update` — for asynchronous mirroring network sizing;
/// * `unique_fraction × avg_update` — for periodic copies (snapshots,
///   backups), which only see each byte's last write in the window;
/// * `avg_access` — for recovery techniques that redirect computation
///   (failover).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Human-readable name, e.g. `"central banking"`.
    pub name: String,
    /// One-letter code from Table 1 (B, W, C, S).
    pub code: char,
    /// Business penalty rates.
    pub penalties: PenaltyRates,
    /// Dataset capacity.
    pub capacity: Gigabytes,
    /// Average (non-unique) update rate.
    pub avg_update: MegabytesPerSec,
    /// Peak (non-unique) update rate.
    pub peak_update: MegabytesPerSec,
    /// Average access (read + write) rate.
    pub avg_access: MegabytesPerSec,
    /// Fraction of the average update stream that is unique within a copy
    /// window. Table 1 does not list the unique update rate; this is our
    /// documented substitution (DESIGN.md §3), default 0.6.
    pub unique_fraction: f64,
    /// How the penalty rates are charged (linear by default; see
    /// [`PenaltySchedule::Deductible`] for SLA-style objectives).
    #[serde(default)]
    pub schedule: PenaltySchedule,
}

/// Default unique-update fraction (see DESIGN.md §3).
pub(crate) const DEFAULT_UNIQUE_FRACTION: f64 = 0.6;

impl WorkloadProfile {
    /// Builds a profile from raw Table 1 numbers.
    ///
    /// # Panics
    ///
    /// Panics if `unique_fraction` is outside `(0, 1]` or peak update is
    /// below average update.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        code: char,
        penalties: PenaltyRates,
        capacity: Gigabytes,
        avg_update: MegabytesPerSec,
        peak_update: MegabytesPerSec,
        avg_access: MegabytesPerSec,
        unique_fraction: f64,
    ) -> Self {
        assert!(
            unique_fraction > 0.0 && unique_fraction <= 1.0,
            "unique fraction must be in (0, 1]: {unique_fraction}"
        );
        assert!(
            peak_update >= avg_update,
            "peak update rate must be at least the average update rate"
        );
        WorkloadProfile {
            name: name.into(),
            code,
            penalties,
            capacity,
            avg_update,
            peak_update,
            avg_access,
            unique_fraction,
            schedule: PenaltySchedule::Linear,
        }
    }

    /// Replaces the penalty schedule (builder style).
    #[must_use]
    pub fn with_schedule(mut self, schedule: PenaltySchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The full penalty model (rates + schedule).
    #[must_use]
    pub fn penalty_model(&self) -> PenaltyModel {
        PenaltyModel { rates: self.penalties, schedule: self.schedule }
    }

    /// Table 1 row B — central banking: critical, expects zero data loss
    /// and zero outage ($5M/hr each), 1300 GB.
    #[must_use]
    pub fn central_banking() -> Self {
        WorkloadProfile::new(
            "central banking",
            'B',
            PenaltyRates::new(DollarsPerHour::new(5e6), DollarsPerHour::new(5e6)),
            Gigabytes::new(1300.0),
            MegabytesPerSec::new(5.0),
            MegabytesPerSec::new(50.0),
            MegabytesPerSec::new(50.0),
            DEFAULT_UNIQUE_FRACTION,
        )
    }

    /// Table 1 row W — company web service: high transaction volume,
    /// modest recent loss tolerance, zero outage tolerance.
    #[must_use]
    pub fn company_web_service() -> Self {
        WorkloadProfile::new(
            "company web service",
            'W',
            PenaltyRates::new(DollarsPerHour::new(5e6), DollarsPerHour::new(5e3)),
            Gigabytes::new(4300.0),
            MegabytesPerSec::new(2.0),
            MegabytesPerSec::new(20.0),
            MegabytesPerSec::new(20.0),
            DEFAULT_UNIQUE_FRACTION,
        )
    }

    /// Table 1 row C — consumer banking: zero recent-loss tolerance,
    /// modest outage tolerance.
    #[must_use]
    pub fn consumer_banking() -> Self {
        WorkloadProfile::new(
            "consumer banking",
            'C',
            PenaltyRates::new(DollarsPerHour::new(5e3), DollarsPerHour::new(5e6)),
            Gigabytes::new(4300.0),
            MegabytesPerSec::new(1.0),
            MegabytesPerSec::new(10.0),
            MegabytesPerSec::new(10.0),
            DEFAULT_UNIQUE_FRACTION,
        )
    }

    /// Table 1 row S — student accounts: tolerant to loss and outage.
    #[must_use]
    pub fn student_accounts() -> Self {
        WorkloadProfile::new(
            "student accounts",
            'S',
            PenaltyRates::new(DollarsPerHour::new(5e3), DollarsPerHour::new(5e3)),
            Gigabytes::new(500.0),
            MegabytesPerSec::new(0.5),
            MegabytesPerSec::new(5.0),
            MegabytesPerSec::new(5.0),
            DEFAULT_UNIQUE_FRACTION,
        )
    }

    /// The four Table 1 profiles in paper order (B, W, C, S).
    #[must_use]
    pub fn paper_mix() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::central_banking(),
            WorkloadProfile::company_web_service(),
            WorkloadProfile::consumer_banking(),
            WorkloadProfile::student_accounts(),
        ]
    }

    /// Unique update rate: the rate at which *distinct* bytes are dirtied,
    /// relevant for periodic copies (paper §2.2).
    #[must_use]
    pub fn unique_update_rate(&self) -> MegabytesPerSec {
        self.avg_update * self.unique_fraction
    }

    /// Business class under the default [`ClassThresholds`].
    #[must_use]
    pub fn class(&self) -> AppClass {
        self.class_with(&ClassThresholds::default())
    }

    /// Business class under explicit thresholds.
    #[must_use]
    pub fn class_with(&self, thresholds: &ClassThresholds) -> AppClass {
        thresholds.classify(self.penalties.sum())
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {}, {}, {} class",
            self.name,
            self.code,
            self.capacity,
            self.penalties,
            self.class()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classes_match_paper() {
        assert_eq!(WorkloadProfile::central_banking().class(), AppClass::Gold);
        assert_eq!(WorkloadProfile::company_web_service().class(), AppClass::Silver);
        assert_eq!(WorkloadProfile::consumer_banking().class(), AppClass::Silver);
        assert_eq!(WorkloadProfile::student_accounts().class(), AppClass::Bronze);
    }

    #[test]
    fn table1_numbers_match_paper() {
        let b = WorkloadProfile::central_banking();
        assert_eq!(b.capacity.as_f64(), 1300.0);
        assert_eq!(b.avg_update.as_f64(), 5.0);
        assert_eq!(b.peak_update.as_f64(), 50.0);
        assert_eq!(b.avg_access.as_f64(), 50.0);
        assert_eq!(b.penalties.outage.as_f64(), 5e6);
        assert_eq!(b.penalties.recent_loss.as_f64(), 5e6);

        let s = WorkloadProfile::student_accounts();
        assert_eq!(s.capacity.as_f64(), 500.0);
        assert_eq!(s.penalties.sum().as_f64(), 1e4);
    }

    #[test]
    fn class_ordering_and_satisfaction() {
        assert!(AppClass::Gold > AppClass::Silver);
        assert!(AppClass::Silver > AppClass::Bronze);
        assert!(AppClass::Gold.satisfies(AppClass::Bronze));
        assert!(AppClass::Gold.satisfies(AppClass::Gold));
        assert!(!AppClass::Bronze.satisfies(AppClass::Silver));
    }

    #[test]
    fn unique_rate_is_fraction_of_average() {
        let w = WorkloadProfile::company_web_service();
        assert!((w.unique_update_rate().as_f64() - 2.0 * 0.6).abs() < 1e-12);
    }

    #[test]
    fn custom_thresholds_shift_classes() {
        let strict = ClassThresholds {
            gold_at_least: DollarsPerHour::new(1e3),
            silver_at_least: DollarsPerHour::new(1.0),
        };
        assert_eq!(WorkloadProfile::student_accounts().class_with(&strict), AppClass::Gold);
    }

    #[test]
    fn penalty_sum_adds_both_rates() {
        let p = WorkloadProfile::consumer_banking().penalties;
        assert_eq!(p.sum().as_f64(), 5_005_000.0);
    }

    #[test]
    #[should_panic(expected = "unique fraction")]
    fn zero_unique_fraction_rejected() {
        let _ = WorkloadProfile::new(
            "bad",
            'X',
            PenaltyRates::default(),
            Gigabytes::new(1.0),
            MegabytesPerSec::new(1.0),
            MegabytesPerSec::new(1.0),
            MegabytesPerSec::new(1.0),
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "peak update")]
    fn peak_below_average_rejected() {
        let _ = WorkloadProfile::new(
            "bad",
            'X',
            PenaltyRates::default(),
            Gigabytes::new(1.0),
            MegabytesPerSec::new(2.0),
            MegabytesPerSec::new(1.0),
            MegabytesPerSec::new(1.0),
            0.5,
        );
    }

    #[test]
    fn display_is_informative() {
        let text = WorkloadProfile::central_banking().to_string();
        assert!(text.contains("central banking"));
        assert!(text.contains("gold"));
    }
}
