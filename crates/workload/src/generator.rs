//! Randomized workload generation for stress tests and sensitivity studies.
//!
//! The paper evaluates on scaled copies of the Table 1 mix; for broader
//! testing (property tests, fuzzing the solvers) we also provide a
//! generator that perturbs the Table 1 profiles within configurable
//! multiplicative bounds, using a caller-supplied RNG so runs are
//! reproducible.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dsd_units::{DollarsPerHour, Gigabytes, MegabytesPerSec};

use crate::profile::{PenaltyRates, WorkloadProfile};
use crate::set::WorkloadSet;

/// Bounds for the multiplicative perturbation applied by
/// [`WorkloadGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Lower bound of the scale factor applied to sizes and rates.
    pub scale_min: f64,
    /// Upper bound of the scale factor applied to sizes and rates.
    pub scale_max: f64,
    /// Lower bound of the scale factor applied to penalty rates.
    pub penalty_scale_min: f64,
    /// Upper bound of the scale factor applied to penalty rates.
    pub penalty_scale_max: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            scale_min: 0.5,
            scale_max: 2.0,
            penalty_scale_min: 0.5,
            penalty_scale_max: 2.0,
        }
    }
}

impl GeneratorConfig {
    fn validate(&self) {
        assert!(
            self.scale_min > 0.0 && self.scale_min <= self.scale_max,
            "invalid size scale bounds"
        );
        assert!(
            self.penalty_scale_min > 0.0 && self.penalty_scale_min <= self.penalty_scale_max,
            "invalid penalty scale bounds"
        );
    }
}

/// Generates randomized variants of the Table 1 workloads.
///
/// # Examples
///
/// ```
/// use dsd_workload::{WorkloadGenerator, GeneratorConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let generator = WorkloadGenerator::new(GeneratorConfig::default());
/// let set = generator.generate(12, &mut rng);
/// assert_eq!(set.len(), 12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
}

impl WorkloadGenerator {
    /// Creates a generator with the given perturbation bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are empty or non-positive.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        config.validate();
        WorkloadGenerator { config }
    }

    /// The perturbation bounds in use.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates `n` applications cycling through the Table 1 mix, each
    /// perturbed by independent scale factors drawn from the configured
    /// ranges.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> WorkloadSet {
        let base = WorkloadProfile::paper_mix();
        let mut set = WorkloadSet::new();
        for i in 0..n {
            set.push(self.perturb(&base[i % base.len()], rng));
        }
        set
    }

    /// Produces one perturbed copy of `profile`.
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        profile: &WorkloadProfile,
        rng: &mut R,
    ) -> WorkloadProfile {
        let size_scale = rng.gen_range(self.config.scale_min..=self.config.scale_max);
        let rate_scale = rng.gen_range(self.config.scale_min..=self.config.scale_max);
        let penalty_scale =
            rng.gen_range(self.config.penalty_scale_min..=self.config.penalty_scale_max);
        WorkloadProfile::new(
            profile.name.clone(),
            profile.code,
            PenaltyRates::new(
                DollarsPerHour::new(profile.penalties.outage.as_f64() * penalty_scale),
                DollarsPerHour::new(profile.penalties.recent_loss.as_f64() * penalty_scale),
            ),
            Gigabytes::new(profile.capacity.as_f64() * size_scale),
            MegabytesPerSec::new(profile.avg_update.as_f64() * rate_scale),
            MegabytesPerSec::new(profile.peak_update.as_f64() * rate_scale),
            MegabytesPerSec::new(profile.avg_access.as_f64() * rate_scale),
            profile.unique_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generation_is_deterministic_under_seed() {
        let g = WorkloadGenerator::new(GeneratorConfig::default());
        let a = g.generate(8, &mut ChaCha8Rng::seed_from_u64(42));
        let b = g.generate(8, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = WorkloadGenerator::new(GeneratorConfig::default());
        let a = g.generate(8, &mut ChaCha8Rng::seed_from_u64(1));
        let b = g.generate(8, &mut ChaCha8Rng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn perturbation_respects_bounds() {
        let config = GeneratorConfig {
            scale_min: 0.9,
            scale_max: 1.1,
            penalty_scale_min: 1.0,
            penalty_scale_max: 1.0,
        };
        let g = WorkloadGenerator::new(config);
        let base = WorkloadProfile::central_banking();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let p = g.perturb(&base, &mut rng);
            let ratio = p.capacity.as_f64() / base.capacity.as_f64();
            assert!((0.9..=1.1).contains(&ratio), "ratio {ratio} out of bounds");
            assert_eq!(p.penalties, base.penalties, "penalty scale pinned to 1.0");
            assert!(p.peak_update >= p.avg_update);
        }
    }

    #[test]
    fn identity_config_reproduces_base() {
        let config = GeneratorConfig {
            scale_min: 1.0,
            scale_max: 1.0,
            penalty_scale_min: 1.0,
            penalty_scale_max: 1.0,
        };
        let g = WorkloadGenerator::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let set = g.generate(4, &mut rng);
        let expected = WorkloadSet::scaled_paper_mix(4);
        assert_eq!(set, expected);
    }

    #[test]
    #[should_panic(expected = "invalid size scale bounds")]
    fn bad_bounds_rejected() {
        let _ = WorkloadGenerator::new(GeneratorConfig {
            scale_min: 2.0,
            scale_max: 1.0,
            ..GeneratorConfig::default()
        });
    }
}
