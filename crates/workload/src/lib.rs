#![warn(missing_docs)]

//! Application workloads and their business requirements.
//!
//! An [`ApplicationWorkload`] carries the two inputs the design tool needs
//! per application (paper §2.2 and §2.4, Table 1):
//!
//! * **business requirements**, expressed as [`PenaltyRates`] — a data
//!   outage penalty rate and a recent data loss penalty rate in $/hr;
//! * **workload characteristics** — dataset capacity, average and peak
//!   (non-unique) update rates, unique update rate, and average access rate.
//!
//! Applications fall into a business [`AppClass`] (gold / silver / bronze)
//! determined by fixed thresholds on the sum of their penalty rates
//! (paper §3.1.3); the thresholds live in [`ClassThresholds`].
//!
//! The four application types of Table 1 are provided as
//! [`WorkloadProfile`] constructors, and [`WorkloadSet`] builds the scaled
//! multi-application environments used in the paper's evaluation (§4.4:
//! "scaled by four applications at a time, one from each class").
//!
//! # Examples
//!
//! ```
//! use dsd_workload::{WorkloadProfile, WorkloadSet, AppClass};
//!
//! let set = WorkloadSet::scaled_paper_mix(8);
//! assert_eq!(set.len(), 8);
//! let gold = set.iter().filter(|w| w.class() == AppClass::Gold).count();
//! assert_eq!(gold, 2); // two central-banking instances
//!
//! let b = WorkloadProfile::central_banking();
//! assert_eq!(b.class(), AppClass::Gold);
//! ```

mod generator;
mod penalty;
mod profile;
mod set;

pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use penalty::{PenaltyModel, PenaltySchedule};
pub use profile::{AppClass, ClassThresholds, PenaltyRates, WorkloadProfile};
pub use set::{AppId, ApplicationWorkload, WorkloadSet};
