//! Deployed application instances and collections of them.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use dsd_units::{DollarsPerHour, Gigabytes, MegabytesPerSec};

use crate::profile::{AppClass, ClassThresholds, PenaltyRates, WorkloadProfile};

/// Identifier of a deployed application within a [`WorkloadSet`].
///
/// Ids are dense indices assigned in insertion order, so they can be used
/// to index per-application side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub usize);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// One deployed application: a [`WorkloadProfile`] instance with an
/// identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationWorkload {
    /// Dense identifier within the owning [`WorkloadSet`].
    pub id: AppId,
    /// Instance name, e.g. `"central banking #1"`.
    pub name: String,
    /// The workload template this instance was stamped from.
    pub profile: WorkloadProfile,
}

impl ApplicationWorkload {
    /// Business penalty rates.
    #[must_use]
    pub fn penalties(&self) -> PenaltyRates {
        self.profile.penalties
    }

    /// The full penalty model (rates + schedule).
    #[must_use]
    pub fn penalty_model(&self) -> crate::PenaltyModel {
        self.profile.penalty_model()
    }

    /// Sum of penalty rates: recovery priority / classification key.
    #[must_use]
    pub fn priority(&self) -> DollarsPerHour {
        self.profile.penalties.sum()
    }

    /// Dataset capacity.
    #[must_use]
    pub fn capacity(&self) -> Gigabytes {
        self.profile.capacity
    }

    /// Average (non-unique) update rate.
    #[must_use]
    pub fn avg_update(&self) -> MegabytesPerSec {
        self.profile.avg_update
    }

    /// Peak (non-unique) update rate.
    #[must_use]
    pub fn peak_update(&self) -> MegabytesPerSec {
        self.profile.peak_update
    }

    /// Average access (read + write) rate.
    #[must_use]
    pub fn avg_access(&self) -> MegabytesPerSec {
        self.profile.avg_access
    }

    /// Unique update rate for periodic-copy sizing.
    #[must_use]
    pub fn unique_update_rate(&self) -> MegabytesPerSec {
        self.profile.unique_update_rate()
    }

    /// Business class under the default thresholds.
    #[must_use]
    pub fn class(&self) -> AppClass {
        self.profile.class()
    }

    /// Business class under explicit thresholds.
    #[must_use]
    pub fn class_with(&self, thresholds: &ClassThresholds) -> AppClass {
        self.profile.class_with(thresholds)
    }
}

impl fmt::Display for ApplicationWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.id)
    }
}

/// An ordered collection of deployed applications.
///
/// # Examples
///
/// ```
/// use dsd_workload::{WorkloadSet, WorkloadProfile};
///
/// let mut set = WorkloadSet::new();
/// let id = set.push(WorkloadProfile::central_banking());
/// assert_eq!(set[id].profile.code, 'B');
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSet {
    apps: Vec<ApplicationWorkload>,
}

impl WorkloadSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        WorkloadSet::default()
    }

    /// Adds an application stamped from `profile`, returning its id.
    /// Instance names are suffixed with a per-profile ordinal.
    pub fn push(&mut self, profile: WorkloadProfile) -> AppId {
        let ordinal = self.apps.iter().filter(|a| a.profile.code == profile.code).count() + 1;
        let id = AppId(self.apps.len());
        let name = format!("{} #{}", profile.name, ordinal);
        self.apps.push(ApplicationWorkload { id, name, profile });
        id
    }

    /// The paper's scaled environment: `n` applications drawn cyclically
    /// from the Table 1 mix (B, W, C, S, B, W, ...). §4.4 scales "by four
    /// applications at a time, one from each class".
    #[must_use]
    pub fn scaled_paper_mix(n: usize) -> Self {
        let profiles = WorkloadProfile::paper_mix();
        let mut set = WorkloadSet::new();
        for i in 0..n {
            set.push(profiles[i % profiles.len()].clone());
        }
        set
    }

    /// Number of applications.
    #[must_use]
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True if no applications are deployed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Iterates over the applications in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, ApplicationWorkload> {
        self.apps.iter()
    }

    /// Looks up an application by id.
    #[must_use]
    pub fn get(&self, id: AppId) -> Option<&ApplicationWorkload> {
        self.apps.get(id.0)
    }

    /// All application ids in order.
    pub fn ids(&self) -> impl Iterator<Item = AppId> + '_ {
        (0..self.apps.len()).map(AppId)
    }

    /// Total dataset capacity across all applications.
    #[must_use]
    pub fn total_capacity(&self) -> Gigabytes {
        self.apps.iter().map(|a| a.capacity()).sum()
    }

    /// Sum of all applications' penalty-rate sums; used to normalize
    /// selection probabilities in the design solver.
    #[must_use]
    pub fn total_priority(&self) -> DollarsPerHour {
        self.apps.iter().map(|a| a.priority()).sum()
    }
}

impl Index<AppId> for WorkloadSet {
    type Output = ApplicationWorkload;

    /// # Panics
    ///
    /// Panics if `id` is not a member of this set.
    fn index(&self, id: AppId) -> &ApplicationWorkload {
        &self.apps[id.0]
    }
}

impl<'a> IntoIterator for &'a WorkloadSet {
    type Item = &'a ApplicationWorkload;
    type IntoIter = std::slice::Iter<'a, ApplicationWorkload>;
    fn into_iter(self) -> Self::IntoIter {
        self.apps.iter()
    }
}

impl FromIterator<WorkloadProfile> for WorkloadSet {
    fn from_iter<I: IntoIterator<Item = WorkloadProfile>>(iter: I) -> Self {
        let mut set = WorkloadSet::new();
        for p in iter {
            set.push(p);
        }
        set
    }
}

impl Extend<WorkloadProfile> for WorkloadSet {
    fn extend<I: IntoIterator<Item = WorkloadProfile>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_dense_ids_and_ordinals() {
        let mut set = WorkloadSet::new();
        let a = set.push(WorkloadProfile::central_banking());
        let b = set.push(WorkloadProfile::central_banking());
        let c = set.push(WorkloadProfile::student_accounts());
        assert_eq!((a, b, c), (AppId(0), AppId(1), AppId(2)));
        assert_eq!(set[a].name, "central banking #1");
        assert_eq!(set[b].name, "central banking #2");
        assert_eq!(set[c].name, "student accounts #1");
    }

    #[test]
    fn scaled_mix_cycles_through_classes() {
        let set = WorkloadSet::scaled_paper_mix(8);
        let codes: String = set.iter().map(|a| a.profile.code).collect();
        assert_eq!(codes, "BWCSBWCS");
    }

    #[test]
    fn totals_accumulate() {
        let set = WorkloadSet::scaled_paper_mix(4);
        assert_eq!(set.total_capacity().as_f64(), 1300.0 + 4300.0 + 4300.0 + 500.0);
        let expected = 1e7 + 5_005_000.0 + 5_005_000.0 + 1e4;
        assert!((set.total_priority().as_f64() - expected).abs() < 1.0);
    }

    #[test]
    fn collect_from_profiles() {
        let set: WorkloadSet = WorkloadProfile::paper_mix().into_iter().collect();
        assert_eq!(set.len(), 4);
        assert!(set.get(AppId(3)).is_some());
        assert!(set.get(AppId(4)).is_none());
    }

    #[test]
    fn extend_appends() {
        let mut set = WorkloadSet::scaled_paper_mix(2);
        set.extend(WorkloadProfile::paper_mix());
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn empty_set_behaves() {
        let set = WorkloadSet::new();
        assert!(set.is_empty());
        assert_eq!(set.total_capacity(), Gigabytes::ZERO);
        assert_eq!(set.ids().count(), 0);
    }

    #[test]
    fn accessors_delegate_to_profile() {
        let set = WorkloadSet::scaled_paper_mix(1);
        let app = &set[AppId(0)];
        assert_eq!(app.capacity().as_f64(), 1300.0);
        assert_eq!(app.class(), AppClass::Gold);
        assert_eq!(app.priority().as_f64(), 1e7);
        assert!((app.unique_update_rate().as_f64() - 3.0).abs() < 1e-12);
        assert_eq!(app.avg_access().as_f64(), 50.0);
        assert_eq!(app.peak_update().as_f64(), 50.0);
        assert_eq!(app.avg_update().as_f64(), 5.0);
    }

    #[test]
    fn display_formats() {
        let set = WorkloadSet::scaled_paper_mix(1);
        assert_eq!(set[AppId(0)].to_string(), "central banking #1 [app#0]");
        assert_eq!(AppId(7).to_string(), "app#7");
    }
}
