//! Penalty schedules: how outage and loss durations turn into dollars.
//!
//! The paper charges linearly: penalty = rate × duration (§2.4). Real
//! service-level agreements are usually *deductible*: outages shorter
//! than the recovery-time objective (RTO) and losses shorter than the
//! recovery-point objective (RPO) cost nothing, anything beyond accrues
//! at the rate, plus an optional fixed breach fine. [`PenaltySchedule`]
//! captures both; the evaluator charges through
//! [`PenaltyModel::outage_penalty`] / [`PenaltyModel::loss_penalty`] so
//! designs are judged against the schedule the business actually signs.

use serde::{Deserialize, Serialize};

use dsd_units::{Dollars, TimeSpan};

use crate::profile::PenaltyRates;

/// Shape of the duration → dollars mapping.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum PenaltySchedule {
    /// The paper's model: every second of outage/loss accrues at the
    /// rate.
    #[default]
    Linear,
    /// SLA-style deductible: durations within the objective are free;
    /// beyond it, the excess accrues at the rate and a fixed breach fine
    /// is charged once.
    Deductible {
        /// Recovery-time objective: outage up to this long is free.
        rto: TimeSpan,
        /// Recovery-point objective: data loss up to this long is free.
        rpo: TimeSpan,
        /// One-time fine per breached objective.
        breach_fine: Dollars,
    },
}

/// Penalty rates plus their schedule — everything needed to price one
/// application's outage and loss durations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PenaltyModel {
    /// The $/hr rates (Table 1).
    pub rates: PenaltyRates,
    /// The schedule the rates are charged under.
    pub schedule: PenaltySchedule,
}

impl PenaltyModel {
    /// A linear model (the paper's).
    #[must_use]
    pub fn linear(rates: PenaltyRates) -> Self {
        PenaltyModel { rates, schedule: PenaltySchedule::Linear }
    }

    /// Dollars charged for a data outage of `duration`.
    #[must_use]
    pub fn outage_penalty(&self, duration: TimeSpan) -> Dollars {
        match self.schedule {
            PenaltySchedule::Linear => self.rates.outage * duration,
            PenaltySchedule::Deductible { rto, breach_fine, .. } => {
                if duration <= rto {
                    Dollars::ZERO
                } else {
                    self.rates.outage * (duration - rto) + breach_fine
                }
            }
        }
    }

    /// Dollars charged for recent data loss of `duration`.
    #[must_use]
    pub fn loss_penalty(&self, duration: TimeSpan) -> Dollars {
        match self.schedule {
            PenaltySchedule::Linear => self.rates.recent_loss * duration,
            PenaltySchedule::Deductible { rpo, breach_fine, .. } => {
                if duration <= rpo {
                    Dollars::ZERO
                } else {
                    self.rates.recent_loss * (duration - rpo) + breach_fine
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_units::DollarsPerHour;

    fn rates() -> PenaltyRates {
        PenaltyRates::new(DollarsPerHour::new(1000.0), DollarsPerHour::new(100.0))
    }

    #[test]
    fn linear_schedule_matches_rate_times_time() {
        let m = PenaltyModel::linear(rates());
        assert_eq!(m.outage_penalty(TimeSpan::from_hours(3.0)).as_f64(), 3000.0);
        assert_eq!(m.loss_penalty(TimeSpan::from_hours(2.0)).as_f64(), 200.0);
        assert_eq!(m.outage_penalty(TimeSpan::ZERO), Dollars::ZERO);
    }

    #[test]
    fn deductible_is_free_within_objectives() {
        let m = PenaltyModel {
            rates: rates(),
            schedule: PenaltySchedule::Deductible {
                rto: TimeSpan::from_hours(1.0),
                rpo: TimeSpan::from_mins(30.0),
                breach_fine: Dollars::new(5000.0),
            },
        };
        assert_eq!(m.outage_penalty(TimeSpan::from_mins(59.0)), Dollars::ZERO);
        assert_eq!(m.outage_penalty(TimeSpan::from_hours(1.0)), Dollars::ZERO);
        assert_eq!(m.loss_penalty(TimeSpan::from_mins(30.0)), Dollars::ZERO);
    }

    #[test]
    fn deductible_charges_excess_plus_fine() {
        let m = PenaltyModel {
            rates: rates(),
            schedule: PenaltySchedule::Deductible {
                rto: TimeSpan::from_hours(1.0),
                rpo: TimeSpan::from_mins(30.0),
                breach_fine: Dollars::new(5000.0),
            },
        };
        // 3h outage: 2h excess x $1000 + $5000 fine.
        assert_eq!(m.outage_penalty(TimeSpan::from_hours(3.0)).as_f64(), 7000.0);
        // 90min loss: 1h excess x $100 + $5000 fine.
        assert_eq!(m.loss_penalty(TimeSpan::from_mins(90.0)).as_f64(), 5100.0);
    }

    #[test]
    fn deductible_infinite_duration_is_infinite() {
        let m = PenaltyModel {
            rates: rates(),
            schedule: PenaltySchedule::Deductible {
                rto: TimeSpan::from_hours(1.0),
                rpo: TimeSpan::ZERO,
                breach_fine: Dollars::ZERO,
            },
        };
        assert!(!m.outage_penalty(TimeSpan::INFINITE).is_finite());
    }

    #[test]
    fn schedules_agree_at_zero_objectives() {
        let linear = PenaltyModel::linear(rates());
        let degenerate = PenaltyModel {
            rates: rates(),
            schedule: PenaltySchedule::Deductible {
                rto: TimeSpan::ZERO,
                rpo: TimeSpan::ZERO,
                breach_fine: Dollars::ZERO,
            },
        };
        for h in [0.5, 1.0, 7.0] {
            let t = TimeSpan::from_hours(h);
            assert_eq!(linear.outage_penalty(t), degenerate.outage_penalty(t));
            assert_eq!(linear.loss_penalty(t), degenerate.loss_penalty(t));
        }
    }
}
