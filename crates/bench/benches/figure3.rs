//! Criterion bench: Figure 3 three-heuristic comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::Budget;
use dsd_scenarios::experiments::figure3;
use std::hint::black_box;
use std::time::Duration;

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    group.bench_function("three_heuristics_peer_sites", |b| {
        b.iter(|| {
            let fig = figure3::run(Budget::iterations(8), 0, black_box(11));
            black_box(fig.tool.is_some())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
