//! Criterion bench: Figure 4 scalability sweep (reduced scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_core::Budget;
use dsd_scenarios::experiments::figure4;
use std::hint::black_box;
use std::time::Duration;

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for apps in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("solve_four_sites", apps), &apps, |b, &apps| {
            b.iter(|| {
                let fig = figure4::run(&[apps], Budget::iterations(6), black_box(31));
                black_box(fig.points[0].tool)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
