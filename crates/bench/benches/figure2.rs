//! Criterion bench: Figure 2 random-solution sampling throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_scenarios::experiments::figure2;
use std::hint::black_box;
use std::time::Duration;

fn bench_figure2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    group.bench_function("sample_200_random_solutions", |b| {
        b.iter(|| {
            let fig = figure2::run(black_box(200), 20, 3);
            black_box(fig.summary.costs.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figure2);
criterion_main!(benches);
