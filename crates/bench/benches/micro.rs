//! Criterion microbenches for the evaluation engine: scenario evaluation
//! and recovery scheduling are the solver's inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::{Budget, Candidate, DesignSolver};
use dsd_recovery::{schedule_jobs, Evaluator, RecoveryJob, RecoveryPolicy};
use dsd_resources::{ArrayRef, DeviceRef, SiteId};
use dsd_scenarios::environments::peer_sites;
use dsd_units::{DollarsPerHour, TimeSpan};
use dsd_workload::AppId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

fn solved_candidate() -> (dsd_core::Environment, Candidate) {
    let env = peer_sites();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let best =
        DesignSolver::new(&env).solve(Budget::iterations(8), &mut rng).best.expect("feasible");
    (env, best)
}

fn bench_evaluator(c: &mut Criterion) {
    let (env, candidate) = solved_candidate();
    let protections = candidate.protections(&env);
    let scenarios = env.failures.enumerate(candidate.primaries());
    let mut group = c.benchmark_group("micro");
    group.sample_size(30).warm_up_time(Duration::from_millis(300));
    group.bench_function("annual_penalties_8_apps", |b| {
        let ev = Evaluator::new(&env.workloads, candidate.provision(), env.recovery);
        b.iter(|| {
            let (summary, _) = ev.annual_penalties(black_box(&protections), &scenarios);
            black_box(summary.total())
        });
    });
    group.bench_function("candidate_full_evaluate", |b| {
        b.iter(|| {
            let mut c2 = candidate.clone();
            c2.provision_mut(); // invalidate cache
            black_box(c2.evaluate(&env).total())
        });
    });
    group.bench_function("schedule_32_jobs", |b| {
        let jobs: Vec<RecoveryJob> = (0..32)
            .map(|i| RecoveryJob {
                app: AppId(i),
                priority: DollarsPerHour::new(1000.0 * (i % 7) as f64),
                lead_time: TimeSpan::from_hours((i % 3) as f64),
                devices: vec![DeviceRef::Array(ArrayRef { site: SiteId(i % 4), slot: i % 2 })],
                transfer: TimeSpan::from_hours(1.0 + (i % 5) as f64),
                tail: TimeSpan::from_mins(30.0),
            })
            .collect();
        b.iter(|| black_box(schedule_jobs(black_box(jobs.clone())).makespan()));
    });
    group.finish();
    let _ = RecoveryPolicy::default();
}

criterion_group!(benches, bench_evaluator);
criterion_main!(benches);
