//! Criterion bench: ablation variants (baseline vs greedy-only).

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::{Budget, DesignSolver, RefitParams};
use dsd_scenarios::environments::peer_sites;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let env = peer_sites();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    group.bench_function("baseline_solver", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let out = DesignSolver::new(&env).solve(Budget::iterations(10), &mut rng);
            black_box(out.best.map(|x| x.cost().total().as_f64()))
        });
    });
    group.bench_function("greedy_only_solver", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let out = DesignSolver::new(&env)
                .with_refit(RefitParams { breadth: 3, depth: 5, max_rounds: 0 })
                .solve(Budget::iterations(10), &mut rng);
            black_box(out.best.map(|x| x.cost().total().as_f64()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
