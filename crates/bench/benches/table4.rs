//! Criterion bench: Table 4 regeneration (design tool on peer sites).

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::Budget;
use dsd_scenarios::experiments::table4;
use std::hint::black_box;
use std::time::Duration;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    group.bench_function("design_tool_peer_sites", |b| {
        b.iter(|| {
            let t = table4::run(Budget::iterations(10), black_box(2)).expect("feasible");
            black_box(t.rows.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
