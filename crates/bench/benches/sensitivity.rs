//! Criterion bench: Figures 5-7 sensitivity sweeps (one point each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_core::Budget;
use dsd_scenarios::experiments::sensitivity::{run, SweepKind};
use std::hint::black_box;
use std::time::Duration;

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for kind in [SweepKind::DataObject, SweepKind::DiskArray, SweepKind::SiteDisaster] {
        group.bench_with_input(BenchmarkId::new("figure", kind.figure()), &kind, |b, &kind| {
            let rate = kind.paper_rates()[0];
            b.iter(|| {
                let fig = run(kind, &[rate], Budget::iterations(4), black_box(41));
                black_box(fig.points[0].total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
