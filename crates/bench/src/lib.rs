#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries and benches.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! (§4); the Criterion benches in `benches/` time the same drivers at
//! reduced budgets. Run a binary with, e.g.:
//!
//! ```text
//! cargo run -p dsd-bench --release --bin table4
//! DSD_BUDGET=500 DSD_SEED=7 cargo run -p dsd-bench --release --bin figure3
//! ```

pub mod history;

use std::path::PathBuf;

use dsd_core::{Budget, SolveOutcome};
use serde::Value;

/// Default solver iteration budget for the experiment binaries
/// (overridable via `DSD_BUDGET`).
pub const DEFAULT_BUDGET_ITERATIONS: u64 = 300;

/// Default RNG seed for the experiment binaries (overridable via
/// `DSD_SEED`).
pub const DEFAULT_SEED: u64 = 2006;

/// Reads an integer environment variable with a default.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The iteration budget for a binary run: `DSD_BUDGET` or the default.
#[must_use]
pub fn budget_from_env() -> Budget {
    Budget::iterations(env_u64("DSD_BUDGET", DEFAULT_BUDGET_ITERATIONS))
}

/// The seed for a binary run: `DSD_SEED` or the default.
#[must_use]
pub fn seed_from_env() -> u64 {
    env_u64("DSD_SEED", DEFAULT_SEED)
}

/// Summarizes a [`SolveOutcome`]'s instrumentation as a JSON value:
/// best cost, node counts, per-stage wall times, throughput, and the
/// evaluation-cache counters when a cache was attached.
#[must_use]
pub fn outcome_value(outcome: &SolveOutcome) -> Value {
    let stats = outcome.stats;
    let mut map = vec![
        (
            "best_total_cost".to_string(),
            match &outcome.best {
                Some(best) => Value::Float(best.cost().total().as_f64()),
                None => Value::Null,
            },
        ),
        (
            "nodes_evaluated".to_string(),
            Value::Int(i64::try_from(stats.nodes_evaluated).unwrap_or(i64::MAX)),
        ),
        ("elapsed_secs".to_string(), Value::Float(outcome.elapsed.as_secs_f64())),
        ("evals_per_sec".to_string(), Value::Float(outcome.evals_per_sec())),
        ("greedy_secs".to_string(), Value::Float(stats.greedy_time.as_secs_f64())),
        ("refit_secs".to_string(), Value::Float(stats.refit_time.as_secs_f64())),
        ("completion_secs".to_string(), Value::Float(stats.completion_time.as_secs_f64())),
    ];
    if let Some(cache) = outcome.cache {
        map.push((
            "cache".to_string(),
            Value::Map(vec![
                ("hits".to_string(), Value::Int(i64::try_from(cache.hits).unwrap_or(i64::MAX))),
                ("misses".to_string(), Value::Int(i64::try_from(cache.misses).unwrap_or(i64::MAX))),
                (
                    "evictions".to_string(),
                    Value::Int(i64::try_from(cache.evictions).unwrap_or(i64::MAX)),
                ),
                (
                    "entries".to_string(),
                    Value::Int(i64::try_from(cache.entries).unwrap_or(i64::MAX)),
                ),
                ("hit_rate".to_string(), Value::Float(cache.hit_rate())),
            ]),
        ));
    }
    Value::Map(map)
}

/// Writes `value` pretty-printed to `BENCH_<name>.json` in the directory
/// named by `DSD_BENCH_DIR` (default: the current directory) and returns
/// the path written.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_bench_json(name: &str, value: &Value) -> std::io::Result<PathBuf> {
    let dir = std::env::var("DSD_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(dir).join(format!("BENCH_{name}.json"));
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_u64_parses_and_defaults() {
        std::env::remove_var("DSD_TEST_MISSING");
        assert_eq!(env_u64("DSD_TEST_MISSING", 42), 42);
        std::env::set_var("DSD_TEST_SET", "17");
        assert_eq!(env_u64("DSD_TEST_SET", 42), 17);
        std::env::set_var("DSD_TEST_BAD", "xyz");
        assert_eq!(env_u64("DSD_TEST_BAD", 42), 42);
    }
}
