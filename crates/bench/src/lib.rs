#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries and benches.
//!
//! Each binary regenerates one table/figure of the paper's evaluation
//! (§4); the Criterion benches in `benches/` time the same drivers at
//! reduced budgets. Run a binary with, e.g.:
//!
//! ```text
//! cargo run -p dsd-bench --release --bin table4
//! DSD_BUDGET=500 DSD_SEED=7 cargo run -p dsd-bench --release --bin figure3
//! ```

use dsd_core::Budget;

/// Default solver iteration budget for the experiment binaries
/// (overridable via `DSD_BUDGET`).
pub const DEFAULT_BUDGET_ITERATIONS: u64 = 300;

/// Default RNG seed for the experiment binaries (overridable via
/// `DSD_SEED`).
pub const DEFAULT_SEED: u64 = 2006;

/// Reads an integer environment variable with a default.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The iteration budget for a binary run: `DSD_BUDGET` or the default.
#[must_use]
pub fn budget_from_env() -> Budget {
    Budget::iterations(env_u64("DSD_BUDGET", DEFAULT_BUDGET_ITERATIONS))
}

/// The seed for a binary run: `DSD_SEED` or the default.
#[must_use]
pub fn seed_from_env() -> u64 {
    env_u64("DSD_SEED", DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_u64_parses_and_defaults() {
        std::env::remove_var("DSD_TEST_MISSING");
        assert_eq!(env_u64("DSD_TEST_MISSING", 42), 42);
        std::env::set_var("DSD_TEST_SET", "17");
        assert_eq!(env_u64("DSD_TEST_SET", 42), 17);
        std::env::set_var("DSD_TEST_BAD", "xyz");
        assert_eq!(env_u64("DSD_TEST_BAD", 42), 42);
    }
}
