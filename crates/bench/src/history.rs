//! Perf-history regression harness.
//!
//! One `history` run executes the perf-sensitive bench binaries (cache,
//! incremental_eval, obs, tournament) plus an in-process instrumented
//! solve, and appends a single schema-versioned record to
//! `BENCH_history.jsonl` in `DSD_BENCH_DIR`. `compare_latest` then diffs
//! the newest record against the one before it with the same
//! [`dsd_obs::export::diff_numeric`] machinery `dsd obs diff` uses, so
//! CI can fail on throughput or cost regressions while tolerating
//! wall-clock noise (percentage tolerance, default 10%).
//!
//! Records are append-only JSONL: one compact JSON object per line, with
//! `schema_version` so future sessions can evolve the shape without
//! breaking old files. Non-numeric context (`recorded_at`, `git_sha`,
//! the env fingerprint strings) is stored as strings precisely so the
//! numeric differ never flags it.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;

use dsd_core::{Budget, DesignSolver};
use dsd_obs::export::{diff_numeric, to_compact_json, DiffClass};
use dsd_obs::progress::ProgressKind;
use dsd_obs::ProgressChannel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

use crate::{env_u64, seed_from_env, DEFAULT_BUDGET_ITERATIONS};

/// Version stamped into every history record.
pub const HISTORY_SCHEMA_VERSION: i64 = 1;

/// File name of the append-only history log (inside `DSD_BENCH_DIR`).
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Default regression tolerance for [`compare_latest`], in percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

/// The bench binaries a history run executes, as `(binary name, BENCH
/// json name)` pairs — the binaries live next to whichever executable is
/// running (all workspace bins land in the same target directory).
pub const BENCH_BINS: &[(&str, &str)] = &[
    ("cache", "cache"),
    ("incremental_eval", "incremental"),
    ("fleet", "fleet"),
    ("obs", "obs"),
    ("tournament", "tournament"),
];

/// How a history run is shaped.
#[derive(Debug, Clone)]
pub struct HistoryConfig {
    /// Use reduced budgets/reps for the bench bins (CI smoke mode).
    pub quick: bool,
    /// Skip executing the external bench bins entirely (the in-process
    /// solver section is still measured). Used by tests and by callers
    /// that only care about solver throughput.
    pub skip_bins: bool,
    /// Directory holding `BENCH_*.json` artifacts and the history log.
    pub dir: PathBuf,
}

impl HistoryConfig {
    /// Builds a config with the directory taken from `DSD_BENCH_DIR`
    /// (default: the current directory).
    #[must_use]
    pub fn from_env(quick: bool, skip_bins: bool) -> Self {
        let dir = std::env::var("DSD_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        HistoryConfig { quick, skip_bins, dir: PathBuf::from(dir) }
    }

    /// Path of the history log under this config's directory.
    #[must_use]
    pub fn history_path(&self) -> PathBuf {
        self.dir.join(HISTORY_FILE)
    }
}

/// Seconds since the Unix epoch, as a string (strings stay out of the
/// numeric diff, so the timestamp can never be flagged as a regression).
fn recorded_at() -> String {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_else(|_| "0".to_string())
}

/// The current commit, short form: `git rev-parse`, falling back to the
/// `GITHUB_SHA` CI variable, then `"unknown"`.
#[must_use]
pub fn git_sha() -> String {
    let from_git = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    from_git.or_else(|| std::env::var("GITHUB_SHA").ok()).unwrap_or_else(|| "unknown".to_string())
}

/// Machine fingerprint: OS, architecture, logical CPU count. Strings for
/// the identity fields; the CPU count is numeric but direction-neutral.
#[must_use]
pub fn env_fingerprint() -> Value {
    let cpus = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    Value::Map(vec![
        ("os".to_string(), Value::Str(std::env::consts::OS.to_string())),
        ("arch".to_string(), Value::Str(std::env::consts::ARCH.to_string())),
        ("cpus".to_string(), Value::Int(i64::try_from(cpus).unwrap_or(i64::MAX))),
    ])
}

/// In-process instrumented solve: runs the design solver on the
/// peer-sites environment with a progress channel installed and distills
/// the flight-recorder stream into the headline history numbers —
/// throughput, final cost, certificate gap, and time-to-5%-gap.
#[must_use]
pub fn solver_section(budget: Budget, seed: u64) -> Value {
    let env = dsd_scenarios::environments::peer_sites_with(4);
    let channel = ProgressChannel::new();
    let outcome = {
        let _guard = channel.install();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DesignSolver::new(&env).solve(budget, &mut rng)
    };
    let events = channel.poll();
    let mut final_cost = None;
    let mut final_gap = None;
    let mut time_to_5pct = None;
    for event in &events {
        if let ProgressKind::IncumbentImproved { cost, gap_pct, .. } = event.kind {
            final_cost = Some(cost);
            final_gap = gap_pct;
            if time_to_5pct.is_none() && gap_pct.is_some_and(|g| g <= 5.0) {
                time_to_5pct = Some(event.elapsed_secs());
            }
        }
    }
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    Value::Map(vec![
        ("seed".to_string(), Value::Int(i64::try_from(seed).unwrap_or(i64::MAX))),
        (
            "nodes_evaluated".to_string(),
            Value::Int(i64::try_from(outcome.stats.nodes_evaluated).unwrap_or(i64::MAX)),
        ),
        ("evals_per_sec".to_string(), Value::Float(outcome.evals_per_sec())),
        ("best_cost".to_string(), opt(final_cost)),
        ("gap_pct".to_string(), opt(final_gap)),
        ("time_to_5pct_gap_secs".to_string(), opt(time_to_5pct)),
        (
            "progress_events".to_string(),
            Value::Int(i64::try_from(events.len()).unwrap_or(i64::MAX)),
        ),
    ])
}

/// Locates a workspace binary next to the currently running executable.
fn sibling_bin(name: &str) -> Option<PathBuf> {
    let me = std::env::current_exe().ok()?;
    let path = me.parent()?.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    path.exists().then_some(path)
}

/// Sets an env var on a child command only when the caller has not set
/// it, so `DSD_BUDGET=… dsd bench history` still overrides quick mode.
fn env_default(cmd: &mut Command, key: &str, value: &str) {
    if std::env::var_os(key).is_none() {
        cmd.env(key, value);
    }
}

/// Runs one bench binary and returns `(ok, report)` — `report` is the
/// parsed `BENCH_<name>.json` it wrote, or `Null` when the binary is
/// missing or failed.
fn run_bench_bin(bin: &str, json_name: &str, cfg: &HistoryConfig) -> (bool, Value) {
    let Some(path) = sibling_bin(bin) else {
        eprintln!("history: skipping `{bin}` (not built next to the current executable)");
        return (false, Value::Null);
    };
    let mut cmd = Command::new(path);
    cmd.env("DSD_BENCH_DIR", &cfg.dir);
    if cfg.quick {
        env_default(&mut cmd, "DSD_BUDGET", "20");
        env_default(&mut cmd, "DSD_REPS", "2");
        env_default(&mut cmd, "DSD_APPS", "3");
        env_default(&mut cmd, "DSD_SEEDS", "2");
        env_default(&mut cmd, "DSD_MAX_THREADS", "4");
    }
    let ok = match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("history: `{bin}` exited with {status}");
            false
        }
        Err(e) => {
            eprintln!("history: `{bin}` failed to run: {e}");
            false
        }
    };
    if !ok {
        return (false, Value::Null);
    }
    let json_path = cfg.dir.join(format!("BENCH_{json_name}.json"));
    let report = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|text| serde_json::parse(&text).ok())
        .unwrap_or(Value::Null);
    (ok, report)
}

/// Runs a full history pass: the in-process solver section plus (unless
/// skipped) every bench binary, assembling one schema-versioned record.
#[must_use]
pub fn build_record(cfg: &HistoryConfig) -> Value {
    let budget = if cfg.quick {
        Budget::iterations(env_u64("DSD_BUDGET", 40))
    } else {
        Budget::iterations(env_u64("DSD_BUDGET", DEFAULT_BUDGET_ITERATIONS))
    };
    let solver = solver_section(budget, seed_from_env());
    let mut benches = Vec::new();
    if !cfg.skip_bins {
        for (bin, json_name) in BENCH_BINS {
            let (ok, report) = run_bench_bin(bin, json_name, cfg);
            benches.push((
                (*json_name).to_string(),
                Value::Map(vec![
                    ("ok".to_string(), Value::Bool(ok)),
                    ("report".to_string(), report),
                ]),
            ));
        }
    }
    Value::Map(vec![
        ("schema_version".to_string(), Value::Int(HISTORY_SCHEMA_VERSION)),
        ("recorded_at".to_string(), Value::Str(recorded_at())),
        ("git_sha".to_string(), Value::Str(git_sha())),
        ("env".to_string(), env_fingerprint()),
        ("quick".to_string(), Value::Bool(cfg.quick)),
        ("solver".to_string(), solver),
        ("benches".to_string(), Value::Map(benches)),
    ])
}

/// Appends one record to the history log (created on first use) and
/// returns the log's path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_record(cfg: &HistoryConfig, record: &Value) -> std::io::Result<PathBuf> {
    let path = cfg.history_path();
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
    writeln!(file, "{}", to_compact_json(record))?;
    Ok(path)
}

/// Runs a history pass and appends the record. Returns `(record, path)`.
///
/// # Errors
///
/// Propagates filesystem errors from the append.
pub fn run_history(cfg: &HistoryConfig) -> std::io::Result<(Value, PathBuf)> {
    let record = build_record(cfg);
    let path = append_record(cfg, &record)?;
    Ok((record, path))
}

/// Parses a history log leniently: malformed lines are skipped and
/// counted, mirroring the trace/progress parsers — a torn tail from an
/// interrupted run must never invalidate the history.
#[must_use]
pub fn load_history(text: &str) -> (Vec<Value>, u64) {
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::parse(line) {
            Ok(value @ Value::Map(_)) => records.push(value),
            _ => skipped += 1,
        }
    }
    (records, skipped)
}

/// Diffs the latest history record against the one before it (or against
/// itself when the log holds a single record — the CI bootstrap case,
/// which by construction yields zero deltas). Returns the rendered
/// report and the number of regressions beyond `tolerance_pct`.
///
/// # Errors
///
/// Returns an error when the history is empty.
pub fn compare_latest(records: &[Value], tolerance_pct: f64) -> Result<(String, usize), String> {
    use std::fmt::Write as _;
    let latest = records.last().ok_or("history is empty — run `dsd bench history` first")?;
    let baseline = if records.len() >= 2 { &records[records.len() - 2] } else { latest };
    let context = |r: &Value| {
        let s = |key: &str| match r.get(key) {
            Some(Value::Str(s)) => s.clone(),
            _ => "?".to_string(),
        };
        format!("sha {} @ {}", s("git_sha"), s("recorded_at"))
    };
    let mut out = String::new();
    let _ = writeln!(out, "baseline: {}", context(baseline));
    let _ = writeln!(out, "latest:   {}", context(latest));
    if records.len() < 2 {
        let _ = writeln!(out, "single record — comparing the latest run against itself");
    }

    let entries = diff_numeric(baseline, latest);
    let mut regressions = 0usize;
    let mut tolerated = 0usize;
    let mut improved = 0usize;
    for e in &entries {
        let class = e.classify();
        if class == DiffClass::Unchanged {
            continue;
        }
        let pct = e.pct_delta();
        let label = match class {
            DiffClass::Regressed => {
                // Wall-clock noise is expected run to run; only count a
                // regression when it exceeds the tolerance band.
                if pct.is_none_or(|p| p.abs() > tolerance_pct) {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    tolerated += 1;
                    "tolerated"
                }
            }
            DiffClass::Improved => {
                improved += 1;
                "improved "
            }
            DiffClass::Changed => "changed  ",
            DiffClass::Added => "added    ",
            DiffClass::Removed => "removed  ",
            DiffClass::Unchanged => unreachable!("filtered above"),
        };
        let delta = pct.map_or_else(|| "n/a".to_string(), |p| format!("{p:+.2}%"));
        let show = |v: Option<f64>| v.map_or("—".to_string(), |v| format!("{v}"));
        let _ = writeln!(
            out,
            "  {label} {:<48} {:>14} -> {:<14} ({delta})",
            e.name,
            show(e.a),
            show(e.b)
        );
    }
    let _ = writeln!(
        out,
        "summary: {regressions} regressions beyond {tolerance_pct:.0}% tolerance, \
         {tolerated} within tolerance, {improved} improvements"
    );
    Ok((out, regressions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sha: &str, evals_per_sec: f64, time_secs: f64) -> Value {
        Value::Map(vec![
            ("schema_version".to_string(), Value::Int(HISTORY_SCHEMA_VERSION)),
            ("recorded_at".to_string(), Value::Str("1000".to_string())),
            ("git_sha".to_string(), Value::Str(sha.to_string())),
            (
                "solver".to_string(),
                Value::Map(vec![
                    ("evals_per_sec".to_string(), Value::Float(evals_per_sec)),
                    ("time_to_5pct_gap_secs".to_string(), Value::Float(time_secs)),
                ]),
            ),
        ])
    }

    #[test]
    fn solver_section_reports_the_flight_numbers() {
        let section = solver_section(Budget::iterations(8), 3);
        let get = |key: &str| section.get(key).cloned().expect(key);
        assert!(matches!(get("evals_per_sec"), Value::Float(f) if f > 0.0));
        assert!(matches!(get("best_cost"), Value::Float(f) if f.is_finite()));
        assert!(matches!(get("progress_events"), Value::Int(n) if n > 0));
        // The gap comes from the certificate bound and is non-negative.
        if let Value::Float(gap) = get("gap_pct") {
            assert!(gap >= 0.0);
        }
    }

    #[test]
    fn build_record_has_the_schema_headline_fields() {
        let dir = std::env::temp_dir().join(format!("dsd-history-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = HistoryConfig { quick: true, skip_bins: true, dir: dir.clone() };
        let record = build_record(&cfg);
        assert!(matches!(record.get("schema_version"), Some(Value::Int(1))));
        assert!(matches!(record.get("recorded_at"), Some(Value::Str(_))));
        assert!(matches!(record.get("git_sha"), Some(Value::Str(_))));
        assert!(record.get("solver").is_some());
        let env = record.get("env").expect("fingerprint");
        assert!(matches!(env.get("cpus"), Some(Value::Int(n)) if *n >= 1));

        // Round-trips through the append/load pair, twice.
        let path = append_record(&cfg, &record).unwrap();
        append_record(&cfg, &record).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let (records, skipped) = load_history(&text);
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_history_skips_a_torn_tail() {
        let mut text = to_compact_json(&record("abc", 100.0, 1.0));
        text.push('\n');
        text.push_str("{\"schema_version\":1,\"recorded_at\":\"10");
        let (records, skipped) = load_history(&text);
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn self_compare_is_clean_and_single_record_self_compares() {
        let r = record("abc", 100.0, 1.0);
        let (out, regressions) = compare_latest(std::slice::from_ref(&r), 10.0).unwrap();
        assert_eq!(regressions, 0);
        assert!(out.contains("single record"));
        assert!(out.contains("0 regressions"));

        let (_, regressions) = compare_latest(&[r.clone(), r], 10.0).unwrap();
        assert_eq!(regressions, 0);
        assert!(compare_latest(&[], 10.0).is_err());
    }

    #[test]
    fn tolerance_gates_wallclock_regressions() {
        let base = record("abc", 100.0, 1.0);
        // 5% slower time-to-gap: regressed direction, but within the 10%
        // band — tolerated, not failed.
        let slightly = record("def", 100.0, 1.05);
        let (out, regressions) = compare_latest(&[base.clone(), slightly], 10.0).unwrap();
        assert_eq!(regressions, 0, "{out}");
        assert!(out.contains("tolerated"));

        // 50% throughput collapse: beyond tolerance, counted.
        let collapsed = record("def", 50.0, 1.0);
        let (out, regressions) = compare_latest(&[base.clone(), collapsed], 10.0).unwrap();
        assert_eq!(regressions, 1, "{out}");
        assert!(out.contains("REGRESSED"));
        assert!(out.contains("evals_per_sec"));

        // Improvements never count against the run.
        let faster = record("def", 200.0, 0.5);
        let (out, regressions) = compare_latest(&[base, faster], 10.0).unwrap();
        assert_eq!(regressions, 0, "{out}");
        assert!(out.contains("improved"));
    }
}
