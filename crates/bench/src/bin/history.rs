//! Perf-history runner: executes the perf bench binaries plus an
//! in-process instrumented solve and appends one schema-versioned record
//! to `BENCH_history.jsonl` (see `dsd_bench::history`). The same runner
//! backs `dsd bench history`; this standalone binary exists so the
//! history can be grown without the CLI.
//!
//! Flags: `--quick` (reduced budgets for CI smoke), `--skip-bins` (only
//! the in-process solver section). Knobs: `DSD_BENCH_DIR`, `DSD_BUDGET`,
//! `DSD_SEED`, `DSD_REPS`, `DSD_APPS`.

use dsd_bench::history::{run_history, HistoryConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let skip_bins = args.iter().any(|a| a == "--skip-bins");
    if let Some(unknown) = args.iter().find(|a| *a != "--quick" && *a != "--skip-bins") {
        eprintln!("unknown flag: {unknown}\nusage: history [--quick] [--skip-bins]");
        std::process::exit(2);
    }
    let cfg = HistoryConfig::from_env(quick, skip_bins);
    match run_history(&cfg) {
        Ok((record, path)) => {
            if let Some(solver) = record.get("solver") {
                println!("solver: {}", dsd_obs::export::to_compact_json(solver));
            }
            println!("history record appended to {}", path.display());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
