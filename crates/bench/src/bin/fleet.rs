//! Fleet-scale portfolio scaling bench.
//!
//! Runs the work-stealing [`Portfolio`] solver over seeded fleet
//! environments (`dsd_scenarios::fleet`) across a thread sweep
//! (1/2/4/8/16 by default) and an app-count sweep, measuring aggregate
//! candidate evaluations per second. For each instance it also runs the
//! independent-restart baseline (`parallel_solve`) at the same per-seed
//! budget and checks the portfolio's invariants: its best design costs
//! no more than the baseline's and never less than the certified lower
//! bound. Writes `BENCH_fleet.json` to `DSD_BENCH_DIR`.
//!
//! Knobs: `DSD_APPS` (largest fleet in the sweep, default 256),
//! `DSD_SEEDS` (restart seeds per run, default 8), `DSD_BUDGET`
//! (per-task iterations, default 40), `DSD_SEED`, and
//! `DSD_MAX_THREADS` (caps the thread sweep, default 16).

use dsd_bench::{env_u64, seed_from_env, write_bench_json};
use dsd_core::{parallel_solve, Budget, Portfolio};
use dsd_scenarios::fleet::{fleet, FleetParams};
use serde::Value;

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn main() {
    let max_apps = usize::try_from(env_u64("DSD_APPS", 256)).expect("DSD_APPS fits in usize");
    let seed = seed_from_env();
    let budget = Budget::iterations(env_u64("DSD_BUDGET", 40));
    let seed_count = env_u64("DSD_SEEDS", 8).max(1);
    let max_threads = env_u64("DSD_MAX_THREADS", 16).max(1) as usize;
    let seeds: Vec<u64> = (0..seed_count).map(|i| seed.wrapping_add(i)).collect();
    let threads: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= max_threads).collect();

    // Geometric app sweep up to DSD_APPS, so the curve shows how
    // aggregate throughput holds as the instance grows.
    let mut app_counts: Vec<usize> = vec![(max_apps / 4).max(1), (max_apps / 2).max(1), max_apps];
    app_counts.dedup();

    let mut sweeps = Vec::new();
    for &apps in &app_counts {
        let params = FleetParams::new(apps).with_seed(seed);
        let env = fleet(&params);
        println!(
            "fleet({apps} apps, {} sites, {}): {} seeds x {} strategies, budget {:?}",
            env.topology.sites().len(),
            params.graph.name(),
            seeds.len(),
            3,
            budget,
        );

        let mut rows = Vec::new();
        let mut single_thread_rate = None;
        let mut best_portfolio_cost = f64::INFINITY;
        for &t in &threads {
            let run = Portfolio::new(&env).with_workers(t).solve(budget, &seeds);
            let rate = run.outcome.evals_per_sec();
            let single = *single_thread_rate.get_or_insert(rate);
            let cost =
                run.outcome.best.as_ref().map_or(f64::INFINITY, |b| env.score(b.cost()).as_f64());
            best_portfolio_cost = best_portfolio_cost.min(cost);
            println!(
                "  {t:>2} threads: {:>8.0} evals/s ({:.2}x), {} tasks, {} steals, {} adoptions, best ${cost:.0}",
                rate,
                rate / single,
                run.tasks,
                run.steals,
                run.adoptions,
            );
            rows.push(Value::Map(vec![
                ("threads".to_string(), int(t as u64)),
                ("evals".to_string(), int(run.outcome.stats.nodes_evaluated)),
                ("elapsed_secs".to_string(), Value::Float(run.outcome.elapsed.as_secs_f64())),
                ("evals_per_sec".to_string(), Value::Float(rate)),
                ("speedup_vs_single_thread".to_string(), Value::Float(rate / single)),
                ("tasks".to_string(), int(run.tasks)),
                ("steals".to_string(), int(run.steals)),
                ("adoptions".to_string(), int(run.adoptions)),
                ("incumbent_generations".to_string(), int(run.incumbent_generations)),
                ("best_total_cost".to_string(), Value::Float(cost)),
            ]));
        }

        // Invariant checks against the independent-restart baseline at
        // the same per-seed budget, and the certified lower bound.
        let baseline = parallel_solve(&env, budget, &seeds);
        let baseline_cost =
            baseline.best.as_ref().map_or(f64::INFINITY, |b| env.score(b.cost()).as_f64());
        let bound = env.certified_lower_bound().total.as_f64();
        assert!(
            best_portfolio_cost.is_finite(),
            "fleet({apps}) must be solvable — an infeasible instance means the \
             generator under-provisioned sites or routes"
        );
        assert!(
            best_portfolio_cost <= baseline_cost + 1e-6,
            "portfolio ${best_portfolio_cost:.2} must not lose to \
             independent restarts ${baseline_cost:.2} on fleet({apps})"
        );
        assert!(
            best_portfolio_cost >= bound - 1e-6,
            "portfolio ${best_portfolio_cost:.2} below certified lower bound ${bound:.2}"
        );
        println!(
            "  baseline ${baseline_cost:.0}, portfolio ${best_portfolio_cost:.0}, \
             lower bound ${bound:.0} — invariants hold"
        );

        sweeps.push(Value::Map(vec![
            ("apps".to_string(), int(apps as u64)),
            ("sites".to_string(), int(env.topology.sites().len() as u64)),
            ("graph".to_string(), Value::Str(params.graph.name().to_string())),
            ("threads".to_string(), Value::Seq(rows)),
            ("baseline_total_cost".to_string(), Value::Float(baseline_cost)),
            ("portfolio_total_cost".to_string(), Value::Float(best_portfolio_cost)),
            ("lower_bound".to_string(), Value::Float(bound)),
        ]));
    }

    let report = Value::Map(vec![
        ("seed".to_string(), int(seed)),
        ("seeds".to_string(), int(seed_count)),
        ("budget".to_string(), int(env_u64("DSD_BUDGET", 40))),
        ("max_threads".to_string(), int(max_threads as u64)),
        ("sweeps".to_string(), Value::Seq(sweeps)),
    ]);
    match write_bench_json("fleet", &report) {
        Ok(path) => println!("report written to {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
