//! Solver tournament: heuristics vs. exhaustive vs. the lower bound.
//!
//! Races greedy / annealing / tabu against the config-grid exhaustive
//! optimum across a seeded grid of small environments, printing the gap
//! table and writing `BENCH_tournament.json`. Exits nonzero if any
//! instance violates the certified ordering
//! `lower_bound ≤ exhaustive ≤ heuristic` — the optimality certificate
//! is CI-enforced, not advisory.
//!
//! Knobs: `DSD_BUDGET` (iterations per heuristic per instance),
//! `DSD_SEED`, `DSD_APPS` (largest app count raced, from 2),
//! `DSD_MAX_EXH` (exhaustive combination ceiling), `DSD_BENCH_DIR`.

use dsd_bench::{env_u64, seed_from_env, write_bench_json};
use dsd_core::{run_tournament, TournamentConfig};
use serde::Serialize;

fn main() {
    let max_apps = env_u64("DSD_APPS", 6).max(2) as usize;
    let config = TournamentConfig {
        seed: seed_from_env(),
        budget: env_u64("DSD_BUDGET", 40),
        app_counts: (2..=max_apps).collect(),
        max_exhaustive: u128::from(env_u64("DSD_MAX_EXH", 200_000)),
    };
    let report = run_tournament(&config);
    println!("{report}");

    let path = write_bench_json("tournament", &report.serialize()).expect("write bench json");
    println!("json written to {}", path.display());

    if report.violations() > 0 {
        eprintln!(
            "FAIL: {} bound violation(s), {} ordering violation(s)",
            report.bound_violations, report.ordering_violations
        );
        std::process::exit(1);
    }
    println!("certified: lower_bound <= exhaustive <= heuristics on every enumerated instance");
}
