//! Regenerates Figure 6: sensitivity of the design tool's solution cost
//! to the DiskArray failure likelihood. `DSD_CSV=<path>` also writes CSV.

use dsd_bench::{budget_from_env, seed_from_env};
use dsd_scenarios::experiments::{csv, sensitivity};

fn main() {
    let kind = sensitivity::SweepKind::DiskArray;
    let rates = kind.paper_rates();
    let fig = sensitivity::run(kind, &rates, budget_from_env(), seed_from_env());
    print!("{fig}");
    if let Ok(path) = std::env::var("DSD_CSV") {
        std::fs::write(&path, csv::sensitivity_csv(&fig)).expect("write csv");
        println!("csv written to {path}");
    }
}
