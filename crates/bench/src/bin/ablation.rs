//! Runs the ablation study over the design tool's ingredients
//! (`DSD_BUDGET` iterations per run, seeds 1..=DSD_SEEDS;
//! `DSD_CSV=<path>` also writes CSV).

use dsd_bench::{budget_from_env, env_u64};
use dsd_scenarios::experiments::{ablation, csv};

fn main() {
    let seeds: Vec<u64> = (1..=env_u64("DSD_SEEDS", 5)).collect();
    let result = ablation::run(budget_from_env(), &seeds);
    print!("{result}");
    if let Ok(path) = std::env::var("DSD_CSV") {
        std::fs::write(&path, csv::ablation_csv(&result)).expect("write csv");
        println!("csv written to {path}");
    }
}
