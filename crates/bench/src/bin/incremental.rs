//! Measures incremental (delta) evaluation against full re-evaluation on
//! a refit/add-resources style trial workload: starting from a solved
//! design, every trial move (config sweep per app plus one-unit resource
//! additions) is costed both ways — clone + full `evaluate`, and
//! `evaluate_delta` with a scope-keyed scenario cache plus `undo_move` —
//! asserts the costs are bit-identical, and writes the evals/sec numbers
//! and `dsd-obs` counters to `BENCH_incremental.json` (`DSD_BENCH_DIR`
//! overrides the output directory; `DSD_BUDGET` / `DSD_SEED` /
//! `DSD_APPS` / `DSD_REPS` as usual).

use dsd_bench::{env_u64, seed_from_env, write_bench_json};
use dsd_core::{Budget, Candidate, Environment, Move, ScenarioOutcomeCache};
use dsd_obs::Stopwatch;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

/// The trial set a refit / resource-addition pass would explore from
/// `base`: each app's full config space at its current placement, plus a
/// one-unit addition for every active route, tape library, and array.
fn trial_moves(env: &Environment, base: &Candidate) -> Vec<Move> {
    let mut moves = Vec::new();
    for (&app, assignment) in base.assignments() {
        let technique = env.catalog.get(assignment.technique).expect("assigned technique");
        for config in technique.config_space() {
            moves.push(Move::Reassign {
                app,
                technique: assignment.technique,
                config,
                placement: assignment.placement,
            });
        }
    }
    for route in base.provision().active_routes() {
        moves.push(Move::AddLinks { route, extra: 1 });
    }
    for tape in base.provision().provisioned_tapes() {
        moves.push(Move::AddTapeDrives { tape, extra: 1 });
    }
    for array in base.provision().provisioned_arrays() {
        moves.push(Move::AddArrayUnits { array, extra: 1 });
    }
    moves
}

fn main() {
    // The scalability setting (§4.4): four sites, scenario count grows
    // with the app count — the regime the refit loop actually runs in.
    let apps = env_u64("DSD_APPS", 16);
    let env = dsd_scenarios::environments::four_sites(
        usize::try_from(apps).expect("DSD_APPS fits in usize"),
    );
    let seed = seed_from_env();
    let budget = Budget::iterations(env_u64("DSD_BUDGET", 20));
    let reps = env_u64("DSD_REPS", 12);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let outcome = dsd_core::DesignSolver::new(&env).solve(budget, &mut rng);
    let base = outcome.best.expect("solver finds a feasible design");
    let moves = trial_moves(&env, &base);
    println!("seed {seed}: {} apps, {} trial moves, {} reps per mode", apps, moves.len(), reps);

    // Untimed reference pass: the full-evaluation cost (or None for an
    // infeasible move) per trial, used to check bit-identity below.
    let full_costs: Vec<_> = moves
        .iter()
        .map(|mv| {
            let mut trial = base.clone();
            trial.apply_move(&env, mv).ok().map(|_| trial.evaluate(&env).clone())
        })
        .collect();

    // Both modes run `reps` individually timed sweeps over the move set,
    // interleaved so slow machine phases (frequency scaling, co-tenants)
    // hit both equally; the reported rate uses each mode's FASTEST sweep
    // — the minimum is the standard noise-robust estimator of the true
    // cost. Neither loop runs under a recorder: live metrics cost the
    // same either way and would only blur the comparison.
    let mut delta = base.clone();
    let mut scache = ScenarioOutcomeCache::new();
    let mut full_evals = 0u64;
    let mut delta_evals = 0u64;
    let mut mismatches = 0u64;
    let mut full_total = std::time::Duration::ZERO;
    let mut delta_total = std::time::Duration::ZERO;
    let mut full_best = std::time::Duration::MAX;
    let mut delta_best = std::time::Duration::MAX;
    let mut sweep_evals = 0u64;
    for rep in 0..reps {
        // Full path: every trial clones the candidate, applies the move,
        // and re-evaluates every failure scenario from scratch.
        let start = Stopwatch::start();
        let mut ok = 0u64;
        for mv in &moves {
            let mut trial = base.clone();
            if trial.apply_move(&env, mv).is_err() {
                continue;
            }
            let cost = trial.evaluate(&env);
            assert!(cost.total().as_f64().is_finite());
            ok += 1;
        }
        let elapsed = start.elapsed();
        full_total += elapsed;
        full_best = full_best.min(elapsed);
        full_evals += ok;
        sweep_evals = ok;

        // Delta path: one candidate, apply/evaluate/undo per trial,
        // scenario outcomes memoized per failure scope across sweeps.
        let start = Stopwatch::start();
        for (mv, expected) in moves.iter().zip(&full_costs) {
            match delta.evaluate_delta(&env, mv, &mut scache) {
                Ok((cost, undo)) => {
                    delta_evals += 1;
                    delta.undo_move(undo);
                    let same = expected.as_ref().is_some_and(|full| {
                        full.total().as_f64().to_bits() == cost.total().as_f64().to_bits()
                    });
                    if !same {
                        mismatches += 1;
                    }
                }
                Err(_) => {
                    if expected.is_some() {
                        mismatches += 1;
                    }
                }
            }
        }
        let elapsed = start.elapsed();
        // The first delta sweep runs against a cold scenario cache;
        // exclude it from the best-sweep estimate unless it is the only
        // one (matching how the refit loop runs: one warm cache for the
        // whole search).
        if rep > 0 || reps == 1 {
            delta_best = delta_best.min(elapsed);
        }
        delta_total += elapsed;
    }
    let full_elapsed = full_total;
    let delta_elapsed = delta_total;
    assert_eq!(mismatches, 0, "delta evaluation must be bit-identical to the full oracle");

    // Untimed instrumented sweep: replay one rep against a fresh cache
    // under a recorder to report the cache-behavior counters.
    let recorder = dsd_obs::Recorder::new();
    {
        let _guard = recorder.install();
        let mut counted = base.clone();
        let mut counted_cache = ScenarioOutcomeCache::new();
        for mv in &moves {
            if let Ok((_, undo)) = counted.evaluate_delta(&env, mv, &mut counted_cache) {
                counted.undo_move(undo);
            }
        }
    }
    let snapshot = recorder.metrics_snapshot();
    let delta_hits = snapshot.counter("eval.delta_hits").unwrap_or(0);
    let recomputed = snapshot.counter("eval.scenarios_recomputed").unwrap_or(0);

    // Rates come from each mode's fastest sweep (same move set, same
    // eval count per sweep), so a single noisy sweep cannot skew the
    // comparison in either direction.
    let delta_sweep_evals = delta_evals / reps;
    let full_rate = sweep_evals as f64 / full_best.as_secs_f64();
    let delta_rate = delta_sweep_evals as f64 / delta_best.as_secs_f64();
    let speedup = delta_rate / full_rate;
    println!(
        "  full:  {:.3}s total, best sweep {:.1}ms ({full_rate:.0} evals/s)",
        full_elapsed.as_secs_f64(),
        full_best.as_secs_f64() * 1e3
    );
    println!(
        "  delta: {:.3}s total, best sweep {:.1}ms ({delta_rate:.0} evals/s), \
         {delta_hits} scenario hits / {recomputed} recomputed",
        delta_elapsed.as_secs_f64(),
        delta_best.as_secs_f64() * 1e3
    );
    println!("  speedup: {speedup:.2}x, bit-identical objectives");

    let report = Value::Map(vec![
        ("environment".to_string(), Value::Str(format!("four_sites({apps})"))),
        ("seed".to_string(), Value::Int(i64::try_from(seed).unwrap_or(i64::MAX))),
        ("trial_moves".to_string(), Value::Int(i64::try_from(moves.len()).unwrap_or(i64::MAX))),
        ("reps".to_string(), Value::Int(i64::try_from(reps).unwrap_or(i64::MAX))),
        (
            "full".to_string(),
            Value::Map(vec![
                ("elapsed_secs".to_string(), Value::Float(full_elapsed.as_secs_f64())),
                ("best_sweep_secs".to_string(), Value::Float(full_best.as_secs_f64())),
                ("evals".to_string(), Value::Int(i64::try_from(full_evals).unwrap_or(i64::MAX))),
                ("evals_per_sec".to_string(), Value::Float(full_rate)),
            ]),
        ),
        (
            "delta".to_string(),
            Value::Map(vec![
                ("elapsed_secs".to_string(), Value::Float(delta_elapsed.as_secs_f64())),
                ("best_sweep_secs".to_string(), Value::Float(delta_best.as_secs_f64())),
                ("evals".to_string(), Value::Int(i64::try_from(delta_evals).unwrap_or(i64::MAX))),
                ("evals_per_sec".to_string(), Value::Float(delta_rate)),
                (
                    "eval.delta_hits".to_string(),
                    Value::Int(i64::try_from(delta_hits).unwrap_or(i64::MAX)),
                ),
                (
                    "eval.scenarios_recomputed".to_string(),
                    Value::Int(i64::try_from(recomputed).unwrap_or(i64::MAX)),
                ),
            ]),
        ),
        ("speedup".to_string(), Value::Float(speedup)),
        ("identical_results".to_string(), Value::Bool(true)),
    ]);
    let path = write_bench_json("incremental", &report).expect("write BENCH_incremental.json");
    println!("json written to {}", path.display());

    assert!(
        speedup >= 1.0,
        "delta evaluation ({delta_rate:.0} evals/s) must not be slower than full \
         re-evaluation ({full_rate:.0} evals/s)"
    );
}
