//! Regenerates Table 4: the design tool's solution for the peer-sites
//! case study. Set `DSD_CSV=<path>` to also write CSV.

use dsd_bench::{budget_from_env, seed_from_env};
use dsd_scenarios::experiments::{csv, table4};

fn main() {
    match table4::run(budget_from_env(), seed_from_env()) {
        Some(table) => {
            print!("{table}");
            if let Ok(path) = std::env::var("DSD_CSV") {
                std::fs::write(&path, csv::table4_csv(&table)).expect("write csv");
                println!("csv written to {path}");
            }
        }
        None => println!("no feasible design found within the budget"),
    }
}
