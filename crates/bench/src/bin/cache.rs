//! Measures the candidate-evaluation cache: solves the peer-sites
//! environment (four applications) with and without a cache, checks the
//! two runs are bit-identical, times a shared-cache parallel fan-out, and
//! writes the numbers to `BENCH_cache.json` (`DSD_BENCH_DIR` overrides
//! the output directory; `DSD_BUDGET` / `DSD_SEED` as usual).

use dsd_bench::{budget_from_env, env_u64, outcome_value, seed_from_env, write_bench_json};
use dsd_core::{parallel_solve, DesignSolver, EvalCache, DEFAULT_CACHE_CAPACITY};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Serialize, Value};

fn main() {
    let env = dsd_scenarios::environments::peer_sites_with(4);
    let budget = budget_from_env();
    let seed = seed_from_env();

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let uncached = DesignSolver::new(&env).solve(budget, &mut rng);

    // The cached run records into a metrics registry, so the report can
    // embed the hit ratio and eval-latency percentiles the registry saw
    // (recording never perturbs the search — asserted below).
    let recorder = dsd_obs::Recorder::new();
    let cache = EvalCache::new(DEFAULT_CACHE_CAPACITY);
    let cached = {
        let _guard = recorder.install();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DesignSolver::new(&env).with_cache(&cache).solve(budget, &mut rng)
    };

    let (a, b) = (uncached.best.as_ref(), cached.best.as_ref());
    assert_eq!(
        a.map(|c| c.assignments().clone()),
        b.map(|c| c.assignments().clone()),
        "cached search must pick the identical design"
    );
    assert_eq!(
        a.map(|c| c.cost().total()),
        b.map(|c| c.cost().total()),
        "cached search must report the identical cost"
    );
    assert_eq!(uncached.stats.nodes_evaluated, cached.stats.nodes_evaluated);

    let stats = cache.stats();
    println!("seed {seed}: identical best design with and without cache");
    println!(
        "  uncached: {:.3}s ({:.0} evals/s)",
        uncached.elapsed.as_secs_f64(),
        uncached.evals_per_sec()
    );
    println!(
        "  cached:   {:.3}s ({:.0} evals/s), {} hits / {} misses ({:.1}% hit rate)",
        cached.elapsed.as_secs_f64(),
        cached.evals_per_sec(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );

    let seeds: Vec<u64> = (1..=env_u64("DSD_SEEDS", 4)).collect();
    let parallel = parallel_solve(&env, budget, &seeds);
    let shared = parallel.cache.expect("parallel_solve attaches a cache");
    println!(
        "  parallel x{}: {:.3}s, shared cache {:.1}% hit rate ({} hits)",
        seeds.len(),
        parallel.elapsed.as_secs_f64(),
        shared.hit_rate() * 100.0,
        shared.hits
    );

    let snapshot = recorder.metrics_snapshot();
    let latency = snapshot.histogram("solver.eval_latency");
    let metrics = Value::Map(vec![
        (
            "cache_hit_ratio".to_string(),
            Value::Float(snapshot.gauges.get("cache.hit_ratio").copied().unwrap_or(0.0)),
        ),
        (
            "eval_latency_secs".to_string(),
            match latency {
                Some(h) => Value::Map(vec![
                    ("count".to_string(), Value::Int(i64::try_from(h.count).unwrap_or(i64::MAX))),
                    ("mean".to_string(), Value::Float(h.mean)),
                    ("p50".to_string(), Value::Float(h.p50)),
                    ("p90".to_string(), Value::Float(h.p90)),
                    ("p99".to_string(), Value::Float(h.p99)),
                    ("max".to_string(), Value::Float(h.max)),
                ]),
                None => Value::Null,
            },
        ),
        ("snapshot".to_string(), snapshot.serialize()),
    ]);
    if let Some(h) = latency {
        println!(
            "  eval latency: n={} p50={:.6}s p90={:.6}s p99={:.6}s max={:.6}s",
            h.count, h.p50, h.p90, h.p99, h.max
        );
    }

    let report = Value::Map(vec![
        ("environment".to_string(), Value::Str("peer_sites_with(4)".to_string())),
        ("seed".to_string(), Value::Int(i64::try_from(seed).unwrap_or(i64::MAX))),
        ("uncached".to_string(), outcome_value(&uncached)),
        ("cached".to_string(), outcome_value(&cached)),
        ("parallel_shared_cache".to_string(), outcome_value(&parallel)),
        ("metrics".to_string(), metrics),
        (
            "identical_results".to_string(),
            Value::Bool(true), // asserted above; reaching here means it held
        ),
    ]);
    let path = write_bench_json("cache", &report).expect("write BENCH_cache.json");
    println!("json written to {}", path.display());
}
