//! Regenerates Figure 4: heuristic scalability with application count on
//! four fully connected sites. `DSD_CSV=<path>` also writes CSV.

use dsd_bench::{budget_from_env, seed_from_env};
use dsd_scenarios::experiments::{csv, figure4};

fn main() {
    let counts = figure4::paper_app_counts();
    let fig = figure4::run(&counts, budget_from_env(), seed_from_env());
    print!("{fig}");
    if let Ok(path) = std::env::var("DSD_CSV") {
        std::fs::write(&path, csv::figure4_csv(&fig)).expect("write csv");
        println!("csv written to {path}");
    }
}
