//! Measures the observability overhead: solves the peer-sites
//! environment three ways — no recorder installed (the production
//! default), a disabled no-op recorder (every instrumentation site runs
//! its thread-local check and bails), and a fully active recorder — and
//! reports the wall-time deltas. The first two must be within noise of
//! each other (the ISSUE budget is <2%); all three must find the
//! bit-identical design, since recording never consumes randomness.
//! Also measures cost-attribution overhead: itemized penalty evaluation
//! (`annual_penalties_attributed`) vs the plain aggregate, on the
//! solved design — the itemized path must stay within 2% and reproduce
//! the aggregate bit-for-bit. And it measures the flight recorder the
//! same way: solves with an installed progress channel vs without must
//! stay within 2% of each other on bit-identical searches.
//!
//! The profiler rides the same measurements: its frames are ordinary
//! recorder instrumentation, so a profiling-enabled binary with no
//! recorder installed is exactly the no-op row — the <2% budget gates
//! that path, while active recording stays opt-in diagnostics (reported,
//! never budgeted) and the tree fold runs offline after the solve. The
//! span tree built from the active run must pass its sum invariant and
//! attribute ≥95% of root wall time to non-root nodes on the
//! four-sites(16) and fleet(64) environments.
//!
//! Writes `BENCH_obs.json` (`DSD_BENCH_DIR` overrides the directory;
//! `DSD_BUDGET` / `DSD_SEED` / `DSD_REPS` as usual).

use dsd_bench::{budget_from_env, env_u64, seed_from_env, write_bench_json};
use dsd_core::{Budget, DesignSolver, Environment};
use dsd_obs::{ProfileTree, ProgressChannel, Recorder, Stopwatch, PROFILE_SCHEMA_VERSION};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

fn solve_cost(env: &Environment, budget: Budget, seed: u64) -> Option<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    DesignSolver::new(env).solve(budget, &mut rng).best.map(|b| b.cost().total().as_f64())
}

/// Measures the itemized-attribution overhead on the solved design:
/// interleaved reps of the aggregate penalty evaluation vs the
/// attributed one. Returns `(aggregate_median, attributed_median,
/// overhead_fraction)` and asserts bit-identity of the totals.
fn attribution_overhead(
    env: &Environment,
    budget: Budget,
    seed: u64,
    reps: usize,
) -> (f64, f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best = DesignSolver::new(env).solve(budget, &mut rng).best.expect("feasible design");
    best.evaluate(env);
    let attribution = best.attribution(env);
    attribution.verify().expect("attribution reproduces the solved cost bit-for-bit");

    let protections = best.protections(env);
    let scenarios = env.failures.enumerate(best.primaries());
    let evaluator = dsd_recovery::Evaluator::new(&env.workloads, best.provision(), env.recovery);
    // Single evaluations are microseconds; time batches so the clock
    // resolution doesn't dominate.
    const BATCH: usize = 64;
    let (mut plain_t, mut attr_t) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        let started = Stopwatch::start();
        for _ in 0..BATCH {
            let (plain, _) = evaluator.annual_penalties(&protections, &scenarios);
            std::hint::black_box(plain);
        }
        plain_t.push(started.elapsed_secs());
        let started = Stopwatch::start();
        for _ in 0..BATCH {
            let (attributed, items) =
                evaluator.annual_penalties_attributed(&protections, &scenarios);
            std::hint::black_box((attributed, items));
        }
        attr_t.push(started.elapsed_secs());
    }
    let (plain, _) = evaluator.annual_penalties(&protections, &scenarios);
    let (attributed, items) = evaluator.annual_penalties_attributed(&protections, &scenarios);
    assert_eq!(
        plain.outage.as_f64().to_bits(),
        attributed.outage.as_f64().to_bits(),
        "attributed outage total must be bit-identical"
    );
    assert_eq!(
        plain.loss.as_f64().to_bits(),
        attributed.loss.as_f64().to_bits(),
        "attributed loss total must be bit-identical"
    );
    assert!(!items.is_empty(), "the solved design has penalty line items");
    let (plain_s, attr_s) = (median(plain_t), median(attr_t));
    (plain_s, attr_s, (attr_s - plain_s) / plain_s)
}

fn time_once(env: &Environment, budget: Budget, seed: u64, recorder: Option<&Recorder>) -> f64 {
    let started = Stopwatch::start();
    let _guard = recorder.map(Recorder::install);
    let _ = solve_cost(env, budget, seed);
    started.elapsed_secs()
}

/// Measures the flight-recorder (progress channel) overhead: interleaved
/// solves with and without an installed active channel. Asserts the two
/// modes find the bit-identical design — progress emission never
/// consumes randomness — and returns `(off_median, on_median,
/// overhead_fraction, events_per_run)`.
fn progress_overhead(
    env: &Environment,
    budget: Budget,
    seed: u64,
    reps: usize,
) -> (f64, f64, f64, usize) {
    let bare_cost = solve_cost(env, budget, seed);
    let channel = ProgressChannel::new();
    let on_cost = {
        let _g = channel.install();
        solve_cost(env, budget, seed)
    };
    assert_eq!(
        bare_cost.map(f64::to_bits),
        on_cost.map(f64::to_bits),
        "progress channel must not perturb the search"
    );
    let events = channel.poll().len();
    assert!(events > 0, "instrumented solve emits progress events");

    let timed = ProgressChannel::new();
    let (mut off_t, mut on_t) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        off_t.push(time_once(env, budget, seed, None));
        let started = Stopwatch::start();
        {
            let _g = timed.install();
            let _ = solve_cost(env, budget, seed);
        }
        on_t.push(started.elapsed_secs());
        // Drain between reps so queue growth never skews a later rep.
        let _ = timed.poll();
    }
    let (off_s, on_s) = (median(off_t), median(on_t));
    (off_s, on_s, (on_s - off_s) / off_s, events)
}

/// Solves `env` under a fresh active recorder and folds the recorded
/// span stream into a profile tree, asserting the containment invariant
/// holds. Returns `(attributed_fraction, node_count)`.
fn profile_attribution(env: &Environment, budget: Budget, seed: u64) -> (f64, usize) {
    let recorder = Recorder::new();
    {
        let _g = recorder.install();
        let _ = solve_cost(env, budget, seed);
    }
    let events = recorder.drain_events();
    let tree = ProfileTree::from_events(&events);
    tree.verify().expect("profile tree satisfies its sum invariant");
    (tree.attributed_fraction(), tree.rows().len())
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

fn main() {
    let env = dsd_scenarios::environments::peer_sites_with(4);
    let budget = budget_from_env();
    let seed = seed_from_env();
    let reps = env_u64("DSD_REPS", 5) as usize;

    // Correctness first: all three modes find the identical design.
    let bare_cost = solve_cost(&env, budget, seed);
    let disabled = Recorder::disabled();
    let noop_cost = {
        let _g = disabled.install();
        solve_cost(&env, budget, seed)
    };
    let active = Recorder::new();
    let active_cost = {
        let _g = active.install();
        solve_cost(&env, budget, seed)
    };
    assert_eq!(bare_cost, noop_cost, "no-op recorder must not perturb the search");
    assert_eq!(bare_cost, active_cost, "active recorder must not perturb the search");
    let events = active.drain_events().len();
    let series = active.metrics_snapshot().series_count();

    // Warm up, then interleave timed repetitions of the three modes so
    // clock drift and cache warmth hit every mode equally instead of
    // biasing whichever block ran last.
    let _ = solve_cost(&env, budget, seed);
    let disabled_timed = Recorder::disabled();
    let recording = Recorder::new();
    let (mut bare_t, mut noop_t, mut active_t) =
        (Vec::with_capacity(reps), Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        bare_t.push(time_once(&env, budget, seed, None));
        noop_t.push(time_once(&env, budget, seed, Some(&disabled_timed)));
        active_t.push(time_once(&env, budget, seed, Some(&recording)));
    }
    let (bare_s, noop_s, active_s) = (median(bare_t), median(noop_t), median(active_t));

    let noop_overhead = (noop_s - bare_s) / bare_s;
    let active_overhead = (active_s - bare_s) / bare_s;
    println!("seed {seed}, {reps} reps (median wall times):");
    println!("  uninstrumented:    {bare_s:.4}s");
    println!("  no-op recorder:    {noop_s:.4}s  ({:+.2}% vs bare)", noop_overhead * 100.0);
    println!("  active recorder:   {active_s:.4}s  ({:+.2}% vs bare)", active_overhead * 100.0);
    println!("  active run recorded {events} events, {series} metric series");
    let budget_ok = noop_overhead < 0.02;
    println!(
        "  no-op overhead budget (<2%): {}",
        if budget_ok { "within budget" } else { "EXCEEDED (noisy machine?)" }
    );

    let (plain_s, attr_s, attr_overhead) = attribution_overhead(&env, budget, seed, reps);
    let attr_ok = attr_overhead < 0.02;
    println!("attribution (itemized vs aggregate penalty evaluation, batches of 64):");
    println!("  aggregate:         {plain_s:.6}s");
    println!("  itemized:          {attr_s:.6}s  ({:+.2}% vs aggregate)", attr_overhead * 100.0);
    println!(
        "  attribution overhead budget (<2%): {}",
        if attr_ok { "within budget" } else { "EXCEEDED (noisy machine?)" }
    );

    let (prog_off_s, prog_on_s, prog_overhead, prog_events) =
        progress_overhead(&env, budget, seed, reps);
    let prog_ok = prog_overhead < 0.02;
    println!("flight recorder (progress channel enabled vs disabled, bit-identical searches):");
    println!("  channel off:       {prog_off_s:.4}s");
    println!("  channel on:        {prog_on_s:.4}s  ({:+.2}% vs off)", prog_overhead * 100.0);
    println!("  instrumented run emitted {prog_events} progress events");
    println!(
        "  progress overhead budget (<2%): {}",
        if prog_ok { "within budget" } else { "EXCEEDED (noisy machine?)" }
    );

    // Profiling frames compile down to a single thread-local check when
    // no recorder is installed, so a profiling-enabled binary in
    // production mode is the no-op row above — that is the path the <2%
    // budget gates. Recording for an actual profile costs the active
    // delta (reported, never budgeted: it is opt-in diagnostics), and
    // the fold itself runs offline, after the solve finishes.
    let profile_ok = budget_ok;
    let profile_events = recording.drain_events();
    let fold_started = Stopwatch::start();
    let tree = ProfileTree::from_events(&profile_events);
    let fold_secs = fold_started.elapsed_secs();
    tree.verify().expect("profile tree satisfies its sum invariant");
    let mut hot = tree.rows();
    hot.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let tree_total = tree.total_ns().max(1);
    let (four_attr, four_nodes) =
        profile_attribution(&dsd_scenarios::environments::four_sites(16), budget, seed);
    let fleet_env = dsd_scenarios::fleet::fleet(&dsd_scenarios::fleet::FleetParams::new(64));
    let (fleet_attr, fleet_nodes) = profile_attribution(&fleet_env, budget, seed);
    println!("profiler (span-tree fold over the active recorder's stream):");
    println!(
        "  frames disabled:   rides the no-op row ({:+.2}% vs bare), budget (<2%): {}",
        noop_overhead * 100.0,
        if profile_ok { "within budget" } else { "EXCEEDED (noisy machine?)" }
    );
    println!(
        "  offline fold:      {fold_secs:.6}s over {} events, {} nodes",
        profile_events.len(),
        tree.rows().len()
    );
    println!("  four_sites(16): {:.1}% attributed, {four_nodes} nodes", four_attr * 100.0);
    println!("  fleet(64):      {:.1}% attributed, {fleet_nodes} nodes", fleet_attr * 100.0);
    assert!(four_attr >= 0.95, "four_sites(16) attribution {four_attr:.3} below the 95% floor");
    assert!(fleet_attr >= 0.95, "fleet(64) attribution {fleet_attr:.3} below the 95% floor");

    #[allow(clippy::cast_precision_loss)]
    let top_nodes: Vec<(String, Value)> = hot
        .iter()
        .take(5)
        .enumerate()
        .map(|(i, row)| {
            (
                i.to_string(),
                Value::Map(vec![
                    ("path".to_string(), Value::Str(row.path.clone())),
                    (
                        "self_fraction".to_string(),
                        Value::Float(row.self_ns as f64 / tree_total as f64),
                    ),
                ]),
            )
        })
        .collect();
    let int = |v: usize| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
    let profile_section = Value::Map(vec![
        (
            "schema_version".to_string(),
            Value::Int(i64::try_from(PROFILE_SCHEMA_VERSION).unwrap_or(i64::MAX)),
        ),
        ("frames_noop_within_2pct".to_string(), Value::Bool(profile_ok)),
        ("fold_secs".to_string(), Value::Float(fold_secs)),
        ("verify_ok".to_string(), Value::Bool(true)),
        ("nodes".to_string(), int(hot.len())),
        ("four_sites16_attributed_fraction".to_string(), Value::Float(four_attr)),
        ("four_sites16_nodes".to_string(), int(four_nodes)),
        ("fleet64_attributed_fraction".to_string(), Value::Float(fleet_attr)),
        ("fleet64_nodes".to_string(), int(fleet_nodes)),
        ("top".to_string(), Value::Map(top_nodes)),
    ]);

    let report = Value::Map(vec![
        ("environment".to_string(), Value::Str("peer_sites_with(4)".to_string())),
        ("seed".to_string(), Value::Int(i64::try_from(seed).unwrap_or(i64::MAX))),
        ("reps".to_string(), Value::Int(i64::try_from(reps).unwrap_or(i64::MAX))),
        ("bare_median_secs".to_string(), Value::Float(bare_s)),
        ("noop_recorder_median_secs".to_string(), Value::Float(noop_s)),
        ("active_recorder_median_secs".to_string(), Value::Float(active_s)),
        ("noop_overhead_fraction".to_string(), Value::Float(noop_overhead)),
        ("active_overhead_fraction".to_string(), Value::Float(active_overhead)),
        ("noop_within_2pct".to_string(), Value::Bool(budget_ok)),
        ("aggregate_penalties_median_secs".to_string(), Value::Float(plain_s)),
        ("attributed_penalties_median_secs".to_string(), Value::Float(attr_s)),
        ("attribution_overhead_fraction".to_string(), Value::Float(attr_overhead)),
        ("attribution_within_2pct".to_string(), Value::Bool(attr_ok)),
        ("attribution_bit_identical".to_string(), Value::Bool(true)),
        ("progress_off_median_secs".to_string(), Value::Float(prog_off_s)),
        ("progress_on_median_secs".to_string(), Value::Float(prog_on_s)),
        ("progress_overhead_fraction".to_string(), Value::Float(prog_overhead)),
        ("progress_within_2pct".to_string(), Value::Bool(prog_ok)),
        ("progress_events".to_string(), Value::Int(i64::try_from(prog_events).unwrap_or(i64::MAX))),
        ("progress_bit_identical".to_string(), Value::Bool(true)),
        ("active_events".to_string(), Value::Int(i64::try_from(events).unwrap_or(i64::MAX))),
        ("metric_series".to_string(), Value::Int(i64::try_from(series).unwrap_or(i64::MAX))),
        ("identical_results".to_string(), Value::Bool(true)),
        ("profile".to_string(), profile_section),
    ]);
    let path = write_bench_json("obs", &report).expect("write BENCH_obs.json");
    println!("json written to {}", path.display());
}
