//! Regenerates Figure 3: cost comparison of the design tool, human
//! heuristic and random heuristic on the peer-sites case study.
//! `DSD_CSV=<path>` also writes CSV.

use dsd_bench::{budget_from_env, env_u64, seed_from_env};
use dsd_scenarios::experiments::{csv, figure3};

fn main() {
    let percentile_samples = env_u64("DSD_SAMPLES", 2_000) as usize;
    let fig = figure3::run(budget_from_env(), percentile_samples, seed_from_env());
    print!("{fig}");
    if let Ok(path) = std::env::var("DSD_CSV") {
        std::fs::write(&path, csv::figure3_csv(&fig)).expect("write csv");
        println!("csv written to {path}");
    }
}
