//! Regenerates Figure 2: the random-solution cost distribution of the
//! peer-sites environment. `DSD_SAMPLES` controls the sample count
//! (paper: ~10^8; default 20000); `DSD_CSV=<path>` also writes CSV.

use dsd_bench::{env_u64, seed_from_env};
use dsd_scenarios::experiments::{csv, figure2};

fn main() {
    let samples = env_u64("DSD_SAMPLES", 20_000) as usize;
    let bins = env_u64("DSD_BINS", 40) as usize;
    let fig = figure2::run(samples, bins, seed_from_env());
    print!("{fig}");
    if let Ok(path) = std::env::var("DSD_CSV") {
        std::fs::write(&path, csv::figure2_csv(&fig)).expect("write csv");
        println!("csv written to {path}");
    }
}
