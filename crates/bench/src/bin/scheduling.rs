//! Runs the recovery-scheduling policy study on the peer-sites design.

use dsd_bench::{budget_from_env, seed_from_env};
use dsd_scenarios::experiments::scheduling;

fn main() {
    match scheduling::run(budget_from_env(), seed_from_env()) {
        Some(study) => print!("{study}"),
        None => println!("no feasible design found within the budget"),
    }
}
