//! Paper-faithful Figure 3 variant: every heuristic gets the same
//! *wall-clock* budget (the paper gives each thirty minutes; default here
//! is 10 seconds, override with `DSD_SECONDS`). Unlike the iteration-based
//! `figure3` binary this is not bit-reproducible across machines.

use dsd_bench::{env_u64, seed_from_env};
use dsd_core::Budget;
use dsd_scenarios::experiments::figure3;
use std::time::Duration;

fn main() {
    let secs = env_u64("DSD_SECONDS", 10);
    let budget = Budget::wall_clock(Duration::from_secs(secs));
    print!("{}", figure3::run(budget, 2_000, seed_from_env()));
}
