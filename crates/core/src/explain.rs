//! Cost attribution and explainability (paper §3, Tables 4–6).
//!
//! The paper's contribution is an *explanation* of a dollar figure:
//! overall annual cost decomposed into amortized outlays plus
//! likelihood-weighted outage and recent-loss penalties per application
//! and failure scenario. [`CostAttribution`] materializes exactly that
//! decomposition for an evaluated [`Candidate`], with a hard guarantee:
//! folding the line items back together reproduces the solver's reported
//! cost **bit-for-bit**, on both the full and the incremental (delta)
//! evaluation paths.
//!
//! The guarantee holds by construction, not by tolerance:
//!
//! * outlay items come from `Provision::outlay_items`, whose in-order
//!   fold *is* the implementation of `purchase_outlay`;
//! * penalty items are recorded by the same accumulation code that
//!   produces [`PenaltySummary`], in the same scenario × app order, and
//!   store the very weighted values added to the summary;
//! * the delta path is bit-identical to the full oracle (the PR 3
//!   invariant), so a fresh attribution matches a delta-evaluated cost.
//!
//! [`CostAttribution::verify`] checks all of this and is exercised by
//! the oracle-equivalence property suite.

use serde::{Deserialize, Serialize};

use dsd_recovery::{Evaluator, PenaltyItem, ScenarioOutcomeCache};
use dsd_resources::{OutlayItem, OutlayKind};
use dsd_units::Dollars;
use dsd_workload::AppId;

use crate::candidate::{Candidate, CostBreakdown, PlacementOptions};
use crate::delta::Move;
use crate::env::Environment;

/// Full cost attribution of one evaluated candidate design: every dollar
/// of the objective traced back to a resource purchase or a
/// (application × failure scenario) penalty cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostAttribution {
    /// Itemized purchase outlays, in provision visit order.
    pub outlay_items: Vec<OutlayItem>,
    /// Annual vault media cost (not amortized; charged yearly).
    pub vault_media_annual: Dollars,
    /// Likelihood-weighted penalty items, in accumulation order.
    pub penalty_items: Vec<PenaltyItem>,
    /// The evaluated totals the items must reproduce.
    pub cost: CostBreakdown,
}

impl CostAttribution {
    /// In-order fold of the unamortized purchase items.
    #[must_use]
    pub fn purchase_total(&self) -> Dollars {
        let mut total = Dollars::ZERO;
        for item in &self.outlay_items {
            total += item.purchase;
        }
        total
    }

    /// Annual outlay rebuilt from the items: amortized purchase fold plus
    /// vault media. Bit-identical to `cost.outlay` (same operations in
    /// the same order as `Provision::annual_outlay`).
    #[must_use]
    pub fn outlay_annual(&self) -> Dollars {
        self.purchase_total().amortized_annual() + self.vault_media_annual
    }

    /// `(outage, loss)` totals rebuilt by folding the penalty items in
    /// recorded order. Bit-identical to `cost.penalties`.
    #[must_use]
    pub fn penalty_totals(&self) -> (Dollars, Dollars) {
        PenaltyItem::fold_totals(&self.penalty_items)
    }

    /// Overall annual cost rebuilt from the line items alone.
    /// Bit-identical to `cost.total()`.
    #[must_use]
    pub fn total(&self) -> Dollars {
        let (outage, loss) = self.penalty_totals();
        self.outlay_annual() + (outage + loss)
    }

    /// Per-application `(outage, loss)` folds, in item order — matches
    /// `cost.penalties.per_app` bit-for-bit.
    #[must_use]
    pub fn per_app_totals(&self) -> std::collections::BTreeMap<AppId, (Dollars, Dollars)> {
        let mut map = std::collections::BTreeMap::new();
        for item in &self.penalty_items {
            let entry = map.entry(item.app).or_insert((Dollars::ZERO, Dollars::ZERO));
            entry.0 += item.outage;
            entry.1 += item.loss;
        }
        map
    }

    /// Outlay totals grouped by resource kind (display aggregation; the
    /// bit-exact path is the ungrouped fold).
    #[must_use]
    pub fn outlay_by_kind(&self) -> Vec<(OutlayKind, Dollars, usize)> {
        let mut out: Vec<(OutlayKind, Dollars, usize)> = Vec::new();
        for item in &self.outlay_items {
            match out.iter_mut().find(|(k, _, _)| *k == item.kind) {
                Some((_, total, n)) => {
                    *total += item.purchase;
                    *n += 1;
                }
                None => out.push((item.kind, item.purchase, 1)),
            }
        }
        out
    }

    /// The `k` penalty items with the largest weighted contribution,
    /// ties broken by recording order.
    #[must_use]
    pub fn top_items(&self, k: usize) -> Vec<&PenaltyItem> {
        let mut items: Vec<&PenaltyItem> = self.penalty_items.iter().collect();
        items.sort_by(|a, b| {
            b.weighted_total()
                .as_f64()
                .partial_cmp(&a.weighted_total().as_f64())
                .expect("penalties are not NaN")
        });
        items.truncate(k);
        items
    }

    /// The `k` dominant scenarios for one application.
    #[must_use]
    pub fn top_items_for(&self, app: AppId, k: usize) -> Vec<&PenaltyItem> {
        let mut items: Vec<&PenaltyItem> =
            self.penalty_items.iter().filter(|i| i.app == app).collect();
        items.sort_by(|a, b| {
            b.weighted_total()
                .as_f64()
                .partial_cmp(&a.weighted_total().as_f64())
                .expect("penalties are not NaN")
        });
        items.truncate(k);
        items
    }

    /// Checks the bit-for-bit reproduction guarantee: every rebuilt
    /// total must equal the evaluated [`CostBreakdown`] exactly.
    ///
    /// # Errors
    ///
    /// A description of the first component whose fold does not match.
    pub fn verify(&self) -> Result<(), String> {
        let bits = |d: Dollars| d.as_f64().to_bits();
        if bits(self.outlay_annual()) != bits(self.cost.outlay) {
            return Err(format!(
                "outlay items fold to {} but the evaluated outlay is {}",
                self.outlay_annual().as_f64(),
                self.cost.outlay.as_f64()
            ));
        }
        let (outage, loss) = self.penalty_totals();
        if bits(outage) != bits(self.cost.penalties.outage) {
            return Err(format!(
                "penalty items fold to outage {} but the evaluated outage is {}",
                outage.as_f64(),
                self.cost.penalties.outage.as_f64()
            ));
        }
        if bits(loss) != bits(self.cost.penalties.loss) {
            return Err(format!(
                "penalty items fold to loss {} but the evaluated loss is {}",
                loss.as_f64(),
                self.cost.penalties.loss.as_f64()
            ));
        }
        let per_app = self.per_app_totals();
        if per_app.len() != self.cost.penalties.per_app.len() {
            return Err("per-app fold covers a different application set".to_string());
        }
        for (app, (o, l)) in &per_app {
            let (eo, el) = self.cost.penalties.per_app[app];
            if bits(*o) != bits(eo) || bits(*l) != bits(el) {
                return Err(format!("per-app fold for {app} does not match the evaluation"));
            }
        }
        if bits(self.total()) != bits(self.cost.total()) {
            return Err(format!(
                "line items fold to {} but the evaluated total is {}",
                self.total().as_f64(),
                self.cost.total().as_f64()
            ));
        }
        Ok(())
    }
}

impl Candidate {
    /// Builds the full cost attribution of this candidate. Evaluates the
    /// candidate first if needed; when a cost is already cached (from
    /// either the full or the delta path) that cost is attributed as-is,
    /// and the freshly recorded items reproduce it bit-for-bit.
    #[must_use]
    pub fn attribution(&mut self, env: &Environment) -> CostAttribution {
        self.evaluate(env);
        let cost = self.cost().clone();
        let protections = self.protections(env);
        let scenarios = env.failures.enumerate(self.primaries());
        let evaluator = Evaluator::new(&env.workloads, self.provision(), env.recovery);
        let (_, penalty_items) = evaluator.annual_penalties_attributed(&protections, &scenarios);
        CostAttribution {
            outlay_items: self.provision().outlay_items(),
            vault_media_annual: self.vault_media_annual(env),
            penalty_items,
            cost,
        }
    }
}

/// Marginal cost of one application's chosen protection technique
/// against its best alternative ("runner-up"), measured on the full
/// design objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueMarginal {
    /// The application.
    pub app: AppId,
    /// Name of the chosen technique.
    pub chosen: String,
    /// Objective score of the design as chosen.
    pub chosen_total: Dollars,
    /// Cheapest alternative technique, if any placement of one fits.
    pub runner_up: Option<RunnerUp>,
}

/// The best alternative technique found for an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerUp {
    /// Technique name.
    pub technique: String,
    /// Objective score of the design with the app switched to this
    /// technique (default configuration, best placement).
    pub total: Dollars,
    /// Signed `total - chosen_total` in dollars per year: what switching
    /// would cost (positive) or save (negative).
    pub marginal: f64,
}

/// Computes, for every assigned application, the marginal cost of its
/// chosen technique against the cheapest eligible alternative. Trials
/// are clone-free applied-and-undone [`Move`]s; the candidate is
/// restored bit-exactly afterwards.
#[must_use]
pub fn technique_marginals(
    env: &Environment,
    candidate: &mut Candidate,
    cache: &mut ScenarioOutcomeCache,
) -> Vec<TechniqueMarginal> {
    candidate.evaluate_with(env, cache);
    let chosen_total = env.score(candidate.cost());
    let assignments: Vec<(AppId, crate::candidate::AppAssignment)> =
        candidate.assignments().iter().map(|(&app, a)| (app, *a)).collect();
    let mut out = Vec::with_capacity(assignments.len());
    for (app, assignment) in assignments {
        let class = env.workloads[app].class_with(&env.thresholds);
        let alternatives: Vec<_> = env
            .catalog
            .eligible_for(class)
            .filter(|(tid, _)| *tid != assignment.technique)
            .map(|(tid, t)| (tid, t.name.clone(), t.default_config()))
            .collect();
        let mut runner: Option<RunnerUp> = None;
        for (tid, name, config) in alternatives {
            for placement in PlacementOptions::enumerate(env, tid) {
                let mv = Move::Reassign { app, technique: tid, config, placement };
                let Ok((cost, undo)) = candidate.evaluate_delta(env, &mv, cache) else {
                    continue;
                };
                let total = env.score(&cost);
                candidate.undo_move(undo);
                if runner.as_ref().is_none_or(|r| total.as_f64() < r.total.as_f64()) {
                    runner = Some(RunnerUp {
                        technique: name.clone(),
                        total,
                        marginal: total.as_f64() - chosen_total.as_f64(),
                    });
                }
            }
        }
        out.push(TechniqueMarginal {
            app,
            chosen: env.catalog[assignment.technique].name.clone(),
            chosen_total,
            runner_up: runner,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_solver::{ConfigurationSolver, Thoroughness};
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use std::sync::Arc;

    fn env() -> Environment {
        let sites = vec![
            Site::new(0, "P1")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
            Site::new(1, "S1")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
        ];
        let topology = Arc::new(Topology::fully_connected(sites, NetworkSpec::high()));
        Environment::new(
            WorkloadSet::scaled_paper_mix(2),
            topology,
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    fn solved(env: &Environment) -> Candidate {
        let mut candidate = Candidate::empty(env);
        for app in env.workloads.iter() {
            let class = app.class_with(&env.thresholds);
            let (tid, technique) =
                env.catalog.eligible_for(class).next().expect("eligible technique exists");
            let config = technique.default_config();
            let placed = PlacementOptions::enumerate(env, tid)
                .iter()
                .any(|&p| candidate.try_assign(env, app.id, tid, config, p).is_ok());
            assert!(placed, "fixture must be assignable");
        }
        let solver = ConfigurationSolver::new(env);
        solver.complete(&mut candidate, Thoroughness::Quick);
        candidate
    }

    #[test]
    fn attribution_reproduces_the_evaluation_bit_for_bit() {
        let env = env();
        let mut candidate = solved(&env);
        candidate.evaluate(&env);
        let attribution = candidate.attribution(&env);
        attribution.verify().expect("attribution must fold back exactly");
        assert!(!attribution.outlay_items.is_empty());
        assert!(!attribution.penalty_items.is_empty());
        assert_eq!(
            attribution.total().as_f64().to_bits(),
            candidate.cost().total().as_f64().to_bits()
        );
    }

    #[test]
    fn top_items_rank_by_weighted_contribution() {
        let env = env();
        let mut candidate = solved(&env);
        let attribution = candidate.attribution(&env);
        let top = attribution.top_items(3);
        assert!(top.len() <= 3);
        for pair in top.windows(2) {
            assert!(pair[0].weighted_total().as_f64() >= pair[1].weighted_total().as_f64());
        }
        let app = attribution.penalty_items[0].app;
        for item in attribution.top_items_for(app, 2) {
            assert_eq!(item.app, app);
        }
    }

    #[test]
    fn technique_marginals_restore_the_candidate_bitwise() {
        let env = env();
        let mut candidate = solved(&env);
        let mut cache = ScenarioOutcomeCache::new();
        let before = candidate.evaluate_with(&env, &mut cache).clone();
        let marginals = technique_marginals(&env, &mut candidate, &mut cache);
        assert_eq!(marginals.len(), candidate.assignments().len());
        let after = candidate.evaluate_with(&env, &mut cache).clone();
        assert_eq!(
            before.total().as_f64().to_bits(),
            after.total().as_f64().to_bits(),
            "trials must leave the candidate bit-exactly restored"
        );
        for m in &marginals {
            if let Some(r) = &m.runner_up {
                assert!(
                    r.marginal >= 0.0 || r.total.as_f64() < m.chosen_total.as_f64(),
                    "marginal sign must match the totals"
                );
            }
        }
        candidate.attribution(&env).verify().expect("still attributable after trials");
    }
}
