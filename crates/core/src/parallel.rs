//! Parallel multi-restart driver.
//!
//! The paper's search restarts many times within a wall-clock budget;
//! independent restarts are embarrassingly parallel, so we run one solver
//! per seed on scoped threads and keep the global best. All workers share
//! one sharded [`EvalCache`], so a completion computed on any seed is
//! replayed for free when another seed's walk reaches the same state —
//! without changing any worker's result (completions are deterministic,
//! see [`crate::eval_cache`]).

use std::sync::Mutex;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::budget::Budget;
use crate::design_solver::{DesignSolver, SolveOutcome};
use crate::env::Environment;
use crate::eval_cache::{EvalCache, DEFAULT_CACHE_CAPACITY};

/// Runs one [`DesignSolver`] per seed in parallel, each with its own
/// budget, and returns the cheapest design found across all runs. Stats
/// are summed; elapsed is the wall time of the whole fan-out. Workers
/// share a fresh evaluation cache of [`DEFAULT_CACHE_CAPACITY`] entries.
///
/// # Panics
///
/// Panics if `seeds` is empty or a worker thread panics.
#[must_use]
pub fn parallel_solve(env: &Environment, budget: Budget, seeds: &[u64]) -> SolveOutcome {
    let cache = EvalCache::new(DEFAULT_CACHE_CAPACITY);
    parallel_solve_with_cache(env, budget, seeds, &cache)
}

/// [`parallel_solve`] with a caller-provided shared cache, so completions
/// can also be reused across successive invocations (e.g. budget sweeps
/// over the same environment).
///
/// # Panics
///
/// Panics if `seeds` is empty or a worker thread panics.
#[must_use]
pub fn parallel_solve_with_cache(
    env: &Environment,
    budget: Budget,
    seeds: &[u64],
    cache: &EvalCache,
) -> SolveOutcome {
    assert!(!seeds.is_empty(), "need at least one seed");
    let started = dsd_obs::Stopwatch::start();
    let mut fanout_span = dsd_obs::span("solver.parallel", "solver");
    fanout_span.arg("workers", seeds.len());
    dsd_obs::gauge("solver.workers", seeds.len() as f64);
    dsd_obs::progress::phase_entered("parallel");
    // Propagate the caller's recorder and progress channel into the
    // workers: each installs its own clone, so event buffers stay
    // per-thread and every worker's progress lands in one shared queue
    // under its own lane (dense worker index per install).
    let recorder = dsd_obs::current();
    let channel = dsd_obs::progress::current();
    // Each worker records which seed produced its outcome so the merge
    // can break equal-cost ties by lowest seed — the winner is then a
    // pure function of the seed set, independent of thread scheduling.
    let best = Mutex::new(None::<(u64, SolveOutcome)>);

    std::thread::scope(|scope| {
        for &seed in seeds {
            let best = &best;
            let recorder = recorder.clone();
            let channel = channel.clone();
            scope.spawn(move || {
                let _obs_guard = recorder.as_ref().map(dsd_obs::Recorder::install);
                let _progress_guard = channel.as_ref().map(dsd_obs::ProgressChannel::install);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let outcome = DesignSolver::new(env).with_cache(cache).solve(budget, &mut rng);
                let mut slot = best.lock().expect("best lock poisoned");
                match slot.as_mut() {
                    None => *slot = Some((seed, outcome)),
                    Some((held_seed, current)) => {
                        let improved = match (&outcome.best, &current.best) {
                            (Some(new), Some(old)) => {
                                let (new_score, old_score) =
                                    (env.score(new.cost()), env.score(old.cost()));
                                new_score < old_score
                                    || (new_score == old_score && seed < *held_seed)
                            }
                            (Some(_), None) => true,
                            (None, None) => seed < *held_seed,
                            (None, Some(_)) => false,
                        };
                        let mut stats = current.stats;
                        stats.merge(&outcome.stats);
                        if improved {
                            *held_seed = seed;
                            *current = outcome;
                        }
                        current.stats = stats;
                    }
                }
            });
        }
    });

    let (_, mut outcome) =
        best.into_inner().expect("best lock poisoned").expect("at least one seed ran");
    outcome.elapsed = started.elapsed();
    outcome.cache = Some(cache.stats());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use std::sync::Arc;

    fn env() -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn parallel_beats_or_matches_each_single_seed() {
        let e = env();
        let budget = Budget::iterations(10);
        let par = parallel_solve(&e, budget, &[1, 2, 3]);
        let par_cost = par.best.as_ref().unwrap().cost().total();
        for seed in [1u64, 2, 3] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let single = DesignSolver::new(&e).solve(budget, &mut rng);
            if let Some(best) = single.best {
                assert!(par_cost <= best.cost().total());
            }
        }
        // Stats summed over the three runs.
        assert!(par.stats.greedy_builds >= 3);
    }

    #[test]
    fn ties_break_by_lowest_seed_regardless_of_scheduling() {
        let e = env();
        let budget = Budget::iterations(10);
        // Duplicated seeds force exact cost ties; the merge must then be
        // deterministic across runs even though thread finish order is
        // not. Shuffled seed order must not change the winner either.
        let a = parallel_solve(&e, budget, &[5, 5, 5, 5]);
        let b = parallel_solve(&e, budget, &[5, 5, 5, 5]);
        assert_eq!(
            a.best.as_ref().map(|c| c.cost().total()),
            b.best.as_ref().map(|c| c.cost().total())
        );
        let fwd = parallel_solve(&e, budget, &[1, 2, 3]);
        let rev = parallel_solve(&e, budget, &[3, 2, 1]);
        assert_eq!(
            fwd.best.as_ref().map(|c| c.cost().total()),
            rev.best.as_ref().map(|c| c.cost().total())
        );
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let e = env();
        let _ = parallel_solve(&e, Budget::iterations(1), &[]);
    }

    #[derive(Debug)]
    struct _AssertSend(std::marker::PhantomData<Environment>);
}
