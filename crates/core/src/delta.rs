//! The move taxonomy and dependency-slice digests backing incremental
//! (delta) candidate evaluation.
//!
//! A [`crate::Candidate`] evaluation prices every failure scenario, but a
//! scenario's outcome depends only on a narrow *dependency slice*: the
//! assignments of the applications its [`FailureScope`] affects, and the
//! bandwidth state of the devices those applications' placements touch
//! (recovery streams draw the failed application's own allocation plus
//! each device's spare, which is total minus everyone's allocations).
//! [`scenario_digest`] hashes exactly that slice; the solver keys a
//! [`dsd_recovery::ScenarioOutcomeCache`] on it so a trial move only
//! pays to re-schedule the scenarios it intersects.
//!
//! [`Move`] enumerates the solver's elementary trials. Applying one via
//! `Candidate::apply_move` yields a [`MoveUndo`] token that snapshots
//! the exact prior state of everything the move may touch;
//! `Candidate::undo_move` restores those bits verbatim rather than
//! reversing the arithmetic, so trial/undo sequences never drift from a
//! freshly built candidate (the oracle-equivalence guarantee, DESIGN.md
//! §6f).

use std::hash::{Hash, Hasher};

use dsd_failure::{FailureScenario, FailureScope};
use dsd_protection::{TechniqueConfig, TechniqueId};
use dsd_recovery::{Placement, ScenarioDigest};
use dsd_resources::{ArrayRef, DeviceRef, ProvisionCheckpoint, RouteId, TapeRef};
use dsd_workload::AppId;

use crate::candidate::{AppAssignment, Candidate, CostBreakdown};

/// One elementary solver trial: reprotect an application (covering both
/// technique/placement changes and pure configuration changes) or add a
/// unit of capacity to one provisioned device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Move {
    /// Give `app` the given technique/config/placement, releasing its
    /// current assignment (if any) first.
    Reassign {
        /// The application to (re)protect.
        app: AppId,
        /// The protection technique to apply.
        technique: TechniqueId,
        /// The technique configuration parameters.
        config: TechniqueConfig,
        /// The resource placement (route resolved during application).
        placement: Placement,
    },
    /// Add `extra` links to an active route.
    AddLinks {
        /// The route to widen.
        route: RouteId,
        /// Number of links to add.
        extra: u32,
    },
    /// Add `extra` drives to a provisioned tape library.
    AddTapeDrives {
        /// The library to extend.
        tape: TapeRef,
        /// Number of drives to add.
        extra: u32,
    },
    /// Add `extra` capacity/bandwidth units (disks) to a provisioned
    /// array.
    AddArrayUnits {
        /// The array to extend.
        array: ArrayRef,
        /// Number of units to add.
        extra: u32,
    },
}

impl Move {
    /// Short taxonomy label of the move's kind, used for per-move-type
    /// convergence diagnostics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Move::Reassign { .. } => "reassign",
            Move::AddLinks { .. } => "add_links",
            Move::AddTapeDrives { .. } => "add_tape_drives",
            Move::AddArrayUnits { .. } => "add_array_units",
        }
    }

    /// Metric counter name for trials of this move kind. The solvers bump
    /// it once per applied-and-evaluated trial; paired with
    /// [`Move::accept_counter`] it yields per-move-type acceptance rates.
    #[must_use]
    pub fn trial_counter(&self) -> &'static str {
        match self {
            Move::Reassign { .. } => "solver.trials.reassign",
            Move::AddLinks { .. } => "solver.trials.add_links",
            Move::AddTapeDrives { .. } => "solver.trials.add_tape_drives",
            Move::AddArrayUnits { .. } => "solver.trials.add_array_units",
        }
    }

    /// Metric counter name for accepted (committed) moves of this kind.
    #[must_use]
    pub fn accept_counter(&self) -> &'static str {
        match self {
            Move::Reassign { .. } => "solver.accepted.reassign",
            Move::AddLinks { .. } => "solver.accepted.add_links",
            Move::AddTapeDrives { .. } => "solver.accepted.add_tape_drives",
            Move::AddArrayUnits { .. } => "solver.accepted.add_array_units",
        }
    }

    /// Profiler counter name for applications of this move kind
    /// (`Candidate::apply_move`).
    #[must_use]
    pub fn apply_counter(&self) -> &'static str {
        match self {
            Move::Reassign { .. } => "eval.apply.reassign",
            Move::AddLinks { .. } => "eval.apply.add_links",
            Move::AddTapeDrives { .. } => "eval.apply.add_tape_drives",
            Move::AddArrayUnits { .. } => "eval.apply.add_array_units",
        }
    }

    /// Profiler counter name for reverted applications of this move kind
    /// (`Candidate::undo_move`). Carried on the undo token, since the
    /// token is all the undo path sees.
    #[must_use]
    pub fn undo_counter(&self) -> &'static str {
        match self {
            Move::Reassign { .. } => "eval.undo.reassign",
            Move::AddLinks { .. } => "eval.undo.add_links",
            Move::AddTapeDrives { .. } => "eval.undo.add_tape_drives",
            Move::AddArrayUnits { .. } => "eval.undo.add_array_units",
        }
    }

    /// Profiler counter name for delta evaluations of this move kind
    /// (`Candidate::evaluate_delta`).
    #[must_use]
    pub fn delta_counter(&self) -> &'static str {
        match self {
            Move::Reassign { .. } => "eval.delta.reassign",
            Move::AddLinks { .. } => "eval.delta.add_links",
            Move::AddTapeDrives { .. } => "eval.delta.add_tape_drives",
            Move::AddArrayUnits { .. } => "eval.delta.add_array_units",
        }
    }
}

/// The devices a move mutated — consulted by undo to re-mark the
/// evaluation memo's stale sets (the restore changes those devices'
/// state right back).
#[derive(Debug, Default)]
pub(crate) struct TouchedDevices {
    pub(crate) arrays: Vec<ArrayRef>,
    pub(crate) tapes: Vec<TapeRef>,
    pub(crate) routes: Vec<RouteId>,
}

/// Undo token returned by `Candidate::apply_move`: a bit-exact snapshot
/// of every piece of state the move could touch, taken before it ran.
/// Consumed by `Candidate::undo_move`.
#[derive(Debug)]
pub struct MoveUndo {
    pub(crate) checkpoint: ProvisionCheckpoint,
    pub(crate) assignment: Option<(AppId, Option<AppAssignment>)>,
    pub(crate) cost: Option<CostBreakdown>,
    pub(crate) touched: TouchedDevices,
    /// Profiler counter bumped when this token is consumed by
    /// `Candidate::undo_move` (see [`Move::undo_counter`]).
    pub(crate) undo_counter: &'static str,
}

// Digest construction is on the solver's hottest path: every trial
// evaluation digests every scenario. Two choices keep it cheap enough to
// beat full re-evaluation: (1) each application's slice is hashed ONCE
// per evaluation into a two-lane fingerprint, and a scenario's digest is
// an order-dependent combine of the fingerprints of the apps its scope
// affects — O(apps) hashing amortized over all scenarios instead of
// O(scenarios x apps); (2) the lanes use a multiply-xor-rotate mixer
// (FxHash-style) rather than SipHash — digests never cross a trust
// boundary, so DoS-resistant hashing buys nothing here. The lanes use
// distinct seeds, odd multipliers, and rotations, so a silent double
// collision within a scope's 4-way cache set stays negligible. Mixing is
// sequential and non-commutative, so app order matters (it is fixed:
// assignment order).
const LANE_A_SEED: u64 = 0xD1B5_4A32_D192_ED03;
const LANE_B_SEED: u64 = 0x2D35_8DCC_AA6C_78A5;
const LANE_A_MUL: u64 = 0x517C_C1B7_2722_0A95;
const LANE_B_MUL: u64 = 0x2545_F491_4F6C_DD1D;

#[inline]
fn mix_a(acc: u64, v: u64) -> u64 {
    (acc.rotate_left(5) ^ v).wrapping_mul(LANE_A_MUL)
}

#[inline]
fn mix_b(acc: u64, v: u64) -> u64 {
    (acc.rotate_left(7) ^ v).wrapping_mul(LANE_B_MUL)
}

/// A two-lane [`Hasher`] over the multiply-xor mixers. `finish` returns
/// lane A; lane B is read directly by the fingerprint builder.
struct TwoLane {
    a: u64,
    b: u64,
}

impl TwoLane {
    fn new() -> Self {
        TwoLane { a: LANE_A_SEED, b: LANE_B_SEED }
    }

    #[inline]
    fn mix(&mut self, v: u64) {
        self.a = mix_a(self.a, v);
        self.b = mix_b(self.b, v);
    }
}

impl Hasher for TwoLane {
    fn finish(&self) -> u64 {
        self.a
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
        self.mix(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// One application's precomputed dependency-slice fingerprint: its full
/// assignment plus the exact bandwidth state (total, allocated, own
/// share) of every device its placement touches — everything a
/// scenario's outcome can depend on, independent of which scope selects
/// the app.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AppSliceFingerprint {
    pub(crate) app: AppId,
    pub(crate) primary: ArrayRef,
    lanes: (u64, u64),
}

/// Hashes one application's dependency slice against the current
/// provision state.
pub(crate) fn fingerprint_app(
    provision: &dsd_resources::Provision,
    app: AppId,
    assignment: &AppAssignment,
) -> AppSliceFingerprint {
    let mut h = TwoLane::new();
    app.hash(&mut h);
    assignment.hash(&mut h);
    let p = &assignment.placement;
    let mut devices = [Some(DeviceRef::Array(p.primary)), None, None, None];
    devices[1] = p.mirror.map(DeviceRef::Array);
    devices[2] = p.route.map(DeviceRef::Route);
    devices[3] = p.tape.map(DeviceRef::Tape);
    for d in devices.into_iter().flatten() {
        // Total and allocated bandwidth determine the device's spare
        // (other applications' shares included via the allocated total);
        // the app's own share completes the recovery stream rate. Exact
        // f64 bits, so equal digest => equal outcome bits.
        h.mix(provision.device_bandwidth(d).as_f64().to_bits());
        h.mix(provision.device_alloc_bandwidth(d).as_f64().to_bits());
        h.mix(provision.app_alloc_bandwidth_on(app, d).as_f64().to_bits());
    }
    AppSliceFingerprint { app, primary: p.primary, lanes: (h.a, h.b) }
}

/// Hashes every assigned application's dependency slice once, in app
/// order.
fn app_fingerprints(candidate: &Candidate) -> Vec<AppSliceFingerprint> {
    let provision = candidate.provision();
    candidate
        .assignments()
        .iter()
        .map(|(&app, assignment)| fingerprint_app(provision, app, assignment))
        .collect()
}

/// Combines the fingerprints of the applications `scope` affects, in app
/// order, into the scope's slice digest.
pub(crate) fn combine(
    scope: &FailureScope,
    fingerprints: &[AppSliceFingerprint],
) -> ScenarioDigest {
    let mut a = LANE_A_SEED;
    let mut b = LANE_B_SEED;
    for f in fingerprints {
        if scope.affects_app(f.app, f.primary) {
            a = mix_a(a, f.lanes.0);
            b = mix_b(b, f.lanes.1);
        }
    }
    ScenarioDigest(a, b)
}

/// Digest of `scope`'s dependency slice in `candidate`: for each
/// affected application (in app order), its full assignment plus the
/// exact bandwidth state (total, allocated, own share) of every device
/// its placement touches. Two candidates with equal digests produce
/// bit-identical [`dsd_recovery::ScenarioOutcome`]s for the scope under
/// the same environment.
#[must_use]
pub fn scenario_digest(candidate: &Candidate, scope: &FailureScope) -> ScenarioDigest {
    combine(scope, &app_fingerprints(candidate))
}

/// [`scenario_digest`] for every scenario in order — the digest vector
/// `Evaluator::annual_penalties_cached` consumes. Applications are
/// fingerprinted once and shared across all scenarios.
#[must_use]
pub fn scenario_digests(
    candidate: &Candidate,
    scenarios: &[FailureScenario],
) -> Vec<ScenarioDigest> {
    let fingerprints = app_fingerprints(candidate);
    scenarios.iter().map(|s| combine(&s.scope, &fingerprints)).collect()
}
