//! Memoized candidate-evaluation cache.
//!
//! [`ConfigurationSolver::complete`](crate::ConfigurationSolver::complete)
//! is the hot path of the whole search: every node the design solver
//! touches is completed (configuration descent + resource addition) and
//! evaluated against every failure scenario. The search revisits states
//! constantly — refit walks circle back to earlier designs, restarts
//! rebuild the same greedy assignments, and parallel workers explore
//! overlapping neighborhoods — so completion is memoizable.
//!
//! Completion is a *deterministic* function of
//!
//! 1. the candidate's full state — the per-application assignment vector
//!    (technique, configuration, placement) **and** the provision
//!    (resource additions persist on devices even after the applications
//!    that triggered them are reassigned),
//! 2. the requested [`Thoroughness`], and
//! 3. the solver's resource-addition limits,
//!
//! and it never consumes randomness. [`CandidateKey`] fingerprints all
//! three, so replaying a cached completion (the resulting candidate state
//! plus its cost) is *bit-identical* to re-running the solver: cached and
//! uncached searches produce the same best design, the same costs, and
//! the same search trajectory.
//!
//! The cache is a bounded LRU, sharded so that
//! [`parallel_solve`](crate::parallel_solve) workers can share one cache
//! with low contention. Hit/miss/eviction counters feed the solver's
//! instrumentation ([`SolveStats`](crate::SolveStats)).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Serialize, Value};

use crate::candidate::{Candidate, CostBreakdown};
use crate::config_solver::Thoroughness;

/// Default entry capacity used by [`parallel_solve`](crate::parallel_solve).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

const DEFAULT_SHARDS: usize = 8;

/// Stable fingerprint of everything a completion depends on: the
/// assignment vector, the provision state, the thoroughness namespace,
/// and the resource-addition limits.
///
/// Two 64-bit hashes (assignments and provision are digested separately,
/// with distinct tags) make accidental collisions — which would silently
/// splice a wrong design into the search — negligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidateKey {
    assignments: u64,
    provision: u64,
    thoroughness: Thoroughness,
    limits: (usize, usize),
}

impl CandidateKey {
    /// Fingerprints `candidate` for a completion at `thoroughness` under
    /// the given `(quick, full)` addition limits.
    #[must_use]
    pub fn of(candidate: &Candidate, thoroughness: Thoroughness, limits: (usize, usize)) -> Self {
        let mut a = DefaultHasher::new();
        a.write_u8(0xA5);
        for (app, assignment) in candidate.assignments() {
            app.0.hash(&mut a);
            assignment.hash(&mut a);
        }

        let mut p = DefaultHasher::new();
        p.write_u8(0x5A);
        hash_value(&candidate.provision().serialize(), &mut p);

        CandidateKey { assignments: a.finish(), provision: p.finish(), thoroughness, limits }
    }

    fn shard_index(&self, shards: usize) -> usize {
        ((self.assignments ^ self.provision.rotate_left(17)) % shards as u64) as usize
    }
}

/// Structurally hashes a serialized value tree. Floats hash by bit
/// pattern: the solver's arithmetic is deterministic, so equal states
/// have equal bits.
fn hash_value(value: &Value, h: &mut impl Hasher) {
    match value {
        Value::Null => h.write_u8(0),
        Value::Bool(b) => {
            h.write_u8(1);
            h.write_u8(u8::from(*b));
        }
        Value::Int(i) => {
            h.write_u8(2);
            h.write_i64(*i);
        }
        Value::Float(f) => {
            h.write_u8(3);
            h.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            h.write_u8(4);
            h.write(s.as_bytes());
            h.write_u8(0xFF);
        }
        Value::Seq(items) => {
            h.write_u8(5);
            h.write_usize(items.len());
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Map(entries) => {
            h.write_u8(6);
            h.write_usize(entries.len());
            for (k, v) in entries {
                h.write(k.as_bytes());
                h.write_u8(0xFF);
                hash_value(v, h);
            }
        }
    }
}

/// Counter snapshot of a cache's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries inserted over the cache's lifetime.
    pub inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`; zero when no lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    stamp: u64,
    candidate: Candidate,
    cost: CostBreakdown,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CandidateKey, Entry>,
}

/// Bounded, sharded LRU cache of completed candidates, safe to share
/// across solver restarts and worker threads.
pub struct EvalCache {
    shards: Box<[Mutex<Shard>]>,
    shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

impl EvalCache {
    /// A cache holding at most `capacity` completions (rounded up to a
    /// multiple of the shard count).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (minimum 1). Total capacity
    /// is split evenly; each shard holds at least one entry.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        EvalCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Maximum number of resident entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Current number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// True when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a completed candidate; refreshes its LRU stamp on hit.
    #[must_use]
    pub fn lookup(&self, key: &CandidateKey) -> Option<(Candidate, CostBreakdown)> {
        // Shard-probe frame: the observed latency includes the lock
        // wait, so contention between portfolio workers shows up as a
        // fat tail in `eval_cache.probe_latency`. The stopwatch only
        // runs when a recorder is listening.
        let probe = dsd_obs::enabled().then(dsd_obs::Stopwatch::start);
        let mut shard =
            self.shards[key.shard_index(self.shards.len())].lock().expect("cache shard poisoned");
        if let Some(probe) = probe {
            dsd_obs::observe("eval_cache.probe_latency", probe.elapsed_secs());
        }
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                dsd_obs::add("cache.hits", 1);
                Some((entry.candidate.clone(), entry.cost.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                dsd_obs::add("cache.misses", 1);
                None
            }
        }
    }

    /// Stores a completed candidate, evicting the least recently used
    /// entry of the shard when it is full.
    pub fn insert(&self, key: CandidateKey, candidate: Candidate, cost: CostBreakdown) {
        let mut shard =
            self.shards[key.shard_index(self.shards.len())].lock().expect("cache shard poisoned");
        if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                dsd_obs::add("cache.evictions", 1);
            }
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.map.insert(key, Entry { stamp, candidate, cost });
        self.inserts.fetch_add(1, Ordering::Relaxed);
        dsd_obs::add("cache.inserts", 1);
    }

    /// Occupancy of each shard, in shard order.
    #[must_use]
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).collect()
    }

    /// Publishes one `eval_cache.shard_occupancy.<i>` gauge per shard
    /// into the installed recorder, so `dsd obs summary` and the
    /// profile report can surface shard imbalance. A no-op when no
    /// enabled recorder is installed; never consumes randomness.
    pub fn publish_occupancy(&self) {
        if !dsd_obs::enabled() {
            return;
        }
        let Some(recorder) = dsd_obs::current() else { return };
        for (i, len) in self.shard_occupancy().into_iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            recorder.metrics().gauge(&format!("eval_cache.shard_occupancy.{i}")).set(len as f64);
        }
    }

    /// Lifetime counters plus current occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::PlacementOptions;
    use crate::env::Environment;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::{AppId, WorkloadSet};
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    fn assigned(env: &Environment) -> Candidate {
        let mut c = Candidate::empty(env);
        for app in env.workloads.iter() {
            let class = app.class_with(&env.thresholds);
            let (tid, technique) =
                env.catalog.eligible_for(class).next().expect("eligible technique");
            let config = technique.default_config();
            let placed = PlacementOptions::enumerate(env, tid)
                .iter()
                .any(|&p| c.try_assign(env, app.id, tid, config, p).is_ok());
            assert!(placed);
        }
        c
    }

    #[test]
    fn equal_states_produce_equal_keys() {
        let e = env(2);
        let c1 = assigned(&e);
        let c2 = c1.clone();
        assert_eq!(
            CandidateKey::of(&c1, Thoroughness::Quick, (4, 32)),
            CandidateKey::of(&c2, Thoroughness::Quick, (4, 32)),
        );
    }

    #[test]
    fn thoroughness_and_limits_are_separate_namespaces() {
        let e = env(2);
        let c = assigned(&e);
        let quick = CandidateKey::of(&c, Thoroughness::Quick, (4, 32));
        let full = CandidateKey::of(&c, Thoroughness::Full, (4, 32));
        let other_limits = CandidateKey::of(&c, Thoroughness::Quick, (0, 0));
        assert_ne!(quick, full);
        assert_ne!(quick, other_limits);
    }

    #[test]
    fn provision_changes_change_the_key() {
        let e = env(2);
        let base = assigned(&e);
        let key = CandidateKey::of(&base, Thoroughness::Quick, (4, 32));
        let mut extra = base.clone();
        let array = *extra.provision().provisioned_arrays().first().expect("array");
        extra.provision_mut().add_extra_array_units(array, 1).expect("extra unit");
        assert_ne!(key, CandidateKey::of(&extra, Thoroughness::Quick, (4, 32)));
    }

    #[test]
    fn removed_app_changes_the_key() {
        let e = env(2);
        let base = assigned(&e);
        let key = CandidateKey::of(&base, Thoroughness::Quick, (4, 32));
        let mut smaller = base.clone();
        smaller.remove_app(AppId(0));
        assert_ne!(key, CandidateKey::of(&smaller, Thoroughness::Quick, (4, 32)));
    }

    #[test]
    fn lookup_roundtrips_and_counts() {
        let e = env(2);
        let mut c = assigned(&e);
        let cost = c.evaluate(&e).clone();
        let cache = EvalCache::new(8);
        let key = CandidateKey::of(&c, Thoroughness::Quick, (4, 32));
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, c.clone(), cost.clone());
        let (cached, cached_cost) = cache.lookup(&key).expect("hit");
        assert_eq!(cached_cost, cost);
        assert_eq!(cached.assignments(), c.assignments());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_respects_capacity_and_lru_order() {
        let e = env(1);
        let mut c = assigned(&e);
        let cost = c.evaluate(&e).clone();
        // Single shard so the LRU order is fully observable.
        let cache = EvalCache::with_shards(2, 1);
        let keys: Vec<CandidateKey> = [(1, 1), (2, 2), (3, 3)]
            .iter()
            .map(|&(q, f)| CandidateKey::of(&c, Thoroughness::Quick, (q, f)))
            .collect();
        cache.insert(keys[0], c.clone(), cost.clone());
        cache.insert(keys[1], c.clone(), cost.clone());
        // Refresh keys[0] so keys[1] is now the least recently used.
        assert!(cache.lookup(&keys[0]).is_some());
        cache.insert(keys[2], c.clone(), cost.clone());
        assert!(cache.len() <= cache.capacity());
        assert!(cache.lookup(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&keys[0]).is_some());
        assert!(cache.lookup(&keys[2]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }
}
