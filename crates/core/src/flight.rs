//! Flight-recorder glue: what the solvers share to emit progress.
//!
//! Every solver and heuristic reports into the [`dsd_obs::progress`]
//! channel through a [`FlightPlan`], which owns the one piece of state
//! progress events need beyond raw counters: the relaxation lower bound
//! (PR-6 certificates) that turns an incumbent cost into a gap
//! percentage. The bound is computed once per solve, *only when a
//! channel is actually listening*, and its computation is deterministic
//! arithmetic — no randomness is consumed, so instrumented and
//! uninstrumented searches stay bit-identical.

use std::time::Duration;

use dsd_obs::progress;
use dsd_units::Dollars;

use crate::bounds::{Certificate, LowerBound};
use crate::env::Environment;

/// Per-solve progress-emission context. Constructing one is free when no
/// enabled progress channel is installed on the current thread.
#[derive(Debug, Default)]
pub(crate) struct FlightPlan {
    bound: Option<LowerBound>,
}

impl FlightPlan {
    /// Prepares emission for one solve: fetches the certificate lower
    /// bound iff a progress channel is listening (so gap percentages in
    /// incumbent events bit-match a later [`crate::bounds::Certificate`]
    /// over the same environment). The bound is memoized on the
    /// environment, so repeated instrumented solves pay for it once.
    pub(crate) fn new(env: &Environment) -> Self {
        let bound = progress::enabled().then(|| env.certified_lower_bound().clone());
        FlightPlan { bound }
    }

    /// Gap to the bound for a cost, percent — exactly
    /// `Certificate::new(bound, cost).gap_pct`.
    pub(crate) fn gap_pct(&self, cost: Dollars) -> Option<f64> {
        self.bound.as_ref().map(|lb| Certificate::new(lb, cost).gap_pct)
    }

    /// Emits an incumbent-improved event.
    pub(crate) fn incumbent(&self, cost: Dollars, evals: u64) {
        if progress::enabled() {
            progress::incumbent_improved(cost.as_f64(), self.gap_pct(cost), evals);
        }
    }

    /// Emits the final done event.
    pub(crate) fn done(&self, cost: Option<Dollars>, evals: u64) {
        if progress::enabled() {
            let gap = cost.and_then(|c| self.gap_pct(c));
            progress::done(cost.map(Dollars::as_f64), gap, evals);
        }
    }
}

/// Emits a worker heartbeat from raw run counters. The throughput
/// division only happens when someone is listening.
pub(crate) fn heartbeat(evals: u64, elapsed: Duration, cache_hit_rate: f64) {
    if progress::enabled() {
        let evals_per_sec = evals as f64 / elapsed.as_secs_f64().max(1e-9);
        progress::worker_heartbeat(evals, evals_per_sec, cache_hit_rate);
    }
}
