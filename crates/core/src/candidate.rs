//! Candidate designs: assignments + provisioned resources + cached cost.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_protection::{Demands, TechniqueConfig, TechniqueId};
use dsd_recovery::{AppProtection, Evaluator, PenaltySummary, Placement, ScenarioOutcomeCache};
use dsd_resources::{ArrayRef, Provision, ProvisionCheckpoint, ResourceError, RouteId, TapeRef};
use dsd_units::{Dollars, HOURS_PER_YEAR};
use dsd_workload::AppId;

use std::collections::BTreeSet;

use dsd_failure::{FailureScenario, FailureScope};
use dsd_recovery::ScenarioDigest;

use crate::delta::{AppSliceFingerprint, Move, MoveUndo, TouchedDevices};
use crate::env::Environment;

/// One application's protection decisions within a candidate design.
#[derive(Debug, Clone, Copy, PartialEq, Hash, Serialize, Deserialize)]
pub struct AppAssignment {
    /// Chosen data protection technique.
    pub technique: TechniqueId,
    /// Chosen configuration parameters.
    pub config: TechniqueConfig,
    /// Chosen resource placement.
    pub placement: Placement,
}

/// The two cost components of a solution (paper §2.5).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Amortized annual outlay: devices, links, compute, facilities, and
    /// vault media consumables.
    pub outlay: Dollars,
    /// Expected annual penalties.
    pub penalties: PenaltySummary,
}

impl CostBreakdown {
    /// Overall annual cost: outlays plus expected penalties.
    #[must_use]
    pub fn total(&self) -> Dollars {
        self.outlay + self.penalties.total()
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outlay {} + outage {} + loss {} = {}",
            self.outlay,
            self.penalties.outage,
            self.penalties.loss,
            self.total()
        )
    }
}

/// Enumerates the placement skeletons available to a technique in an
/// environment: every primary array slot, crossed with every mirror array
/// at a *different* site reachable by a route (when the technique
/// mirrors), with backups going to the primary site's first tape library.
#[derive(Debug, Clone)]
pub struct PlacementOptions;

impl PlacementOptions {
    /// All structurally feasible placements for `technique` in `env`.
    /// Placements are feasible in shape only; capacity/bandwidth fit is
    /// checked by [`Candidate::try_assign`].
    #[must_use]
    pub fn enumerate(env: &Environment, technique: TechniqueId) -> Vec<Placement> {
        let t = &env.catalog[technique];
        let mut out = Vec::new();
        for site in env.topology.sites() {
            for slot in 0..site.array_slots.len() {
                let primary = ArrayRef { site: site.id, slot };
                let tape = if t.has_backup() {
                    if site.tape_slots.is_empty() {
                        continue; // backups need a library at the primary site
                    }
                    Some(TapeRef::first(site.id))
                } else {
                    None
                };
                if t.has_mirror() {
                    for msite in env.topology.sites() {
                        if msite.id == site.id
                            || env.topology.route_between(site.id, msite.id).is_none()
                        {
                            continue;
                        }
                        for mslot in 0..msite.array_slots.len() {
                            let mirror = ArrayRef { site: msite.id, slot: mslot };
                            out.push(Placement {
                                primary,
                                mirror: Some(mirror),
                                tape,
                                route: env.topology.route_between(site.id, msite.id),
                                failover_site: t.is_failover().then_some(msite.id),
                            });
                        }
                    }
                } else {
                    out.push(Placement {
                        primary,
                        mirror: None,
                        tape,
                        route: None,
                        failover_site: None,
                    });
                }
            }
        }
        out
    }
}

/// Incrementally maintained evaluation context. Rebuilding protections,
/// the scenario list, and every dependency-slice fingerprint from
/// scratch costs more than re-scheduling the few scenarios a move
/// actually dirties, so the mutators mark precisely what they touched
/// and [`Candidate::evaluate_with`] refreshes only that. The memo is
/// advisory: the uncached oracle ([`Candidate::evaluate`]) never reads
/// it, and a cleared memo (fresh or cloned candidates) just means a full
/// rebuild on the next cached evaluation.
#[derive(Debug, Default)]
struct EvalMemo {
    /// One entry per assignment, in app order. Empty until the first
    /// cached evaluation.
    protections: Vec<AppProtection>,
    /// One fingerprint per assignment, parallel to `protections`.
    fingerprints: Vec<AppSliceFingerprint>,
    /// Failure scenarios for the current primary placements.
    scenarios: Vec<FailureScenario>,
    /// Per-scenario digest vector, parallel to `scenarios`. Persistent
    /// across evaluations: a digest is recombined only when an
    /// application in the scenario's failure domain went dirty (see
    /// [`Candidate::evaluate_with`]), so an evaluation after a move
    /// touches only the shard of scenarios the move intersects.
    digests: Vec<ScenarioDigest>,
    /// Apps whose assignment changed: protection AND fingerprint entries
    /// must be recomputed.
    stale_assignments: BTreeSet<AppId>,
    /// Apps whose fingerprint must be recomputed because a device their
    /// placement touches changed state (their protection entry is a
    /// function of the assignment alone and stays valid).
    stale_fingerprints: BTreeSet<AppId>,
    /// A primary placement changed — re-enumerate scenarios.
    scenarios_stale: bool,
    /// The assignment set itself changed (or unknown mutations happened):
    /// rebuild everything.
    shape_stale: bool,
}

impl EvalMemo {
    fn stale() -> Self {
        EvalMemo { shape_stale: true, ..EvalMemo::default() }
    }
}

/// What [`Candidate::refresh_memo`] had to do, telling the digest layer
/// how much recombination work remains.
enum MemoRefresh {
    /// Protections, fingerprints, or the scenario list were rebuilt —
    /// every scenario digest must be recombined.
    Rebuilt,
    /// Only the listed applications' slice fingerprints changed (their
    /// primaries did not — a primary change re-enumerates scenarios and
    /// reports [`MemoRefresh::Rebuilt`]), so only scenarios whose failure
    /// domain contains one of them need their digest recombined.
    Dirty(Vec<(AppId, ArrayRef)>),
}

/// A (possibly partial) candidate design: per-application assignments plus
/// the provisioned infrastructure backing them. The design and
/// configuration solvers explore the design graph by applying and undoing
/// [`Move`]s in place (paper §3.1); cloning remains available for
/// keeping independent copies (refit siblings, the eval cache).
#[derive(Debug)]
pub struct Candidate {
    provision: Provision,
    assignments: BTreeMap<AppId, AppAssignment>,
    cost: Option<CostBreakdown>,
    memo: EvalMemo,
}

impl Clone for Candidate {
    /// Deep copy. Counted under the `eval.candidate_clones` obs series so
    /// tests can assert the solver's trial loops stay clone-free. The
    /// evaluation memo is not copied — the clone rebuilds it on its
    /// first cached evaluation.
    fn clone(&self) -> Self {
        dsd_obs::add("eval.candidate_clones", 1);
        Candidate {
            provision: self.provision.clone(),
            assignments: self.assignments.clone(),
            cost: self.cost.clone(),
            memo: EvalMemo::stale(),
        }
    }
}

impl Candidate {
    /// An empty candidate over the environment's topology.
    #[must_use]
    pub fn empty(env: &Environment) -> Self {
        Candidate {
            provision: Provision::new(env.topology.clone()),
            assignments: BTreeMap::new(),
            cost: None,
            memo: EvalMemo::stale(),
        }
    }

    /// The provisioned infrastructure.
    #[must_use]
    pub fn provision(&self) -> &Provision {
        &self.provision
    }

    /// Mutable access to the provision for deliberate over-provisioning
    /// (the configuration solver's resource-addition loop). Invalidates
    /// the cached cost.
    pub fn provision_mut(&mut self) -> &mut Provision {
        self.cost = None;
        self.memo.shape_stale = true;
        &mut self.provision
    }

    /// The per-application assignments.
    #[must_use]
    pub fn assignments(&self) -> &BTreeMap<AppId, AppAssignment> {
        &self.assignments
    }

    /// The assignment of one application, if made.
    #[must_use]
    pub fn assignment(&self, app: AppId) -> Option<&AppAssignment> {
        self.assignments.get(&app)
    }

    /// Number of assigned applications.
    #[must_use]
    pub fn assigned_count(&self) -> usize {
        self.assignments.len()
    }

    /// True if every application in the environment is assigned.
    #[must_use]
    pub fn is_complete(&self, env: &Environment) -> bool {
        self.assignments.len() == env.workloads.len()
    }

    /// Applications not yet assigned, in id order.
    #[must_use]
    pub fn unassigned(&self, env: &Environment) -> Vec<AppId> {
        env.workloads.ids().filter(|id| !self.assignments.contains_key(id)).collect()
    }

    /// Tries to assign `app` the given technique/config/placement,
    /// allocating all demanded resources.
    ///
    /// # Errors
    ///
    /// Any [`ResourceError`] if a demanded allocation does not fit; the
    /// candidate is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `app` is already assigned (remove it first) or the
    /// placement shape doesn't match the technique.
    pub fn try_assign(
        &mut self,
        env: &Environment,
        app: AppId,
        technique: TechniqueId,
        config: TechniqueConfig,
        placement: Placement,
    ) -> Result<(), ResourceError> {
        assert!(
            !self.assignments.contains_key(&app),
            "application {app} is already assigned; remove it before reassigning"
        );
        let t = &env.catalog[technique];
        assert!(
            placement.consistent_with(t),
            "placement shape does not match technique {}",
            t.name
        );
        // Snapshot everything the allocation may touch; a failed step
        // restores those bits exactly instead of cloning the provision.
        let checkpoint = self.placement_checkpoint(env, app, &placement);
        match self.alloc_assignment(env, app, technique, config, placement) {
            Ok(placement) => {
                self.assignments.insert(app, AppAssignment { technique, config, placement });
                self.cost = None;
                self.memo.shape_stale = true;
                Ok(())
            }
            Err(e) => {
                self.provision.restore(checkpoint);
                Err(e)
            }
        }
    }

    /// Snapshot of every provision state a prospective assignment of
    /// `app` at `placement` could mutate: the placement's devices (route
    /// resolved from the topology when not yet known), the primary and
    /// failover compute, and `app`'s ledger entry.
    fn placement_checkpoint(
        &self,
        env: &Environment,
        app: AppId,
        placement: &Placement,
    ) -> ProvisionCheckpoint {
        let mut arrays = vec![placement.primary];
        if let Some(m) = placement.mirror {
            arrays.push(m);
        }
        let tapes: Vec<TapeRef> = placement.tape.into_iter().collect();
        let mut routes: Vec<RouteId> = placement.route.into_iter().collect();
        if routes.is_empty() {
            if let Some(m) = placement.mirror {
                if let Some(r) = env.topology.route_between(placement.primary.site, m.site) {
                    routes.push(r);
                }
            }
        }
        let mut sites = vec![placement.primary.site];
        if let Some(s) = placement.failover_site {
            sites.push(s);
        }
        self.provision.checkpoint(Some(app), &arrays, &tapes, &routes, &sites)
    }

    /// Performs the allocation sequence of one assignment directly on the
    /// provision, in the fixed order primary array → primary compute →
    /// mirror array → network → tape → failover spares. On error the
    /// provision is left partially mutated — the caller restores its
    /// checkpoint. Returns the placement with its route resolved.
    fn alloc_assignment(
        &mut self,
        env: &Environment,
        app: AppId,
        technique: TechniqueId,
        config: TechniqueConfig,
        mut placement: Placement,
    ) -> Result<Placement, ResourceError> {
        let t = &env.catalog[technique];
        let workload = &env.workloads[app];
        let demands = Demands::compute(workload, t, &config, &env.sizing);

        self.provision.alloc_array(
            app,
            placement.primary,
            demands.primary_capacity,
            demands.primary_bandwidth,
        )?;
        self.provision.alloc_compute(app, placement.primary.site, 1)?;
        if let Some(mirror) = placement.mirror {
            self.provision.alloc_array(
                app,
                mirror,
                demands.mirror_capacity,
                demands.mirror_bandwidth,
            )?;
            let route = self.provision.alloc_network(
                app,
                placement.primary.site,
                mirror.site,
                demands.network_bandwidth,
            )?;
            placement.route = Some(route);
        }
        if let Some(tape) = placement.tape {
            self.provision.alloc_tape(app, tape, demands.tape_capacity, demands.tape_bandwidth)?;
        }
        if let Some(failover_site) = placement.failover_site {
            self.provision.alloc_failover_spare(
                app,
                failover_site,
                env.sizing.failover_spare_ratio,
            )?;
        }
        Ok(placement)
    }

    /// Applies one solver [`Move`] in place, returning an undo token
    /// snapshotting the exact prior state of everything the move
    /// touched. [`Candidate::undo_move`] restores those bits verbatim,
    /// so a trial/undo pair leaves the candidate bit-identical to before
    /// (no floating-point drift from reversing arithmetic).
    ///
    /// # Errors
    ///
    /// Any [`ResourceError`] when an allocation does not fit; the
    /// candidate is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if a [`Move::Reassign`] placement shape doesn't match its
    /// technique.
    pub fn apply_move(&mut self, env: &Environment, mv: &Move) -> Result<MoveUndo, ResourceError> {
        let undo = self.apply_move_inner(env, mv);
        if undo.is_ok() {
            // Per-move-kind profiler frame; one thread-local counter
            // bump, nothing when no recorder is installed.
            dsd_obs::add(mv.apply_counter(), 1);
        }
        undo
    }

    fn apply_move_inner(
        &mut self,
        env: &Environment,
        mv: &Move,
    ) -> Result<MoveUndo, ResourceError> {
        match *mv {
            Move::Reassign { app, technique, config, placement } => {
                let t = &env.catalog[technique];
                assert!(
                    placement.consistent_with(t),
                    "placement shape does not match technique {}",
                    t.name
                );
                let prev = self.assignments.get(&app).copied();
                // Checkpoint the union of the current footprint (from the
                // ledger — robust to any allocation history) and the new
                // placement's devices.
                let fp = self.provision.app_footprint(app);
                let mut arrays = fp.arrays;
                arrays.push(placement.primary);
                if let Some(m) = placement.mirror {
                    arrays.push(m);
                }
                let mut tapes = fp.tapes;
                if let Some(tp) = placement.tape {
                    tapes.push(tp);
                }
                let mut routes = fp.routes;
                if let Some(r) = placement.route {
                    routes.push(r);
                } else if let Some(m) = placement.mirror {
                    if let Some(r) = env.topology.route_between(placement.primary.site, m.site) {
                        routes.push(r);
                    }
                }
                let mut sites = fp.sites;
                sites.push(placement.primary.site);
                if let Some(s) = placement.failover_site {
                    sites.push(s);
                }
                let checkpoint =
                    self.provision.checkpoint(Some(app), &arrays, &tapes, &routes, &sites);
                if prev.is_some() {
                    self.assignments.remove(&app);
                    self.provision.remove_app(app);
                }
                match self.alloc_assignment(env, app, technique, config, placement) {
                    Ok(placement) => {
                        let touched = TouchedDevices { arrays, tapes, routes };
                        mark_apps_touching(&self.assignments, &mut self.memo, &touched);
                        self.memo.stale_assignments.insert(app);
                        match prev {
                            None => self.memo.shape_stale = true,
                            Some(p) if p.placement.primary != placement.primary => {
                                self.memo.scenarios_stale = true;
                            }
                            Some(_) => {}
                        }
                        self.assignments
                            .insert(app, AppAssignment { technique, config, placement });
                        Ok(MoveUndo {
                            checkpoint,
                            assignment: Some((app, prev)),
                            cost: self.cost.take(),
                            touched,
                            undo_counter: mv.undo_counter(),
                        })
                    }
                    Err(e) => {
                        self.provision.restore(checkpoint);
                        if let Some(prev) = prev {
                            self.assignments.insert(app, prev);
                        }
                        Err(e)
                    }
                }
            }
            Move::AddLinks { route, extra } => {
                let checkpoint = self.provision.checkpoint(None, &[], &[], &[route], &[]);
                self.provision.add_extra_links(route, extra)?;
                let touched = TouchedDevices { routes: vec![route], ..TouchedDevices::default() };
                mark_apps_touching(&self.assignments, &mut self.memo, &touched);
                Ok(MoveUndo {
                    checkpoint,
                    assignment: None,
                    cost: self.cost.take(),
                    touched,
                    undo_counter: mv.undo_counter(),
                })
            }
            Move::AddTapeDrives { tape, extra } => {
                let checkpoint = self.provision.checkpoint(None, &[], &[tape], &[], &[]);
                self.provision.add_extra_tape_drives(tape, extra)?;
                let touched = TouchedDevices { tapes: vec![tape], ..TouchedDevices::default() };
                mark_apps_touching(&self.assignments, &mut self.memo, &touched);
                Ok(MoveUndo {
                    checkpoint,
                    assignment: None,
                    cost: self.cost.take(),
                    touched,
                    undo_counter: mv.undo_counter(),
                })
            }
            Move::AddArrayUnits { array, extra } => {
                let checkpoint = self.provision.checkpoint(None, &[array], &[], &[], &[]);
                self.provision.add_extra_array_units(array, extra)?;
                let touched = TouchedDevices { arrays: vec![array], ..TouchedDevices::default() };
                mark_apps_touching(&self.assignments, &mut self.memo, &touched);
                Ok(MoveUndo {
                    checkpoint,
                    assignment: None,
                    cost: self.cost.take(),
                    touched,
                    undo_counter: mv.undo_counter(),
                })
            }
        }
    }

    /// Reverts a move applied by [`Candidate::apply_move`], restoring
    /// the snapshotted provision state, assignment, and cached cost
    /// bit-for-bit.
    pub fn undo_move(&mut self, undo: MoveUndo) {
        dsd_obs::add(undo.undo_counter, 1);
        // The restore flips the touched devices' state right back, so the
        // same apps that went stale on apply go stale again on undo
        // (only the moved app's own assignment differs between the two
        // states, and it is marked explicitly).
        mark_apps_touching(&self.assignments, &mut self.memo, &undo.touched);
        self.provision.restore(undo.checkpoint);
        if let Some((app, prev)) = undo.assignment {
            self.memo.stale_assignments.insert(app);
            let current = match prev {
                Some(a) => self.assignments.insert(app, a),
                None => {
                    self.memo.shape_stale = true;
                    self.assignments.remove(&app)
                }
            };
            match (current, prev) {
                (Some(c), Some(p)) if c.placement.primary != p.placement.primary => {
                    self.memo.scenarios_stale = true;
                }
                (None, Some(_)) => self.memo.shape_stale = true,
                _ => {}
            }
        }
        self.cost = undo.cost;
    }

    /// Removes `app`'s assignment and releases its resources
    /// (reconfiguration step 1, paper §3.1.3). No-op if unassigned.
    pub fn remove_app(&mut self, app: AppId) {
        if self.assignments.remove(&app).is_some() {
            self.provision.remove_app(app);
            self.cost = None;
            self.memo.shape_stale = true;
        }
    }

    /// The evaluator inputs for the current assignments.
    #[must_use]
    pub fn protections(&self, env: &Environment) -> Vec<AppProtection> {
        self.assignments
            .iter()
            .map(|(&app, a)| AppProtection {
                app,
                technique: env.catalog[a.technique].clone(),
                config: a.config,
                placement: a.placement,
            })
            .collect()
    }

    /// Each assigned application's primary placement, for failure
    /// scenario enumeration.
    pub fn primaries(&self) -> impl Iterator<Item = (AppId, ArrayRef)> + '_ {
        self.assignments.iter().map(|(&app, a)| (app, a.placement.primary))
    }

    /// Annual cost of vault media consumables: cartridges shipped offsite
    /// every vault cycle (priced at the tape library's per-cartridge
    /// cost).
    #[must_use]
    pub fn vault_media_annual(&self, env: &Environment) -> Dollars {
        let mut total = Dollars::ZERO;
        for (&app, a) in &self.assignments {
            let t = &env.catalog[a.technique];
            let (Some(chain), Some(tape)) = (t.backup, a.placement.tape) else {
                continue;
            };
            if !chain.vault {
                continue;
            }
            let spec = &env.topology.site(tape.site).tape_slots[tape.slot];
            let cartridges = env.workloads[app].capacity().units_of(spec.capacity_per_unit);
            let shipments_per_year = HOURS_PER_YEAR / chain.vault_cycle.as_hours();
            total += spec.cost_per_capacity_unit * (f64::from(cartridges) * shipments_per_year);
        }
        total
    }

    /// Exhaustive structural self-check, for tests and debugging: every
    /// assignment's placement must match its technique's shape, every
    /// referenced device must be instantiated, and the provision's
    /// allocation ledger must list exactly the assigned applications.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self, env: &Environment) -> Result<(), String> {
        for (app, a) in &self.assignments {
            let technique = &env.catalog[a.technique];
            if !a.placement.consistent_with(technique) {
                return Err(format!("{app}: placement does not match {}", technique.name));
            }
            if self.provision.array(a.placement.primary).is_none() {
                return Err(format!("{app}: primary {} not instantiated", a.placement.primary));
            }
            if let Some(m) = a.placement.mirror {
                if self.provision.array(m).is_none() {
                    return Err(format!("{app}: mirror {m} not instantiated"));
                }
            }
            if let Some(t) = a.placement.tape {
                if self.provision.tape(t).is_none() {
                    return Err(format!("{app}: tape {t} not instantiated"));
                }
            }
            if let Some(route) = a.placement.route {
                let link = self.provision.link(route);
                if link.links + link.extra_links == 0 {
                    return Err(format!("{app}: route {route} carries no links"));
                }
            }
        }
        let ledgered: Vec<AppId> = self.provision.allocated_apps().collect();
        let assigned: Vec<AppId> = self.assignments.keys().copied().collect();
        if ledgered != assigned {
            return Err(format!("ledger {ledgered:?} does not match assignments {assigned:?}"));
        }
        Ok(())
    }

    /// Evaluates (and caches) the candidate's cost: amortized outlay plus
    /// likelihood-weighted expected penalties over all failure scenarios.
    pub fn evaluate(&mut self, env: &Environment) -> &CostBreakdown {
        if self.cost.is_none() {
            let protections = self.protections(env);
            let scenarios = env.failures.enumerate(self.primaries());
            let evaluator = Evaluator::new(&env.workloads, &self.provision, env.recovery);
            let (penalties, _) = evaluator.annual_penalties(&protections, &scenarios);
            let outlay = self.provision.annual_outlay() + self.vault_media_annual(env);
            self.cost = Some(CostBreakdown { outlay, penalties });
        }
        self.cost.as_ref().expect("just computed")
    }

    /// [`Candidate::evaluate`] with scope-keyed scenario memoization:
    /// scenarios whose dependency-slice digest is unchanged since a
    /// previous evaluation replay their cached outcome instead of being
    /// re-scheduled. Bit-identical to the uncached oracle (the cached
    /// path accumulates penalties through the same code), provided
    /// `cache` has only ever been used with this environment.
    pub fn evaluate_with(
        &mut self,
        env: &Environment,
        cache: &mut ScenarioOutcomeCache,
    ) -> &CostBreakdown {
        if self.cost.is_none() {
            let refresh = self.refresh_memo(env);
            let EvalMemo { protections, fingerprints, scenarios, digests, .. } = &mut self.memo;
            // Failure-domain partitioning: recombine a scenario's digest
            // only when an application in its failure domain went dirty.
            // In the `Dirty` path no primary moved, so scope membership
            // is unchanged and every clean scenario's digest is still
            // exact — a move prices only the shard it touches.
            match refresh {
                _ if digests.len() != scenarios.len() => {
                    digests.clear();
                    digests.extend(
                        scenarios.iter().map(|s| crate::delta::combine(&s.scope, fingerprints)),
                    );
                }
                MemoRefresh::Rebuilt => {
                    digests.clear();
                    digests.extend(
                        scenarios.iter().map(|s| crate::delta::combine(&s.scope, fingerprints)),
                    );
                }
                MemoRefresh::Dirty(dirty) if dirty.is_empty() => {}
                MemoRefresh::Dirty(dirty) => {
                    // Per-failure-scope recombination counts feed the
                    // profiler: which failure domain a move's cost
                    // concentrates in is a tuning signal.
                    let (mut by_scope, mut recombined) = ([0u64; 3], 0u64);
                    for (digest, s) in digests.iter_mut().zip(scenarios.iter()) {
                        if dirty.iter().any(|&(app, primary)| s.scope.affects_app(app, primary)) {
                            *digest = crate::delta::combine(&s.scope, fingerprints);
                            recombined += 1;
                            by_scope[match s.scope {
                                FailureScope::DataObject { .. } => 0,
                                FailureScope::DiskArray { .. } => 1,
                                FailureScope::SiteDisaster { .. } => 2,
                            }] += 1;
                        }
                    }
                    dsd_obs::add("eval.digests_recombined", recombined);
                    dsd_obs::add("eval.digests_reused", scenarios.len() as u64 - recombined);
                    dsd_obs::add("eval.recombine.data_object", by_scope[0]);
                    dsd_obs::add("eval.recombine.disk_array", by_scope[1]);
                    dsd_obs::add("eval.recombine.site_disaster", by_scope[2]);
                }
            }
            let evaluator = Evaluator::new(&env.workloads, &self.provision, env.recovery);
            let penalties =
                evaluator.annual_penalties_cached_totals(protections, scenarios, digests, cache);
            let outlay = self.provision.annual_outlay() + self.vault_media_annual(env);
            self.cost = Some(CostBreakdown { outlay, penalties });
        }
        self.cost.as_ref().expect("just computed")
    }

    /// Brings the evaluation memo up to date with the candidate's state,
    /// rebuilding only the entries the mutators marked stale. The
    /// refreshed memo is bit-equivalent to a from-scratch build: each
    /// entry is a pure function of the current assignment and provision
    /// state, recomputed by the same code either way. Returns which
    /// applications' slices actually changed so the digest layer can
    /// limit recombination to the failure domains they belong to.
    fn refresh_memo(&mut self, env: &Environment) -> MemoRefresh {
        let memo = &mut self.memo;
        if memo.shape_stale || memo.protections.len() != self.assignments.len() {
            memo.protections.clear();
            memo.fingerprints.clear();
            for (&app, a) in &self.assignments {
                memo.protections.push(AppProtection {
                    app,
                    technique: env.catalog[a.technique].clone(),
                    config: a.config,
                    placement: a.placement,
                });
                memo.fingerprints.push(crate::delta::fingerprint_app(&self.provision, app, a));
            }
            memo.scenarios = env
                .failures
                .enumerate(self.assignments.iter().map(|(&app, a)| (app, a.placement.primary)));
            memo.stale_assignments.clear();
            memo.stale_fingerprints.clear();
            memo.scenarios_stale = false;
            memo.shape_stale = false;
            return MemoRefresh::Rebuilt;
        }
        let mut dirty = Vec::new();
        if !(memo.stale_assignments.is_empty() && memo.stale_fingerprints.is_empty()) {
            for (i, (&app, a)) in self.assignments.iter().enumerate() {
                let assignment_stale = memo.stale_assignments.contains(&app);
                if assignment_stale {
                    memo.protections[i] = AppProtection {
                        app,
                        technique: env.catalog[a.technique].clone(),
                        config: a.config,
                        placement: a.placement,
                    };
                }
                if assignment_stale || memo.stale_fingerprints.contains(&app) {
                    memo.fingerprints[i] = crate::delta::fingerprint_app(&self.provision, app, a);
                    dirty.push((app, a.placement.primary));
                }
            }
            memo.stale_assignments.clear();
            memo.stale_fingerprints.clear();
        }
        if memo.scenarios_stale {
            memo.scenarios = env
                .failures
                .enumerate(self.assignments.iter().map(|(&app, a)| (app, a.placement.primary)));
            memo.scenarios_stale = false;
            return MemoRefresh::Rebuilt;
        }
        MemoRefresh::Dirty(dirty)
    }

    /// Applies `mv` and evaluates the result incrementally: only
    /// scenarios whose dependency slice the move changed are recomputed;
    /// the rest replay from `cache`. Returns the post-move cost and the
    /// undo token. The candidate is left with the move applied — call
    /// [`Candidate::undo_move`] to reject the trial.
    ///
    /// # Errors
    ///
    /// Any [`ResourceError`] when the move does not fit; the candidate
    /// is unchanged on error.
    pub fn evaluate_delta(
        &mut self,
        env: &Environment,
        mv: &Move,
        cache: &mut ScenarioOutcomeCache,
    ) -> Result<(CostBreakdown, MoveUndo), ResourceError> {
        let undo = self.apply_move(env, mv)?;
        dsd_obs::add(mv.delta_counter(), 1);
        let cost = self.evaluate_with(env, cache).clone();
        Ok((cost, undo))
    }

    /// The cached cost breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the candidate has not been evaluated since its last
    /// mutation; call [`Candidate::evaluate`] first.
    #[must_use]
    pub fn cost(&self) -> &CostBreakdown {
        self.cost.as_ref().expect("candidate not evaluated; call evaluate() first")
    }

    /// The cached cost, if any.
    #[must_use]
    pub fn cost_if_evaluated(&self) -> Option<&CostBreakdown> {
        self.cost.as_ref()
    }
}

/// Marks every application whose placement touches one of `touched`'s
/// devices as stale in the memo: a state change on a shared device
/// changes those applications' dependency-slice fingerprints.
fn mark_apps_touching(
    assignments: &BTreeMap<AppId, AppAssignment>,
    memo: &mut EvalMemo,
    touched: &TouchedDevices,
) {
    for (&app, a) in assignments {
        let p = &a.placement;
        let hit = touched.arrays.iter().any(|&r| r == p.primary || Some(r) == p.mirror)
            || touched.tapes.iter().any(|&t| Some(t) == p.tape)
            || touched.routes.iter().any(|&r| Some(r) == p.route);
        if hit {
            memo.stale_fingerprints.insert(app);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let sites = vec![
            Site::new(0, "P1")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
            Site::new(1, "P2")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
        ];
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    fn tid(env: &Environment, name: &str) -> TechniqueId {
        env.catalog.find(name).expect("technique exists")
    }

    #[test]
    fn placement_enumeration_counts() {
        let e = env(1);
        // Backup-only: 2 sites x 2 slots, tape at same site = 4.
        let backup = PlacementOptions::enumerate(&e, tid(&e, "tape backup"));
        assert_eq!(backup.len(), 4);
        assert!(backup.iter().all(|p| p.mirror.is_none() && p.tape.is_some()));
        // Mirrored with backup: 4 primaries x 2 remote slots = 8.
        let mirrored = PlacementOptions::enumerate(&e, tid(&e, "sync mirror (F) with backup"));
        assert_eq!(mirrored.len(), 8);
        for p in &mirrored {
            assert_ne!(p.mirror.unwrap().site, p.primary.site);
            assert_eq!(p.failover_site, Some(p.mirror.unwrap().site));
            assert!(p.route.is_some());
        }
        // Mirror-only reconstruct: no failover site.
        let silver = PlacementOptions::enumerate(&e, tid(&e, "sync mirror (R)"));
        assert!(silver.iter().all(|p| p.failover_site.is_none() && p.tape.is_none()));
    }

    #[test]
    fn assign_evaluate_remove_roundtrip() {
        let e = env(1);
        let mut c = Candidate::empty(&e);
        assert!(!c.is_complete(&e));
        let t = tid(&e, "async mirror (F) with backup");
        let placement = PlacementOptions::enumerate(&e, t)[0];
        c.try_assign(&e, AppId(0), t, e.catalog[t].default_config(), placement).unwrap();
        assert!(c.is_complete(&e));
        assert_eq!(c.assignment(AppId(0)).unwrap().technique, t);
        assert!(
            c.assignment(AppId(0)).unwrap().placement.route.is_some(),
            "route resolved during assignment"
        );

        let cost = c.evaluate(&e).clone();
        assert!(cost.total().is_finite());
        assert!(cost.outlay.as_f64() > 0.0);
        assert!(cost.penalties.total().as_f64() > 0.0);

        c.remove_app(AppId(0));
        assert_eq!(c.assigned_count(), 0);
        assert!(c.cost_if_evaluated().is_none(), "mutation invalidates cache");
        let empty_cost = c.evaluate(&e).clone();
        assert_eq!(empty_cost.outlay, Dollars::ZERO);
        assert_eq!(empty_cost.penalties.total(), Dollars::ZERO);
    }

    #[test]
    fn failed_assignment_leaves_candidate_unchanged() {
        let e = env(2);
        let mut c = Candidate::empty(&e);
        let t = tid(&e, "sync mirror (R)");
        // MSA1500 primary cannot sustain central banking's 50 MB/s peak
        // mirror + 50 MB/s access within its 128 MB/s enclosure if we
        // blow the capacity: force failure via a tiny slot. Use the MSA
        // as both primary and mirror for the big web-service app (4300GB
        // fits 128*143=18304 GB, bandwidth 20+?); instead force failure
        // by assigning two huge apps to one MSA.
        let placements = PlacementOptions::enumerate(&e, t);
        let msa_primary = placements
            .iter()
            .find(|p| p.primary.slot == 1 && p.mirror.unwrap().slot == 1)
            .copied()
            .unwrap();
        // central banking: access 50 + peak mirror 50 on a 128 MB/s MSA — fits.
        c.try_assign(&e, AppId(0), t, e.catalog[t].default_config(), msa_primary).unwrap();
        let before = c.provision().clone();
        // Web service with backup on the same MSA primary: 20 MB/s access
        // plus a ~102 MB/s backup stream exceeds the 128 MB/s enclosure
        // already carrying 50 MB/s.
        let t2 = tid(&e, "sync mirror (F) with backup");
        let heavy = PlacementOptions::enumerate(&e, t2)
            .into_iter()
            .find(|p| p.primary == msa_primary.primary && p.mirror.unwrap().slot == 0)
            .unwrap();
        let err =
            c.try_assign(&e, AppId(1), t2, e.catalog[t2].default_config(), heavy).unwrap_err();
        assert!(matches!(err, ResourceError::DeviceExhausted { .. }));
        assert_eq!(c.provision(), &before, "failed assignment must roll back");
        assert_eq!(c.assigned_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assignment_panics() {
        let e = env(1);
        let mut c = Candidate::empty(&e);
        let t = tid(&e, "tape backup");
        let p = PlacementOptions::enumerate(&e, t)[0];
        c.try_assign(&e, AppId(0), t, e.catalog[t].default_config(), p).unwrap();
        let _ = c.try_assign(&e, AppId(0), t, e.catalog[t].default_config(), p);
    }

    #[test]
    fn vault_media_cost_scales_with_capacity() {
        let e = env(2); // B (1300 GB) and W (4300 GB)
        let t = tid(&e, "tape backup");
        let mut c = Candidate::empty(&e);
        let p0 = PlacementOptions::enumerate(&e, t)[0];
        c.try_assign(&e, AppId(0), t, e.catalog[t].default_config(), p0).unwrap();
        let one = c.vault_media_annual(&e);
        c.try_assign(&e, AppId(1), t, e.catalog[t].default_config(), p0).unwrap();
        let two = c.vault_media_annual(&e);
        assert!(two > one);
        // B: ceil(1300/60)=22 cartridges, ~13.04 shipments/yr, $100 each.
        let expected = 22.0 * 100.0 * (8760.0 / (28.0 * 24.0));
        assert!((one.as_f64() - expected).abs() < 1.0);
    }

    #[test]
    fn unassigned_lists_remaining_apps() {
        let e = env(3);
        let mut c = Candidate::empty(&e);
        assert_eq!(c.unassigned(&e).len(), 3);
        let t = tid(&e, "tape backup");
        let p = PlacementOptions::enumerate(&e, t)[0];
        c.try_assign(&e, AppId(1), t, e.catalog[t].default_config(), p).unwrap();
        assert_eq!(c.unassigned(&e), vec![AppId(0), AppId(2)]);
    }

    #[test]
    fn mirror_only_design_has_higher_penalty_than_mirror_with_backup() {
        let e = env(1);
        let with_backup = tid(&e, "sync mirror (F) with backup");
        let mirror_only = tid(&e, "sync mirror (F)");
        let mut a = Candidate::empty(&e);
        let pa = PlacementOptions::enumerate(&e, with_backup)[0];
        a.try_assign(&e, AppId(0), with_backup, e.catalog[with_backup].default_config(), pa)
            .unwrap();
        let mut b = Candidate::empty(&e);
        let pb = PlacementOptions::enumerate(&e, mirror_only)[0];
        b.try_assign(&e, AppId(0), mirror_only, e.catalog[mirror_only].default_config(), pb)
            .unwrap();
        let ca = a.evaluate(&e).penalties.total();
        let cb = b.evaluate(&e).penalties.total();
        assert!(cb > ca, "unprotected data-object exposure must dominate: {cb} vs {ca}");
    }
}
