//! The design solver — Algorithm 1 of the paper.
//!
//! Stage 1 (*greedy best-fit*) builds a feasible design by adding one
//! application at a time — chosen randomly with probability proportional
//! to its penalty-rate sum — and exhaustively trying every eligible
//! technique × placement for it, keeping the cheapest.
//!
//! Stage 2 (*refit*) explores the neighborhood of the greedy design: from
//! the current node it spawns `b` random sibling reconfigurations, walks
//! each down `d` levels (at every level evaluating `b` random neighbors
//! and following the best), jumps to the best node found, and stops at a
//! local optimum. The outer loop restarts from a fresh greedy design
//! until the budget expires, returning the best design seen anywhere.
//!
//! The paper's stack-based pseudocode bookkeeping is replaced by
//! equivalent explicit best-tracking; the explored node set (b siblings ×
//! depth-d best-of-b walks per round) is the same.

use std::time::Duration;

use dsd_obs as obs;
use dsd_obs::{duration_ns, progress, Stopwatch};
use rand::Rng;

use dsd_recovery::ScenarioOutcomeCache;
use dsd_units::Dollars;
use dsd_workload::AppId;

use crate::budget::{Budget, BudgetTracker};
use crate::candidate::{Candidate, PlacementOptions};
use crate::config_solver::{ConfigurationSolver, Thoroughness};
use crate::delta::Move;
use crate::env::Environment;
use crate::eval_cache::{CacheStats, EvalCache};
use crate::flight::{heartbeat, FlightPlan};
use crate::reconfigure::{weighted_index, Reconfigurator};

/// Refit-stage shape parameters (paper §3.1.2: breadth `b`, typically 3;
/// depth `d`, typically 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefitParams {
    /// Number of sibling subtrees / neighbors per level (`b`).
    pub breadth: usize,
    /// Depth of each sibling walk (`d`).
    pub depth: usize,
    /// Maximum refit rounds before declaring a local optimum anyway.
    pub max_rounds: usize,
}

impl Default for RefitParams {
    fn default() -> Self {
        RefitParams { breadth: 3, depth: 5, max_rounds: 25 }
    }
}

/// Counters and timers describing one solve run.
///
/// The stage timers partially overlap: `completion_time` counts every
/// configuration-solver completion wherever it happens, so completions
/// performed inside the refit walk are included in both `refit_time` and
/// `completion_time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Completed greedy stage-1 constructions.
    pub greedy_builds: u64,
    /// Greedy constructions abandoned as infeasible.
    pub greedy_failures: u64,
    /// Refit rounds executed.
    pub refit_rounds: u64,
    /// Candidate nodes evaluated (configuration-solver completions).
    pub nodes_evaluated: u64,
    /// Completions answered from the evaluation cache.
    pub cache_hits: u64,
    /// Completions that missed the evaluation cache (and were computed).
    pub cache_misses: u64,
    /// Wall time in the greedy best-fit stage.
    pub greedy_time: Duration,
    /// Wall time in the refit stage (including its inner completions).
    pub refit_time: Duration,
    /// Wall time in configuration-solver completions (cached or not).
    pub completion_time: Duration,
}

impl SolveStats {
    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &SolveStats) {
        self.greedy_builds += other.greedy_builds;
        self.greedy_failures += other.greedy_failures;
        self.refit_rounds += other.refit_rounds;
        self.nodes_evaluated += other.nodes_evaluated;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.greedy_time += other.greedy_time;
        self.refit_time += other.refit_time;
        self.completion_time += other.completion_time;
    }

    /// Fraction of this run's completions answered from the cache, in
    /// `[0, 1]`; zero when the run performed no completions (or ran
    /// uncached).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Publishes these counters into the currently installed
    /// [`dsd_obs`] metrics registry under the `solver.*` names (durations
    /// as `*_time_ns` counters). A no-op when no recorder is installed,
    /// so solvers call it unconditionally at the end of every run; the
    /// registry accumulates across runs exactly like [`SolveStats::merge`].
    pub fn publish(&self) {
        obs::add("solver.greedy_builds", self.greedy_builds);
        obs::add("solver.greedy_failures", self.greedy_failures);
        obs::add("solver.refit_rounds", self.refit_rounds);
        obs::add("solver.nodes_evaluated", self.nodes_evaluated);
        obs::add("solver.cache_hits", self.cache_hits);
        obs::add("solver.cache_misses", self.cache_misses);
        obs::add("solver.greedy_time_ns", duration_ns(self.greedy_time));
        obs::add("solver.refit_time_ns", duration_ns(self.refit_time));
        obs::add("solver.completion_time_ns", duration_ns(self.completion_time));
    }

    /// Reconstructs run counters from a metrics snapshot — the registry
    /// view of the series written by [`SolveStats::publish`]. Series that
    /// were never published read as zero; when several runs published
    /// into one registry the result is their [`SolveStats::merge`] sum.
    #[must_use]
    pub fn from_snapshot(snapshot: &obs::MetricsSnapshot) -> SolveStats {
        let c = |name: &str| snapshot.counter(name).unwrap_or(0);
        SolveStats {
            greedy_builds: c("solver.greedy_builds"),
            greedy_failures: c("solver.greedy_failures"),
            refit_rounds: c("solver.refit_rounds"),
            nodes_evaluated: c("solver.nodes_evaluated"),
            cache_hits: c("solver.cache_hits"),
            cache_misses: c("solver.cache_misses"),
            greedy_time: Duration::from_nanos(c("solver.greedy_time_ns")),
            refit_time: Duration::from_nanos(c("solver.refit_time_ns")),
            completion_time: Duration::from_nanos(c("solver.completion_time_ns")),
        }
    }
}

/// Result of a solve: the best (evaluated) design found, if any design
/// was feasible, plus run statistics.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Best complete design found (already evaluated), or `None` when no
    /// feasible design was found within the budget.
    pub best: Option<Candidate>,
    /// Run counters.
    pub stats: SolveStats,
    /// Wall time consumed.
    pub elapsed: Duration,
    /// Snapshot of the evaluation cache at the end of the run, when one
    /// was attached (its counters are cache-lifetime, not per-run: a
    /// cache shared across restarts or workers accumulates).
    pub cache: Option<CacheStats>,
    /// Optimality certificate for the best design against the relaxation
    /// lower bound, filled in by [`SolveOutcome::certify`].
    pub bound: Option<crate::bounds::Certificate>,
}

impl SolveOutcome {
    /// Candidate evaluations per wall-clock second over the whole run.
    #[must_use]
    pub fn evals_per_sec(&self) -> f64 {
        self.stats.nodes_evaluated as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fetches the relaxation lower bound for `env` (memoized on the
    /// environment), attaches a [`crate::bounds::Certificate`] for the
    /// best design (if any), and publishes the `bound.lower` /
    /// `bound.gap_pct` gauges. Returns the certificate for convenience.
    pub fn certify(&mut self, env: &Environment) -> Option<&crate::bounds::Certificate> {
        let best = self.best.as_ref()?;
        let lb = env.certified_lower_bound();
        let certificate = crate::bounds::Certificate::new(lb, best.cost().total());
        certificate.publish();
        self.bound = Some(certificate);
        self.bound.as_ref()
    }

    /// The certified optimality gap in percent, when [`SolveOutcome::certify`]
    /// has run and a best design exists.
    #[must_use]
    pub fn gap_pct(&self) -> Option<f64> {
        self.bound.as_ref().map(|c| c.gap_pct)
    }
}

/// The two-stage randomized design solver (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct DesignSolver<'e> {
    env: &'e Environment,
    refit: RefitParams,
    max_greedy_restarts: usize,
    alpha_util: f64,
    addition_limits: (usize, usize),
    cache: Option<&'e EvalCache>,
}

impl<'e> DesignSolver<'e> {
    /// Creates a solver with default refit parameters (b=3, d=5).
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        DesignSolver {
            env,
            refit: RefitParams::default(),
            max_greedy_restarts: 10,
            alpha_util: 0.9,
            addition_limits: (4, 32),
            cache: None,
        }
    }

    /// Attaches an evaluation cache (builder style). Completions are
    /// memoized in it and replayed on revisits; the same cache can be
    /// shared across restarts and across solver instances (including
    /// worker threads), and results stay bit-identical to the uncached
    /// solver.
    #[must_use]
    pub fn with_cache(mut self, cache: &'e EvalCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the refit parameters (builder style).
    #[must_use]
    pub fn with_refit(mut self, refit: RefitParams) -> Self {
        self.refit = refit;
        self
    }

    /// Overrides the reconfigurator's load-balance weight α_util
    /// (builder style; paper §3.1.3 sets it "close to one").
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    #[must_use]
    pub fn with_alpha_util(mut self, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]: {alpha}");
        self.alpha_util = alpha;
        self
    }

    /// Overrides the configuration solver's resource-addition limits
    /// (builder style); `(0, 0)` disables the addition loop.
    #[must_use]
    pub fn with_addition_limits(mut self, quick: usize, full: usize) -> Self {
        self.addition_limits = (quick, full);
        self
    }

    fn config_solver(&self) -> ConfigurationSolver<'e> {
        ConfigurationSolver::new(self.env)
            .with_addition_limits(self.addition_limits.0, self.addition_limits.1)
    }

    /// Runs the full two-stage search until the budget expires and
    /// returns the best design found, polished with a full configuration
    /// solve.
    pub fn solve<R: Rng + ?Sized>(&self, budget: Budget, rng: &mut R) -> SolveOutcome {
        let _solve_span = obs::span("solver.solve", "solver");
        let mut tracker = budget.start();
        let mut stats = SolveStats::default();
        let config = self.config_solver();
        let mut reconf = Reconfigurator::new(self.alpha_util);
        // One scenario-outcome cache for the whole run: scenario-level
        // reuse composes with the completion-level eval cache.
        let mut scache = ScenarioOutcomeCache::new();
        let mut best: Option<Candidate> = None;
        // Flight recorder: the certificate bound behind gap percentages
        // is computed only when a progress channel is listening, and
        // emission never touches `rng`.
        let flight = FlightPlan::new(self.env);
        let mut restarts = 0u64;

        while !tracker.expired() {
            if restarts > 0 {
                progress::restart(restarts);
            }
            restarts += 1;
            progress::phase_entered("greedy");
            let greedy_span = obs::span("solver.greedy", "solver");
            let greedy_started = Stopwatch::start();
            let built = self.greedy_stage(rng, &mut tracker, &mut stats, &mut scache);
            stats.greedy_time += greedy_started.elapsed();
            drop(greedy_span);
            let Some(mut current) = built else {
                stats.greedy_failures += 1;
                // Nothing feasible from this restart; if even the greedy
                // stage keeps failing there is no point burning the rest
                // of the budget on identical failures when the
                // environment is outright infeasible.
                if stats.greedy_builds == 0 && stats.greedy_failures >= 3 {
                    break;
                }
                continue;
            };
            stats.greedy_builds += 1;
            self.complete_node(&config, &mut current, Thoroughness::Quick, &mut stats, &mut scache);

            progress::phase_entered("refit");
            let refit_span = obs::span("solver.refit", "solver");
            let refit_started = Stopwatch::start();
            let global_best = best.as_ref().map(|b| self.env.score(b.cost()));
            self.refit_stage(
                &mut current,
                &mut reconf,
                rng,
                &mut tracker,
                &mut stats,
                &mut scache,
                &flight,
                global_best,
            );
            stats.refit_time += refit_started.elapsed();
            drop(refit_span);
            if track_best(self.env, &mut best, current) {
                record_improvement(self.env, best.as_ref(), &stats);
                if let Some(b) = &best {
                    flight.incumbent(b.cost().total(), stats.nodes_evaluated);
                }
            }
            heartbeat(stats.nodes_evaluated, tracker.elapsed(), stats.cache_hit_rate());
        }

        if let Some(b) = best.as_mut() {
            progress::phase_entered("polish");
            let _polish_span = obs::span("solver.polish", "solver");
            self.complete_node(&config, b, Thoroughness::Full, &mut stats, &mut scache);
        }
        stats.publish();
        if let Some(b) = &best {
            // The final incumbent event carries the polished objective, so
            // a progress log always ends at the run's reported cost.
            flight.incumbent(b.cost().total(), stats.nodes_evaluated);
        }
        flight.done(best.as_ref().map(|b| b.cost().total()), stats.nodes_evaluated);
        if let Some(b) = &best {
            obs::gauge("solver.best_cost", self.env.score(b.cost()).as_f64());
        }
        if let Some(cache) = self.cache {
            obs::gauge("cache.hit_ratio", cache.stats().hit_rate());
            cache.publish_occupancy();
        }
        SolveOutcome {
            best,
            stats,
            elapsed: tracker.elapsed(),
            cache: self.cache.map(EvalCache::stats),
            bound: None,
        }
    }

    /// Completes one node through the attached cache (when present),
    /// recording completion time, node count, and hit/miss counters.
    fn complete_node(
        &self,
        config: &ConfigurationSolver<'e>,
        candidate: &mut Candidate,
        thoroughness: Thoroughness,
        stats: &mut SolveStats,
        scache: &mut ScenarioOutcomeCache,
    ) {
        let started = Stopwatch::start();
        match self.cache {
            Some(cache) => {
                let (_, hit) = config.complete_cached_with(candidate, thoroughness, cache, scache);
                if hit {
                    stats.cache_hits += 1;
                    obs::instant("cache.hit", "cache");
                } else {
                    stats.cache_misses += 1;
                    obs::instant("cache.miss", "cache");
                }
            }
            None => {
                config.complete_with(candidate, thoroughness, scache);
            }
        }
        stats.completion_time += started.elapsed();
        stats.nodes_evaluated += 1;
        obs::observe("solver.eval_latency", started.elapsed().as_secs_f64());
    }

    /// Stage 1: greedy best-fit (§3.1.1). Returns a complete feasible
    /// candidate or `None` after bounded restarts.
    fn greedy_stage<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tracker: &mut BudgetTracker,
        stats: &mut SolveStats,
        scache: &mut ScenarioOutcomeCache,
    ) -> Option<Candidate> {
        'restart: for _ in 0..self.max_greedy_restarts {
            if tracker.expired() {
                return None;
            }
            let mut candidate = Candidate::empty(self.env);
            let mut unassigned: Vec<AppId> = self.env.workloads.ids().collect();
            while !unassigned.is_empty() {
                let weights: Vec<f64> =
                    unassigned.iter().map(|&a| self.env.workloads[a].priority().as_f64()).collect();
                let pick = weighted_index(&weights, rng).expect("non-empty");
                let app = unassigned.swap_remove(pick);
                if !self.best_fit_assign(&mut candidate, app, stats, scache) {
                    tracker.tick();
                    continue 'restart; // infeasible: restart greedy
                }
                tracker.tick();
            }
            return Some(candidate);
        }
        None
    }

    /// Exhaustively tries every eligible technique × placement for `app`
    /// (default configuration) as in-place applied-and-undone moves, and
    /// commits the cheapest feasible one.
    fn best_fit_assign(
        &self,
        candidate: &mut Candidate,
        app: AppId,
        stats: &mut SolveStats,
        scache: &mut ScenarioOutcomeCache,
    ) -> bool {
        let class = self.env.workloads[app].class_with(&self.env.thresholds);
        let mut best: Option<(Dollars, Move)> = None;
        for (tid, technique) in self.env.catalog.eligible_for(class) {
            let config = technique.default_config();
            for placement in PlacementOptions::enumerate(self.env, tid) {
                let mv = Move::Reassign { app, technique: tid, config, placement };
                let Ok(undo) = candidate.apply_move(self.env, &mv) else {
                    continue;
                };
                obs::add(mv.trial_counter(), 1);
                let cost = self.env.score(candidate.evaluate_with(self.env, scache));
                stats.nodes_evaluated += 1;
                candidate.undo_move(undo);
                if best.as_ref().is_none_or(|&(c, _)| cost < c) {
                    best = Some((cost, mv));
                }
            }
        }
        match best {
            Some((cost, mv)) => {
                if obs::enabled() {
                    obs::instant_with(
                        "greedy.place",
                        "greedy",
                        vec![("app", app.0.into()), ("cost", cost.as_f64().into())],
                    );
                }
                obs::add(mv.accept_counter(), 1);
                candidate
                    .apply_move(self.env, &mv)
                    .expect("re-applying the chosen placement from the same state");
                true
            }
            None => false,
        }
    }

    /// Stage 2: refit (§3.1.2). Mutates `current` toward a local optimum.
    /// `global_best` is the score of the best design from earlier
    /// restarts, so progress incumbents stay globally monotone.
    #[allow(clippy::too_many_arguments)]
    fn refit_stage<R: Rng + ?Sized>(
        &self,
        current: &mut Candidate,
        reconf: &mut Reconfigurator,
        rng: &mut R,
        tracker: &mut BudgetTracker,
        stats: &mut SolveStats,
        scache: &mut ScenarioOutcomeCache,
        flight: &FlightPlan,
        global_best: Option<Dollars>,
    ) {
        // Refit nodes complete with the same addition limits as the rest
        // of the search, so one cache namespace covers both stages.
        let config = self.config_solver();
        let explore = |node: &Candidate,
                       reconf: &mut Reconfigurator,
                       rng: &mut R,
                       tracker: &mut BudgetTracker,
                       stats: &mut SolveStats,
                       scache: &mut ScenarioOutcomeCache|
         -> Option<Candidate> {
            if tracker.expired() {
                return None;
            }
            tracker.tick();
            // A sibling needs an independent candidate object; the
            // trials *inside* the reconfiguration and completion are
            // clone-free moves.
            let mut next = node.clone();
            if !reconf.reconfigure_with(self.env, &mut next, scache, rng) {
                return None;
            }
            self.complete_node(&config, &mut next, Thoroughness::Quick, stats, scache);
            if obs::enabled() {
                obs::instant_with(
                    "refit.move",
                    "refit",
                    vec![("cost", self.env.score(next.cost()).as_f64().into())],
                );
            }
            Some(next)
        };

        let mut best = current.clone();
        best.evaluate_with(self.env, scache);
        for _ in 0..self.refit.max_rounds {
            if tracker.expired() {
                break;
            }
            stats.refit_rounds += 1;
            let mut round_best: Option<Candidate> = None;

            for _ in 0..self.refit.breadth {
                // One sibling subtree rooted at a reconfiguration of the
                // round's starting node.
                let Some(mut node) = explore(current, reconf, rng, tracker, stats, scache) else {
                    continue;
                };
                track_best(self.env, &mut round_best, node.clone());
                for _ in 0..self.refit.depth {
                    let mut level_best: Option<Candidate> = None;
                    for _ in 0..self.refit.breadth {
                        if let Some(n) = explore(&node, reconf, rng, tracker, stats, scache) {
                            track_best(self.env, &mut level_best, n);
                        }
                    }
                    let Some(lb) = level_best else { break };
                    track_best(self.env, &mut round_best, lb.clone());
                    node = lb;
                }
            }

            match round_best {
                Some(rb) if self.env.score(rb.cost()) < self.env.score(best.cost()) => {
                    *current = rb.clone();
                    best = rb;
                    record_improvement(self.env, Some(&best), stats);
                    // Progress incumbents only report *global* improvements
                    // (a later restart's local walk may trail the best seen
                    // so far), keeping the convergence curve monotone.
                    if global_best.is_none_or(|g| self.env.score(best.cost()) < g) {
                        flight.incumbent(best.cost().total(), stats.nodes_evaluated);
                    }
                }
                // No improvement this round: local optimum (Algorithm 1's
                // termination test).
                _ => break,
            }
        }
        *current = best;
    }
}

/// Keeps the better-scoring candidate under the environment's objective
/// (candidates must be evaluated); returns whether `slot` was replaced.
fn track_best(env: &Environment, slot: &mut Option<Candidate>, candidate: Candidate) -> bool {
    debug_assert!(candidate.cost_if_evaluated().is_some());
    match slot {
        None => {
            *slot = Some(candidate);
            true
        }
        Some(existing) => {
            if env.score(candidate.cost()) < env.score(existing.cost()) {
                *slot = Some(candidate);
                true
            } else {
                false
            }
        }
    }
}

/// Emits a `solver.improved` instant carrying the evaluation count and
/// the new best objective — the raw points of the objective-vs-
/// evaluations curve (`dsd obs summary` reassembles it from the trace).
fn record_improvement(env: &Environment, best: Option<&Candidate>, stats: &SolveStats) {
    if !obs::enabled() {
        return;
    }
    let Some(best) = best else { return };
    obs::instant_with(
        "solver.improved",
        "solver",
        vec![
            ("evals", stats.nodes_evaluated.into()),
            ("cost", env.score(best.cost()).as_f64().into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn solver_finds_complete_feasible_design() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let out = DesignSolver::new(&e).solve(Budget::iterations(30), &mut rng);
        let best = out.best.expect("feasible environment must yield a design");
        assert!(best.is_complete(&e));
        assert!(best.cost().total().is_finite());
        assert!(out.stats.greedy_builds >= 1);
        assert!(out.stats.nodes_evaluated > 0);
    }

    #[test]
    fn solver_is_deterministic_under_seed() {
        let e = env(4);
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            DesignSolver::new(&e)
                .solve(Budget::iterations(20), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn more_budget_never_hurts() {
        let e = env(4);
        let cost_at = |iters| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            DesignSolver::new(&e)
                .solve(Budget::iterations(iters), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
                .unwrap()
        };
        // Same seed: a longer run explores a superset of candidates.
        assert!(cost_at(60) <= cost_at(8) + 1e-6);
    }

    #[test]
    fn gold_apps_get_gold_protection() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let best = DesignSolver::new(&e).solve(Budget::iterations(30), &mut rng).best.unwrap();
        for (app, a) in best.assignments() {
            let class = e.workloads[*app].class_with(&e.thresholds);
            assert!(e.catalog[a.technique].category.satisfies(class));
        }
    }

    #[test]
    fn infeasible_environment_returns_none() {
        // One tiny site without tape: central banking's gold class needs a
        // mirror to another site, but there is only one site.
        let site =
            vec![Site::new(0, "solo").with_array_slot(DeviceSpec::msa1500()).with_compute(1)];
        let e = Environment::new(
            WorkloadSet::scaled_paper_mix(1),
            Arc::new(Topology::fully_connected(site, NetworkSpec::med())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let out = DesignSolver::new(&e).solve(Budget::iterations(10), &mut rng);
        assert!(out.best.is_none());
        assert!(out.stats.greedy_failures > 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SolveStats {
            greedy_builds: 1,
            greedy_failures: 2,
            refit_rounds: 3,
            nodes_evaluated: 4,
            cache_hits: 5,
            cache_misses: 6,
            greedy_time: Duration::from_millis(7),
            refit_time: Duration::from_millis(8),
            completion_time: Duration::from_millis(9),
        };
        let b = SolveStats {
            greedy_builds: 10,
            greedy_failures: 20,
            refit_rounds: 30,
            nodes_evaluated: 40,
            cache_hits: 50,
            cache_misses: 60,
            greedy_time: Duration::from_millis(70),
            refit_time: Duration::from_millis(80),
            completion_time: Duration::from_millis(90),
        };
        a.merge(&b);
        assert_eq!(a.greedy_builds, 11);
        assert_eq!(a.nodes_evaluated, 44);
        assert_eq!(a.cache_hits, 55);
        assert_eq!(a.cache_misses, 66);
        assert_eq!(a.greedy_time, Duration::from_millis(77));
        assert_eq!(a.refit_time, Duration::from_millis(88));
        assert_eq!(a.completion_time, Duration::from_millis(99));
        assert!((b.cache_hit_rate() - 50.0 / 110.0).abs() < 1e-12);
        assert!((SolveStats::default().cache_hit_rate()).abs() < 1e-12);
    }
}
