//! The configuration solver (paper §3.2): completes a partial candidate
//! by optimizing technique configuration parameters and resource counts.

use dsd_obs as obs;
use dsd_recovery::ScenarioOutcomeCache;
use dsd_units::Dollars;
use dsd_workload::AppId;

use crate::candidate::{Candidate, CostBreakdown};
use crate::delta::Move;
use crate::env::Environment;
use crate::eval_cache::{CandidateKey, EvalCache};

/// How much work the configuration solver does. During the design
/// solver's inner search, `Quick` keeps node evaluation cheap; the final
/// polish (and the human heuristic) uses `Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Thoroughness {
    /// Keep current configuration parameters; run a short
    /// resource-addition loop.
    Quick,
    /// Exhaustive discretized search over every application's
    /// configuration space plus a longer resource-addition loop.
    Full,
}

/// Completes candidate designs: chooses configuration parameter values by
/// exhaustive search over their discretized ranges, then keeps adding
/// resources (network links, tape drives, disks) while doing so lowers
/// the overall cost (paper §3.2.2: "the algorithm continues to add
/// resources until it no longer produces any cost savings").
#[derive(Debug, Clone, Copy)]
pub struct ConfigurationSolver<'e> {
    env: &'e Environment,
    max_additions_quick: usize,
    max_additions_full: usize,
}

impl<'e> ConfigurationSolver<'e> {
    /// Creates a configuration solver for an environment.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        ConfigurationSolver { env, max_additions_quick: 4, max_additions_full: 32 }
    }

    /// Overrides the resource-addition step limits (builder style).
    /// `(0, 0)` disables the addition loop entirely — used by the
    /// ablation study to measure its value.
    #[must_use]
    pub fn with_addition_limits(mut self, quick: usize, full: usize) -> Self {
        self.max_additions_quick = quick;
        self.max_additions_full = full;
        self
    }

    /// The `(quick, full)` resource-addition limits in force.
    #[must_use]
    pub fn addition_limits(&self) -> (usize, usize) {
        (self.max_additions_quick, self.max_additions_full)
    }

    /// Memoized [`ConfigurationSolver::complete`]: looks the candidate up
    /// in `cache` first and replays the stored completion on a hit,
    /// otherwise completes normally and stores the result.
    ///
    /// Completion is deterministic in the candidate state, thoroughness,
    /// and addition limits — all captured by the [`CandidateKey`] — and
    /// consumes no randomness, so cached and uncached searches are
    /// bit-identical. Returns the final cost and whether the lookup hit.
    pub fn complete_cached(
        &self,
        candidate: &mut Candidate,
        thoroughness: Thoroughness,
        cache: &EvalCache,
    ) -> (CostBreakdown, bool) {
        let mut scache = ScenarioOutcomeCache::new();
        self.complete_cached_with(candidate, thoroughness, cache, &mut scache)
    }

    /// [`ConfigurationSolver::complete_cached`] reusing a caller-held
    /// scenario-outcome cache, so scenario-level reuse composes with the
    /// completion-level [`EvalCache`] across nodes of one search.
    pub fn complete_cached_with(
        &self,
        candidate: &mut Candidate,
        thoroughness: Thoroughness,
        cache: &EvalCache,
        scache: &mut ScenarioOutcomeCache,
    ) -> (CostBreakdown, bool) {
        let key = CandidateKey::of(candidate, thoroughness, self.addition_limits());
        if let Some((cached, cost)) = cache.lookup(&key) {
            *candidate = cached;
            return (cost, true);
        }
        let cost = self.complete_with(candidate, thoroughness, scache);
        cache.insert(key, candidate.clone(), cost.clone());
        (cost, false)
    }

    /// Optimizes `candidate` in place and returns its final cost.
    pub fn complete(&self, candidate: &mut Candidate, thoroughness: Thoroughness) -> CostBreakdown {
        let mut scache = ScenarioOutcomeCache::new();
        self.complete_with(candidate, thoroughness, &mut scache)
    }

    /// [`ConfigurationSolver::complete`] reusing a caller-held
    /// scenario-outcome cache across completions. Results are
    /// bit-identical to [`ConfigurationSolver::complete`]: every inner
    /// trial is a [`Move`] applied and undone in place, evaluated through
    /// the memoized scenario path whose totals match the full oracle.
    pub fn complete_with(
        &self,
        candidate: &mut Candidate,
        thoroughness: Thoroughness,
        scache: &mut ScenarioOutcomeCache,
    ) -> CostBreakdown {
        if thoroughness == Thoroughness::Full {
            // Full completions are rare (final polish, human heuristic),
            // so they get a span and a progress phase; Quick completions
            // are the hot path and are visible through `refit.move` /
            // `solver.eval_latency`.
            dsd_obs::progress::phase_entered("config.full");
            let _span = obs::span("config.optimize", "config");
            self.optimize_configs(candidate, scache);
        }
        let max_additions = match thoroughness {
            Thoroughness::Quick => self.max_additions_quick,
            Thoroughness::Full => self.max_additions_full,
        };
        let steps = self.add_resources(candidate, max_additions, scache);
        obs::add("config.addition_steps", steps as u64);
        candidate.evaluate_with(self.env, scache).clone()
    }

    /// Coordinate-descent exhaustive search over each application's
    /// discretized configuration space, in descending priority order.
    /// Trials are config-only [`Move::Reassign`]s applied and undone in
    /// place; the incumbent cost is evaluated lazily once and carried
    /// across applications (an accepted trial's cost becomes the next
    /// incumbent) instead of being re-evaluated per app.
    fn optimize_configs(&self, candidate: &mut Candidate, scache: &mut ScenarioOutcomeCache) {
        let mut apps: Vec<AppId> = candidate.assignments().keys().copied().collect();
        apps.sort_by(|&a, &b| {
            self.env.workloads[b]
                .priority()
                .as_f64()
                .partial_cmp(&self.env.workloads[a].priority().as_f64())
                .expect("penalty rates are finite")
        });
        let mut incumbent: Option<Dollars> = None;
        for app in apps {
            let assignment = *candidate.assignment(app).expect("assigned app");
            let space = self.env.catalog[assignment.technique].config_space();
            if space.len() <= 1 {
                continue;
            }
            let mut best_cost = match incumbent {
                Some(cost) => cost,
                None => self.env.score(candidate.evaluate_with(self.env, scache)),
            };
            let mut best_config = assignment.config;
            for config in space {
                if config == assignment.config {
                    continue;
                }
                let mv = Move::Reassign {
                    app,
                    technique: assignment.technique,
                    config,
                    placement: assignment.placement,
                };
                let Ok(undo) = candidate.apply_move(self.env, &mv) else {
                    continue;
                };
                obs::add(mv.trial_counter(), 1);
                let cost = self.env.score(candidate.evaluate_with(self.env, scache));
                if cost < best_cost {
                    best_cost = cost;
                    best_config = config;
                    obs::add(mv.accept_counter(), 1);
                } else {
                    candidate.undo_move(undo);
                }
            }
            incumbent = Some(best_cost);
            debug_assert!(candidate.assignment(app).map(|a| a.config) == Some(best_config));
        }
    }

    /// Greedy resource addition: at each step, evaluate adding one link /
    /// one tape drive / one disk to each provisioned device — as in-place
    /// applied-and-undone [`Move`]s, not candidate clones — apply the
    /// single best cost-reducing addition, and stop when nothing improves
    /// (or after `max_additions` steps). Returns the steps applied.
    fn add_resources(
        &self,
        candidate: &mut Candidate,
        max_additions: usize,
        scache: &mut ScenarioOutcomeCache,
    ) -> usize {
        for step in 0..max_additions {
            let base = self.env.score(candidate.evaluate_with(self.env, scache));
            let mut best: Option<(Dollars, Move)> = None;

            let mut moves: Vec<Move> = Vec::new();
            for route in candidate.provision().active_routes() {
                moves.push(Move::AddLinks { route, extra: 1 });
            }
            for tape in candidate.provision().provisioned_tapes() {
                moves.push(Move::AddTapeDrives { tape, extra: 1 });
            }
            for array in candidate.provision().provisioned_arrays() {
                moves.push(Move::AddArrayUnits { array, extra: 1 });
            }

            for mv in moves {
                let Ok(undo) = candidate.apply_move(self.env, &mv) else {
                    continue;
                };
                obs::add(mv.trial_counter(), 1);
                let cost = self.env.score(candidate.evaluate_with(self.env, scache));
                candidate.undo_move(undo);
                if cost < base && best.as_ref().is_none_or(|&(c, _)| cost < c) {
                    best = Some((cost, mv));
                }
            }

            match best {
                Some((_, mv)) => {
                    obs::add(mv.accept_counter(), 1);
                    candidate
                        .apply_move(self.env, &mv)
                        .expect("re-applying an accepted addition from the same state");
                }
                None => return step,
            }
        }
        max_additions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::PlacementOptions;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let mk_site = |i: usize, name: &str| {
            Site::new(i, name)
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(
                vec![mk_site(0, "P1"), mk_site(1, "P2")],
                NetworkSpec::high(),
            )),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    fn assigned_candidate(env: &Environment) -> Candidate {
        let mut c = Candidate::empty(env);
        for app in env.workloads.iter() {
            let class = app.class_with(&env.thresholds);
            let (tid, technique) =
                env.catalog.eligible_for(class).next().expect("eligible technique exists");
            let config = technique.default_config();
            let placements = PlacementOptions::enumerate(env, tid);
            let placed =
                placements.iter().any(|&p| c.try_assign(env, app.id, tid, config, p).is_ok());
            assert!(placed, "fixture must be assignable");
        }
        c
    }

    #[test]
    fn completion_never_increases_cost() {
        let e = env(4);
        let mut c = assigned_candidate(&e);
        let before = c.evaluate(&e).total();
        let solver = ConfigurationSolver::new(&e);
        let after = solver.complete(&mut c, Thoroughness::Full);
        assert!(after.total() <= before, "{} > {}", after.total(), before);
    }

    #[test]
    fn quick_is_cheaper_than_full_but_still_monotone() {
        let e = env(4);
        let mut c = assigned_candidate(&e);
        let before = c.evaluate(&e).total();
        let after = ConfigurationSolver::new(&e).complete(&mut c, Thoroughness::Quick);
        assert!(after.total() <= before);
    }

    #[test]
    fn full_beats_or_matches_quick() {
        let e = env(4);
        let base = assigned_candidate(&e);
        let solver = ConfigurationSolver::new(&e);
        let mut quick = base.clone();
        let quick_cost = solver.complete(&mut quick, Thoroughness::Quick);
        let mut full = base;
        let full_cost = solver.complete(&mut full, Thoroughness::Full);
        assert!(full_cost.total() <= quick_cost.total());
    }

    #[test]
    fn zero_addition_limits_disable_the_addition_loop() {
        let e = env(4);
        let base = assigned_candidate(&e);
        let solver = ConfigurationSolver::new(&e).with_addition_limits(0, 0);
        assert_eq!(solver.addition_limits(), (0, 0));
        let mut c = base.clone();
        let cost = solver.complete(&mut c, Thoroughness::Quick);
        // Quick with no additions is a pure evaluation: nothing changes.
        assert_eq!(c.assignments(), base.assignments());
        let mut plain = base.clone();
        assert_eq!(cost.total(), plain.evaluate(&e).total());
    }

    #[test]
    fn asymmetric_limits_let_full_add_what_quick_cannot() {
        let e = env(4);
        let base = assigned_candidate(&e);
        let solver = ConfigurationSolver::new(&e).with_addition_limits(0, 32);
        let mut quick = base.clone();
        let quick_cost = solver.complete(&mut quick, Thoroughness::Quick);
        let mut full = base;
        let full_cost = solver.complete(&mut full, Thoroughness::Full);
        // Full keeps its 32 addition steps (plus config search), so it can
        // only do better than a Quick pass stripped of the loop.
        assert!(full_cost.total() <= quick_cost.total());
    }

    #[test]
    fn huge_limits_terminate_via_convergence() {
        // The addition loop must stop when nothing improves, not run to
        // the step limit.
        let e = env(2);
        let mut c = assigned_candidate(&e);
        let cost = ConfigurationSolver::new(&e)
            .with_addition_limits(10_000, 10_000)
            .complete(&mut c, Thoroughness::Quick);
        assert!(cost.total().is_finite());
    }

    #[test]
    fn zero_limits_on_infeasible_environment_yield_none_without_panic() {
        // One site, one compute slot: the gold-class app cannot be
        // protected, and the crippled configuration solver must not mask
        // or aggravate that.
        let sites =
            vec![Site::new(0, "tiny").with_array_slot(DeviceSpec::msa1500()).with_compute(1)];
        let e = Environment::new(
            WorkloadSet::scaled_paper_mix(2),
            Arc::new(Topology::fully_connected(sites, NetworkSpec::med())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        );
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let outcome = crate::design_solver::DesignSolver::new(&e)
            .with_addition_limits(0, 0)
            .solve(crate::budget::Budget::iterations(4), &mut rng);
        assert!(outcome.best.is_none());
    }

    #[test]
    fn configs_stay_within_their_space() {
        let e = env(4);
        let mut c = assigned_candidate(&e);
        ConfigurationSolver::new(&e).complete(&mut c, Thoroughness::Full);
        for a in c.assignments().values() {
            let space = e.catalog[a.technique].config_space();
            assert!(space.contains(&a.config), "chosen config must be a legal grid point");
        }
    }
}
