//! Solver budgets: wall-clock and/or iteration limits.
//!
//! The paper runs every heuristic "for a fixed time of thirty minutes"
//! (§4.3). Experiments in this reproduction usually use iteration budgets
//! so results are machine-independent and deterministic under a seed, but
//! wall-clock budgets are supported for paper-faithful runs.

use std::time::Duration;

use dsd_obs::Stopwatch;

/// A solve budget: the solver stops when *either* limit is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    max_iterations: Option<u64>,
    max_duration: Option<Duration>,
}

impl Budget {
    /// Budget of `n` solver iterations (deterministic under a fixed
    /// seed).
    #[must_use]
    pub fn iterations(n: u64) -> Self {
        Budget { max_iterations: Some(n), max_duration: None }
    }

    /// Wall-clock budget (the paper's thirty-minute setting).
    #[must_use]
    pub fn wall_clock(d: Duration) -> Self {
        Budget { max_iterations: None, max_duration: Some(d) }
    }

    /// Both limits; whichever trips first ends the solve.
    #[must_use]
    pub fn either(n: u64, d: Duration) -> Self {
        Budget { max_iterations: Some(n), max_duration: Some(d) }
    }

    /// Starts consuming this budget (timed on the workspace's monotonic
    /// [`Stopwatch`]).
    #[must_use]
    pub fn start(self) -> BudgetTracker {
        BudgetTracker { budget: self, started: Stopwatch::start(), iterations: 0 }
    }
}

/// Running state of a budget.
#[derive(Debug, Clone)]
pub struct BudgetTracker {
    budget: Budget,
    started: Stopwatch,
    iterations: u64,
}

impl BudgetTracker {
    /// Records one iteration.
    pub fn tick(&mut self) {
        self.iterations += 1;
    }

    /// Iterations consumed so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Elapsed wall time.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// True once either limit has been reached.
    #[must_use]
    pub fn expired(&self) -> bool {
        if let Some(n) = self.budget.max_iterations {
            if self.iterations >= n {
                return true;
            }
        }
        if let Some(d) = self.budget.max_duration {
            if self.started.elapsed() >= d {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_budget_expires_after_n_ticks() {
        let mut t = Budget::iterations(3).start();
        assert!(!t.expired());
        t.tick();
        t.tick();
        assert!(!t.expired());
        t.tick();
        assert!(t.expired());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn zero_iteration_budget_is_immediately_expired() {
        let t = Budget::iterations(0).start();
        assert!(t.expired());
    }

    #[test]
    fn wall_clock_budget_expires() {
        let t = Budget::wall_clock(Duration::from_millis(0)).start();
        assert!(t.expired());
        let t2 = Budget::wall_clock(Duration::from_secs(3600)).start();
        assert!(!t2.expired());
    }

    #[test]
    fn either_budget_trips_on_iterations_first() {
        let mut t = Budget::either(1, Duration::from_secs(3600)).start();
        assert!(!t.expired());
        t.tick();
        assert!(t.expired());
    }
}
