//! Solver tournament: heuristics vs. the exhaustive optimum vs. the bound.
//!
//! Races the greedy design solver, simulated annealing, and tabu search
//! against [`crate::exhaustive_optimal_with`] across a seeded grid of
//! small environments (2–6 applications × catalog subsets), recording
//! each heuristic's gap to the exhaustive optimum (where the space is
//! small enough to enumerate) and to the relaxation lower bound
//! (everywhere). Every instance also checks the certified ordering
//! `lower_bound ≤ exhaustive ≤ heuristic`; violations indicate a bug in
//! the bound or the evaluator and are surfaced as counters so the bench
//! binary and CI can fail on them.
//!
//! To make the exhaustive reference a true floor, heuristics run with
//! resource additions disabled (`with_addition_limits(0, 0)`): every
//! reconfiguration move lands on a grid configuration and the `Full`
//! polish only explores the discrete configuration grid — exactly the
//! space the exhaustive reference enumerates with
//! [`crate::ExhaustiveOptions::config_grid`].

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::Arc;

use dsd_failure::{FailureModel, FailureRates};
use dsd_protection::{Technique, TechniqueCatalog};
use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd_units::Dollars;
use dsd_workload::WorkloadSet;

use crate::bounds::{lower_bound, CERTIFICATE_TOLERANCE};
use crate::budget::Budget;
use crate::design_solver::DesignSolver;
use crate::env::Environment;
use crate::exhaustive::{combination_count, exhaustive_optimal_with, ExhaustiveOptions};
use crate::heuristics::{SimulatedAnnealing, TabuSearch};

/// Tournament grid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentConfig {
    /// Base RNG seed; each (instance, heuristic) pair derives its own
    /// sub-seed, so runs are reproducible.
    pub seed: u64,
    /// Iteration budget per heuristic per instance.
    pub budget: u64,
    /// Application counts raced (the paper mix is drawn cyclically).
    pub app_counts: Vec<usize>,
    /// Skip the exhaustive reference when the (config-grid) space
    /// exceeds this many combinations; gap-to-bound is still recorded.
    pub max_exhaustive: u128,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            seed: 2006,
            budget: 40,
            app_counts: vec![2, 3, 4, 5, 6],
            max_exhaustive: 200_000,
        }
    }
}

/// One heuristic's result on one instance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HeuristicEntry {
    /// Heuristic name (`greedy`, `annealing`, `tabu`).
    pub heuristic: String,
    /// Total annual cost of the best design found, absent when the
    /// heuristic found no feasible design within the budget.
    pub cost: Option<f64>,
    /// Gap to the relaxation lower bound, percent (≥ 0).
    pub gap_to_bound_pct: Option<f64>,
    /// Gap to the exhaustive optimum, percent (≥ 0); absent when the
    /// space was too large to enumerate.
    pub gap_to_exhaustive_pct: Option<f64>,
}

/// One tournament instance: an environment plus every racer's result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InstanceResult {
    /// Human-readable label, e.g. `"4 apps × table2"`.
    pub label: String,
    /// Number of applications.
    pub apps: usize,
    /// Catalog subset name.
    pub catalog: String,
    /// Size of the config-grid exhaustive space (saturating at
    /// `u64::MAX`).
    pub combinations: u64,
    /// The relaxation lower bound for the instance.
    pub lower_bound: f64,
    /// Exhaustive optimum cost, when the space was enumerable and a
    /// feasible design exists.
    pub exhaustive: Option<f64>,
    /// Per-heuristic results.
    pub entries: Vec<HeuristicEntry>,
}

/// Aggregated gap distribution of one heuristic across the grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HeuristicSummary {
    /// Heuristic name.
    pub heuristic: String,
    /// Instances where the heuristic produced a design.
    pub instances: u64,
    /// Worst gap to the bound across those instances, percent.
    pub worst_gap_to_bound_pct: f64,
    /// Mean gap to the bound, percent.
    pub mean_gap_to_bound_pct: f64,
    /// Instances where the exhaustive reference completed.
    pub exhaustive_instances: u64,
    /// Worst gap to the exhaustive optimum, percent.
    pub worst_gap_to_exhaustive_pct: f64,
    /// Mean gap to the exhaustive optimum, percent.
    pub mean_gap_to_exhaustive_pct: f64,
}

/// Full tournament output: per-instance table plus per-heuristic
/// summaries and soundness counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TournamentReport {
    /// Base seed the grid ran under.
    pub seed: u64,
    /// Iteration budget per heuristic per instance.
    pub budget: u64,
    /// Every raced instance.
    pub instances: Vec<InstanceResult>,
    /// Gap distributions per heuristic.
    pub summary: Vec<HeuristicSummary>,
    /// Times any achieved cost fell below the lower bound (must be 0).
    pub bound_violations: u64,
    /// Times a heuristic beat the exhaustive optimum on its own search
    /// space, or the exhaustive optimum fell below the bound (must be 0).
    pub ordering_violations: u64,
}

impl TournamentReport {
    /// Total soundness violations; nonzero means the bound or the
    /// evaluator is buggy.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.bound_violations + self.ordering_violations
    }
}

/// The catalog subsets raced: the full Table 2 catalog and its
/// mirror-bearing rows only.
fn catalog_subsets() -> Vec<(&'static str, TechniqueCatalog)> {
    let full = TechniqueCatalog::table2();
    let mirrors: Vec<Technique> = full.iter().filter(|t| t.has_mirror()).cloned().collect();
    vec![("table2", full), ("mirrors", TechniqueCatalog::new(mirrors))]
}

/// The paper-style two-site environment every instance runs on.
fn instance_env(apps: usize, catalog: TechniqueCatalog) -> Environment {
    let mk = |i: usize| {
        Site::new(i, format!("T{i}"))
            .with_array_slot(DeviceSpec::xp1200())
            .with_tape_library(DeviceSpec::tape_library_high())
            .with_compute(8)
    };
    Environment::new(
        WorkloadSet::scaled_paper_mix(apps),
        Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
        catalog,
        FailureModel::new(FailureRates::case_study()),
    )
}

/// Derives a per-(instance, heuristic) sub-seed from the base seed.
fn sub_seed(seed: u64, instance: usize, heuristic: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((instance as u64) << 8)
        .wrapping_add(heuristic as u64)
}

fn gap_pct(cost: f64, reference: f64) -> f64 {
    if reference > 0.0 && cost.is_finite() {
        ((cost - reference) / reference * 100.0).max(0.0)
    } else {
        0.0
    }
}

const HEURISTICS: [&str; 3] = ["greedy", "annealing", "tabu"];

/// Runs the tournament grid and aggregates the report.
#[must_use]
pub fn run_tournament(config: &TournamentConfig) -> TournamentReport {
    let mut instances = Vec::new();
    let mut bound_violations = 0u64;
    let mut ordering_violations = 0u64;
    let budget = Budget::iterations(config.budget);
    let mut instance_idx = 0usize;

    for &apps in &config.app_counts {
        for (catalog_name, catalog) in catalog_subsets() {
            let env = instance_env(apps, catalog);
            let lb = lower_bound(&env).total.as_f64();
            let floor = lb * (1.0 - CERTIFICATE_TOLERANCE);

            let options = ExhaustiveOptions { limit: config.max_exhaustive, config_grid: true };
            let combinations = combination_count(&env, &options);
            let exhaustive = exhaustive_optimal_with(&env, options)
                .ok()
                .and_then(|r| r.best.map(|b| b.cost().total().as_f64()));
            if let Some(exact) = exhaustive {
                if exact < floor {
                    ordering_violations += 1;
                }
            }

            let mut entries = Vec::new();
            for (h_idx, name) in HEURISTICS.iter().enumerate() {
                let mut rng = ChaCha8Rng::seed_from_u64(sub_seed(config.seed, instance_idx, h_idx));
                let outcome = match h_idx {
                    0 => DesignSolver::new(&env).with_addition_limits(0, 0).solve(budget, &mut rng),
                    1 => SimulatedAnnealing::new(&env)
                        .with_addition_limits(0, 0)
                        .solve(budget, &mut rng),
                    _ => TabuSearch::new(&env).with_addition_limits(0, 0).solve(budget, &mut rng),
                };
                let cost = outcome.best.as_ref().map(|b| b.cost().total().as_f64());
                if let Some(c) = cost {
                    if c < floor {
                        bound_violations += 1;
                    }
                    if let Some(exact) = exhaustive {
                        if c < exact * (1.0 - CERTIFICATE_TOLERANCE) {
                            ordering_violations += 1;
                        }
                    }
                }
                entries.push(HeuristicEntry {
                    heuristic: (*name).to_string(),
                    cost,
                    gap_to_bound_pct: cost.map(|c| gap_pct(c, lb)),
                    gap_to_exhaustive_pct: match (cost, exhaustive) {
                        (Some(c), Some(e)) => Some(gap_pct(c, e)),
                        _ => None,
                    },
                });
            }

            instances.push(InstanceResult {
                label: format!("{apps} apps × {catalog_name}"),
                apps,
                catalog: catalog_name.to_string(),
                combinations: u64::try_from(combinations).unwrap_or(u64::MAX),
                lower_bound: lb,
                exhaustive,
                entries,
            });
            instance_idx += 1;
        }
    }

    let summary = summarize(&instances);
    TournamentReport {
        seed: config.seed,
        budget: config.budget,
        instances,
        summary,
        bound_violations,
        ordering_violations,
    }
}

fn summarize(instances: &[InstanceResult]) -> Vec<HeuristicSummary> {
    HEURISTICS
        .iter()
        .map(|name| {
            let mut bound_gaps = Vec::new();
            let mut exh_gaps = Vec::new();
            for inst in instances {
                for e in inst.entries.iter().filter(|e| e.heuristic == *name) {
                    if let Some(g) = e.gap_to_bound_pct {
                        bound_gaps.push(g);
                    }
                    if let Some(g) = e.gap_to_exhaustive_pct {
                        exh_gaps.push(g);
                    }
                }
            }
            let stats = |gaps: &[f64]| {
                let worst = gaps.iter().copied().fold(0.0f64, f64::max);
                let mean = if gaps.is_empty() {
                    0.0
                } else {
                    gaps.iter().sum::<f64>() / gaps.len() as f64
                };
                (worst, mean)
            };
            let (worst_bound, mean_bound) = stats(&bound_gaps);
            let (worst_exh, mean_exh) = stats(&exh_gaps);
            HeuristicSummary {
                heuristic: (*name).to_string(),
                instances: bound_gaps.len() as u64,
                worst_gap_to_bound_pct: worst_bound,
                mean_gap_to_bound_pct: mean_bound,
                exhaustive_instances: exh_gaps.len() as u64,
                worst_gap_to_exhaustive_pct: worst_exh,
                mean_gap_to_exhaustive_pct: mean_exh,
            }
        })
        .collect()
}

fn money(v: f64) -> String {
    Dollars::new(v.max(0.0)).to_string()
}

impl fmt::Display for TournamentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tournament: {} instances, seed {}, budget {} iterations",
            self.instances.len(),
            self.seed,
            self.budget
        )?;
        writeln!(
            f,
            "{:<18} {:>10} {:>10} {:>10}  heuristic gaps (vs exhaustive | vs bound)",
            "instance", "combos", "bound", "exhaustive"
        )?;
        for inst in &self.instances {
            let exh = match inst.exhaustive {
                Some(e) => money(e),
                None => "—".to_string(),
            };
            let cells: Vec<String> = inst
                .entries
                .iter()
                .map(|e| {
                    let gap = match (e.gap_to_exhaustive_pct, e.gap_to_bound_pct) {
                        (Some(g), Some(b)) => format!("+{g:.1}%|+{b:.1}%"),
                        (None, Some(b)) => format!("—|+{b:.1}%"),
                        _ => "infeasible".to_string(),
                    };
                    format!("{} {}", e.heuristic, gap)
                })
                .collect();
            writeln!(
                f,
                "{:<18} {:>10} {:>10} {:>10}  {}",
                inst.label,
                inst.combinations,
                money(inst.lower_bound),
                exh,
                cells.join("  ")
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<10} {:>6} {:>12} {:>12} {:>6} {:>12} {:>12}",
            "heuristic", "n", "worst vs LB", "mean vs LB", "n_exh", "worst vs EXH", "mean vs EXH"
        )?;
        for s in &self.summary {
            writeln!(
                f,
                "{:<10} {:>6} {:>11.2}% {:>11.2}% {:>6} {:>11.2}% {:>11.2}%",
                s.heuristic,
                s.instances,
                s.worst_gap_to_bound_pct,
                s.mean_gap_to_bound_pct,
                s.exhaustive_instances,
                s.worst_gap_to_exhaustive_pct,
                s.mean_gap_to_exhaustive_pct,
            )?;
        }
        write!(
            f,
            "violations: bound={} ordering={}",
            self.bound_violations, self.ordering_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> TournamentConfig {
        TournamentConfig { seed: 11, budget: 8, app_counts: vec![2], max_exhaustive: 50_000 }
    }

    #[test]
    fn tournament_grid_is_sound_and_complete() {
        let report = run_tournament(&smoke_config());
        assert_eq!(report.instances.len(), 2, "one app count × two catalog subsets");
        assert_eq!(report.violations(), 0, "{report}");
        for inst in &report.instances {
            assert!(inst.lower_bound > 0.0);
            assert_eq!(inst.entries.len(), 3);
            // The certified sandwich on every enumerated instance.
            if let Some(exact) = inst.exhaustive {
                assert!(inst.lower_bound <= exact * (1.0 + CERTIFICATE_TOLERANCE));
                for e in &inst.entries {
                    if let Some(cost) = e.cost {
                        assert!(
                            exact <= cost * (1.0 + CERTIFICATE_TOLERANCE),
                            "{}: heuristic {cost} beat exhaustive {exact}",
                            e.heuristic
                        );
                    }
                }
            }
        }
        assert_eq!(report.summary.len(), 3);
        let rendered = report.to_string();
        assert!(rendered.contains("violations: bound=0 ordering=0"), "{rendered}");
    }

    #[test]
    fn tournament_is_deterministic_under_seed() {
        let a = run_tournament(&smoke_config());
        let b = run_tournament(&smoke_config());
        assert_eq!(a, b);
    }

    #[test]
    fn report_serializes_to_a_named_map() {
        let report = run_tournament(&TournamentConfig {
            app_counts: vec![2],
            budget: 4,
            ..TournamentConfig::default()
        });
        let value = report.serialize();
        assert!(value.get("instances").is_some());
        assert!(value.get("bound_violations").is_some());
        let text = serde_json::to_string_pretty(&value);
        assert!(text.is_ok());
    }
}
