//! Exhaustive enumeration for tiny instances.
//!
//! The paper notes the full design space is far too large to enumerate
//! (§4.3.1), which is why the design solver is a heuristic. For *tiny*
//! instances — a couple of applications, the Table 2 catalog — joint
//! enumeration of every technique × placement combination is tractable,
//! giving the exact optimum. The test suites and the tournament harness
//! use this to bound how far the heuristics land from optimal where the
//! truth is computable.

use std::fmt;

use dsd_protection::{TechniqueConfig, TechniqueId};
use dsd_recovery::Placement;
use dsd_units::Dollars;
use dsd_workload::AppId;

use crate::candidate::{Candidate, PlacementOptions};
use crate::env::Environment;

/// Result of an exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The optimal design under the environment's objective, if any
    /// feasible design exists.
    pub best: Option<Candidate>,
    /// Complete (feasible) designs enumerated.
    pub feasible: u64,
    /// Partial branches pruned as infeasible.
    pub infeasible: u64,
}

/// Upper bound on the joint choice space [`exhaustive_optimal`] accepts,
/// as Π (techniques × configurations × placements) per application.
pub const MAX_COMBINATIONS: u128 = 2_000_000;

/// Why an exhaustive enumeration was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustiveError {
    /// The joint choice space exceeds the configured limit — use the
    /// heuristic solver instead.
    SpaceTooLarge {
        /// Estimated size of the joint choice space (saturating).
        combinations: u128,
        /// The limit the estimate was checked against.
        limit: u128,
    },
}

impl fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustiveError::SpaceTooLarge { combinations, limit } => write!(
                f,
                "exhaustive space of {combinations} combinations exceeds the limit of {limit}; \
                 use the heuristic solver"
            ),
        }
    }
}

impl std::error::Error for ExhaustiveError {}

/// Knobs for [`exhaustive_optimal_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveOptions {
    /// Refuse spaces larger than this many combinations.
    pub limit: u128,
    /// Enumerate each technique's full discrete configuration grid
    /// ([`dsd_protection::Technique::config_space`]) instead of only the
    /// default configuration. This is the space the heuristics' `Full`
    /// polish searches, so with the grid enabled the exhaustive optimum
    /// is a true floor for addition-free heuristic outcomes.
    pub config_grid: bool,
}

impl Default for ExhaustiveOptions {
    fn default() -> Self {
        ExhaustiveOptions { limit: MAX_COMBINATIONS, config_grid: false }
    }
}

/// One enumerable choice for one application.
type Choice = (TechniqueId, TechniqueConfig, Placement);

/// Builds the per-application choice lists.
fn choice_lists(env: &Environment, options: &ExhaustiveOptions) -> Vec<(AppId, Vec<Choice>)> {
    let mut choices = Vec::with_capacity(env.workloads.len());
    for app in env.workloads.iter() {
        let class = app.class_with(&env.thresholds);
        let mut list = Vec::new();
        for (tid, technique) in env.catalog.eligible_for(class) {
            let configs = if options.config_grid {
                technique.config_space()
            } else {
                vec![technique.default_config()]
            };
            for placement in PlacementOptions::enumerate(env, tid) {
                for config in &configs {
                    list.push((tid, *config, placement));
                }
            }
        }
        choices.push((app.id, list));
    }
    choices
}

/// Estimated size of the joint choice space [`exhaustive_optimal_with`]
/// would enumerate: Π per-app choices (saturating at `u128::MAX`).
#[must_use]
pub fn combination_count(env: &Environment, options: &ExhaustiveOptions) -> u128 {
    choice_lists(env, options)
        .iter()
        .fold(1u128, |acc, (_, list)| acc.saturating_mul(list.len().max(1) as u128))
}

/// Enumerates every joint assignment of class-eligible techniques ×
/// configurations × placements and returns the exact optimum under the
/// environment's objective. [`exhaustive_optimal`] is the
/// default-options shorthand.
///
/// # Errors
///
/// Returns [`ExhaustiveError::SpaceTooLarge`] when the estimated
/// combination count exceeds `options.limit` (spaces *at* the limit are
/// enumerated).
pub fn exhaustive_optimal_with(
    env: &Environment,
    options: ExhaustiveOptions,
) -> Result<ExhaustiveResult, ExhaustiveError> {
    let choices = choice_lists(env, &options);
    let combinations =
        choices.iter().fold(1u128, |acc, (_, list)| acc.saturating_mul(list.len().max(1) as u128));
    if combinations > options.limit {
        return Err(ExhaustiveError::SpaceTooLarge { combinations, limit: options.limit });
    }

    let mut result = ExhaustiveResult { best: None, feasible: 0, infeasible: 0 };
    let mut best_score = Dollars::INFINITE;
    let mut stack = Candidate::empty(env);
    descend(env, &choices, 0, &mut stack, &mut best_score, &mut result);
    Ok(result)
}

/// Enumerates with [`ExhaustiveOptions::default`]: default technique
/// configurations only, refusing spaces above [`MAX_COMBINATIONS`].
///
/// # Errors
///
/// Returns [`ExhaustiveError::SpaceTooLarge`] when the space exceeds
/// [`MAX_COMBINATIONS`] — use the heuristic solver instead.
pub fn exhaustive_optimal(env: &Environment) -> Result<ExhaustiveResult, ExhaustiveError> {
    exhaustive_optimal_with(env, ExhaustiveOptions::default())
}

fn descend(
    env: &Environment,
    choices: &[(AppId, Vec<Choice>)],
    depth: usize,
    partial: &mut Candidate,
    best_score: &mut Dollars,
    result: &mut ExhaustiveResult,
) {
    if depth == choices.len() {
        result.feasible += 1;
        let mut complete = partial.clone();
        let score = env.score(complete.evaluate(env));
        if score < *best_score {
            *best_score = score;
            result.best = Some(complete);
        }
        return;
    }
    let (app, options) = &choices[depth];
    for (tid, config, placement) in options {
        let mut next = partial.clone();
        if next.try_assign(env, *app, *tid, *config, *placement).is_err() {
            result.infeasible += 1;
            continue;
        }
        descend(env, choices, depth + 1, &mut next, best_score, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::design_solver::DesignSolver;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn tiny_env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(4)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn enumeration_finds_a_feasible_optimum() {
        let env = tiny_env(1);
        let result = exhaustive_optimal(&env).expect("tiny space");
        let best = result.best.expect("feasible");
        assert!(best.is_complete(&env));
        assert!(result.feasible > 0);
        // One app, one XP slot per site: 4 gold techniques x 1 mirrored
        // placement + coverage of the eligible space.
        assert!(result.feasible <= 8);
    }

    #[test]
    fn heuristic_solver_matches_the_exact_optimum_on_tiny_instances() {
        for apps in [1usize, 2] {
            let env = tiny_env(apps);
            let exact = exhaustive_optimal(&env)
                .expect("tiny space")
                .best
                .expect("feasible")
                .cost()
                .total()
                .as_f64();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let heuristic = DesignSolver::new(&env)
                .solve(Budget::iterations(30), &mut rng)
                .best
                .expect("feasible")
                .cost()
                .total()
                .as_f64();
            // The heuristic also optimizes configurations and adds
            // resources, so it may legitimately beat the default-config
            // enumeration; it must never be meaningfully worse.
            assert!(
                heuristic <= exact * 1.01,
                "apps={apps}: heuristic {heuristic} vs exact {exact}"
            );
        }
    }

    #[test]
    fn config_grid_explores_a_strict_superset() {
        let env = tiny_env(1);
        let defaults = ExhaustiveOptions::default();
        let grid = ExhaustiveOptions { config_grid: true, ..defaults };
        let n_default = combination_count(&env, &defaults);
        let n_grid = combination_count(&env, &grid);
        assert!(n_grid > n_default, "grid {n_grid} must exceed default {n_default}");
        let best_default =
            exhaustive_optimal_with(&env, defaults).unwrap().best.unwrap().cost().total();
        let best_grid = exhaustive_optimal_with(&env, grid).unwrap().best.unwrap().cost().total();
        assert!(
            best_grid.as_f64() <= best_default.as_f64() * (1.0 + 1e-9),
            "a superset search may only improve the optimum"
        );
    }

    #[test]
    fn limit_boundary_is_exact() {
        let env = tiny_env(2);
        let count = combination_count(&env, &ExhaustiveOptions::default());
        assert!(count > 1, "boundary test needs a nontrivial space");

        // At the limit: enumerated.
        let at = ExhaustiveOptions { limit: count, ..ExhaustiveOptions::default() };
        assert!(exhaustive_optimal_with(&env, at).is_ok());

        // One above the space: also enumerated.
        let above = ExhaustiveOptions { limit: count + 1, ..ExhaustiveOptions::default() };
        assert!(exhaustive_optimal_with(&env, above).is_ok());

        // One below: refused, reporting both figures.
        let below = ExhaustiveOptions { limit: count - 1, ..ExhaustiveOptions::default() };
        let err = exhaustive_optimal_with(&env, below).expect_err("space exceeds limit");
        assert_eq!(err, ExhaustiveError::SpaceTooLarge { combinations: count, limit: count - 1 });
        let msg = err.to_string();
        assert!(msg.contains(&count.to_string()) && msg.contains("heuristic solver"), "{msg}");
    }

    #[test]
    fn oversized_spaces_are_refused() {
        let env = {
            let mk = |i: usize| {
                Site::new(i, format!("S{i}"))
                    .with_array_slot(DeviceSpec::xp1200())
                    .with_array_slot(DeviceSpec::msa1500())
                    .with_tape_library(DeviceSpec::tape_library_high())
                    .with_compute(8)
            };
            Environment::new(
                WorkloadSet::scaled_paper_mix(12),
                Arc::new(Topology::fully_connected((0..4).map(mk).collect(), NetworkSpec::high())),
                TechniqueCatalog::table2(),
                FailureModel::new(FailureRates::case_study()),
            )
        };
        let err = exhaustive_optimal(&env).expect_err("space is astronomically large");
        let ExhaustiveError::SpaceTooLarge { combinations, limit } = err;
        assert!(combinations > MAX_COMBINATIONS);
        assert_eq!(limit, MAX_COMBINATIONS);
    }
}
