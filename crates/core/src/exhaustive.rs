//! Exhaustive enumeration for tiny instances.
//!
//! The paper notes the full design space is far too large to enumerate
//! (§4.3.1), which is why the design solver is a heuristic. For *tiny*
//! instances — a couple of applications, the Table 2 catalog — joint
//! enumeration of every technique × placement combination is tractable,
//! giving the exact optimum. The test suites use this to bound how far
//! the heuristic lands from optimal where the truth is computable.

use dsd_protection::TechniqueId;
use dsd_recovery::Placement;
use dsd_units::Dollars;
use dsd_workload::AppId;

use crate::candidate::{Candidate, PlacementOptions};
use crate::env::Environment;

/// Result of an exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The optimal design under the environment's objective, if any
    /// feasible design exists.
    pub best: Option<Candidate>,
    /// Complete (feasible) designs enumerated.
    pub feasible: u64,
    /// Partial branches pruned as infeasible.
    pub infeasible: u64,
}

/// Upper bound on the joint choice space [`exhaustive_optimal`] accepts,
/// as Π (techniques × placements) per application.
pub const MAX_COMBINATIONS: u128 = 2_000_000;

/// Enumerates every joint assignment of class-eligible techniques ×
/// placements (default configurations) and returns the exact optimum
/// under the environment's objective.
///
/// # Errors
///
/// Returns the estimated combination count when it exceeds
/// [`MAX_COMBINATIONS`] — use the heuristic solver instead.
pub fn exhaustive_optimal(env: &Environment) -> Result<ExhaustiveResult, u128> {
    // Per-application choice lists.
    let mut choices: Vec<(AppId, Vec<(TechniqueId, Placement)>)> = Vec::new();
    let mut combinations: u128 = 1;
    for app in env.workloads.iter() {
        let class = app.class_with(&env.thresholds);
        let mut list = Vec::new();
        for (tid, _) in env.catalog.eligible_for(class) {
            for placement in PlacementOptions::enumerate(env, tid) {
                list.push((tid, placement));
            }
        }
        combinations = combinations.saturating_mul(list.len().max(1) as u128);
        choices.push((app.id, list));
    }
    if combinations > MAX_COMBINATIONS {
        return Err(combinations);
    }

    let mut result = ExhaustiveResult { best: None, feasible: 0, infeasible: 0 };
    let mut best_score = Dollars::INFINITE;
    let mut stack = Candidate::empty(env);
    descend(env, &choices, 0, &mut stack, &mut best_score, &mut result);
    Ok(result)
}

fn descend(
    env: &Environment,
    choices: &[(AppId, Vec<(TechniqueId, Placement)>)],
    depth: usize,
    partial: &mut Candidate,
    best_score: &mut Dollars,
    result: &mut ExhaustiveResult,
) {
    if depth == choices.len() {
        result.feasible += 1;
        let mut complete = partial.clone();
        let score = env.score(complete.evaluate(env));
        if score < *best_score {
            *best_score = score;
            result.best = Some(complete);
        }
        return;
    }
    let (app, options) = &choices[depth];
    for (tid, placement) in options {
        let config = env.catalog[*tid].default_config();
        let mut next = partial.clone();
        if next.try_assign(env, *app, *tid, config, *placement).is_err() {
            result.infeasible += 1;
            continue;
        }
        descend(env, choices, depth + 1, &mut next, best_score, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::design_solver::DesignSolver;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn tiny_env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(4)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn enumeration_finds_a_feasible_optimum() {
        let env = tiny_env(1);
        let result = exhaustive_optimal(&env).expect("tiny space");
        let best = result.best.expect("feasible");
        assert!(best.is_complete(&env));
        assert!(result.feasible > 0);
        // One app, one XP slot per site: 4 gold techniques x 1 mirrored
        // placement + coverage of the eligible space.
        assert!(result.feasible <= 8);
    }

    #[test]
    fn heuristic_solver_matches_the_exact_optimum_on_tiny_instances() {
        for apps in [1usize, 2] {
            let env = tiny_env(apps);
            let exact = exhaustive_optimal(&env)
                .expect("tiny space")
                .best
                .expect("feasible")
                .cost()
                .total()
                .as_f64();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let heuristic = DesignSolver::new(&env)
                .solve(Budget::iterations(30), &mut rng)
                .best
                .expect("feasible")
                .cost()
                .total()
                .as_f64();
            // The heuristic also optimizes configurations and adds
            // resources, so it may legitimately beat the default-config
            // enumeration; it must never be meaningfully worse.
            assert!(
                heuristic <= exact * 1.01,
                "apps={apps}: heuristic {heuristic} vs exact {exact}"
            );
        }
    }

    #[test]
    fn oversized_spaces_are_refused() {
        let env = {
            let mk = |i: usize| {
                Site::new(i, format!("S{i}"))
                    .with_array_slot(DeviceSpec::xp1200())
                    .with_array_slot(DeviceSpec::msa1500())
                    .with_tape_library(DeviceSpec::tape_library_high())
                    .with_compute(8)
            };
            Environment::new(
                WorkloadSet::scaled_paper_mix(12),
                Arc::new(Topology::fully_connected((0..4).map(mk).collect(), NetworkSpec::high())),
                TechniqueCatalog::table2(),
                FailureModel::new(FailureRates::case_study()),
            )
        };
        let err = exhaustive_optimal(&env).expect_err("space is astronomically large");
        assert!(err > MAX_COMBINATIONS);
    }
}
