//! Reconfiguration moves (paper §3.1.3): remove one application and give
//! it a new technique and data layout, with the paper's selection biases.

use std::collections::HashMap;

use rand::Rng;

use dsd_protection::TechniqueId;
use dsd_recovery::{Placement, ScenarioOutcomeCache};
use dsd_resources::{ArrayRef, DeviceRef};
use dsd_units::Dollars;
use dsd_workload::AppId;

use crate::candidate::{Candidate, PlacementOptions};
use crate::delta::Move;
use crate::env::Environment;

/// Samples an index from non-negative weights; uniform when all weights
/// are zero. Returns `None` for an empty slice.
pub(crate) fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Some(rng.gen_range(0..weights.len()));
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return Some(i);
        }
        target -= w;
    }
    Some(weights.len() - 1)
}

/// Performs randomized reconfiguration moves on candidates, implementing
/// the paper's three biases:
///
/// * the application to reconfigure is chosen with probability biased
///   toward those contributing most to the overall cost;
/// * the new technique is chosen among class-eligible techniques with
///   probability `1 − cost_dpt / Σ cost_dpt` (cheap techniques favored),
///   where each technique's incremental cost is evaluated in the context
///   of the full candidate solution;
/// * resources are chosen with probability proportional to
///   `α·(1 − util) + (1 − α)·(1 − usage)`, where `usage` is the fraction
///   of past reconfigurations of this application that used the resource
///   (load balance vs. historical diversity), and currently unused
///   resources are excluded unless nothing is in use yet.
#[derive(Debug, Clone)]
pub struct Reconfigurator {
    alpha_util: f64,
    usage: HashMap<(AppId, ArrayRef), u32>,
    attempts: HashMap<AppId, u32>,
}

impl Default for Reconfigurator {
    /// α_util = 0.9: the paper sets it "close to one, favoring
    /// load-balance over historical diversity".
    fn default() -> Self {
        Reconfigurator::new(0.9)
    }
}

impl Reconfigurator {
    /// Creates a reconfigurator with the given load-balance weight.
    ///
    /// # Panics
    ///
    /// Panics if `alpha_util` is outside `[0, 1]`.
    #[must_use]
    pub fn new(alpha_util: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha_util), "alpha must be in [0,1]: {alpha_util}");
        Reconfigurator { alpha_util, usage: HashMap::new(), attempts: HashMap::new() }
    }

    /// Applies one reconfiguration move to `candidate`: removes a biased
    /// random application and re-protects it with a probabilistically
    /// chosen technique and layout. Returns `false` (leaving the
    /// candidate unchanged) when no feasible re-assignment exists.
    pub fn reconfigure<R: Rng + ?Sized>(
        &mut self,
        env: &Environment,
        candidate: &mut Candidate,
        rng: &mut R,
    ) -> bool {
        let mut scache = ScenarioOutcomeCache::new();
        self.reconfigure_with(env, candidate, &mut scache, rng)
    }

    /// [`Reconfigurator::reconfigure`] reusing a caller-held scenario
    /// cache: technique-evaluation trials are applied and undone in
    /// place, and unchanged scenarios replay across trials. Consumes the
    /// same RNG stream as the uncached entry point.
    pub fn reconfigure_with<R: Rng + ?Sized>(
        &mut self,
        env: &Environment,
        candidate: &mut Candidate,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> bool {
        let Some(app) = self.choose_app(env, candidate, scache, rng) else {
            return false;
        };
        let original = *candidate.assignment(app).expect("chosen app is assigned");
        candidate.remove_app(app);
        *self.attempts.entry(app).or_insert(0) += 1;

        // Evaluate each eligible technique's incremental cost with a
        // bias-sampled placement.
        let class = env.workloads[app].class_with(&env.thresholds);
        let mut options: Vec<(TechniqueId, Placement, Dollars)> = Vec::new();
        for (tid, technique) in env.catalog.eligible_for(class) {
            let Some(placement) = self.choose_placement(env, candidate, app, tid, rng) else {
                continue;
            };
            let mv = Move::Reassign {
                app,
                technique: tid,
                config: technique.default_config(),
                placement,
            };
            let Ok(undo) = candidate.apply_move(env, &mv) else {
                continue;
            };
            dsd_obs::add(mv.trial_counter(), 1);
            let cost = env.score(candidate.evaluate_with(env, scache));
            candidate.undo_move(undo);
            options.push((tid, placement, cost));
        }

        if options.is_empty() {
            // Nothing feasible: restore the original assignment.
            candidate
                .try_assign(env, app, original.technique, original.config, original.placement)
                .expect("restoring a previously feasible assignment");
            return false;
        }

        // P(dpt) = 1 - cost/Σcost, degenerate cases uniform.
        let total: f64 = options.iter().map(|(_, _, c)| c.as_f64()).sum();
        let weights: Vec<f64> = if options.len() == 1 || total <= 0.0 || !total.is_finite() {
            vec![1.0; options.len()]
        } else {
            options.iter().map(|(_, _, c)| 1.0 - c.as_f64() / total).collect()
        };
        let mut order: Vec<usize> = Vec::with_capacity(options.len());
        let mut remaining: Vec<usize> = (0..options.len()).collect();
        let mut w = weights;
        // Sample a preference order so we can fall back if the sampled
        // choice turns out infeasible on the real candidate.
        while !remaining.is_empty() {
            let k = weighted_index(&w, rng).expect("non-empty");
            order.push(remaining.swap_remove(k));
            w.swap_remove(k);
        }

        for idx in order {
            let (tid, placement, _) = options[idx];
            let config = env.catalog[tid].default_config();
            if candidate.try_assign(env, app, tid, config, placement).is_ok() {
                dsd_obs::add("solver.accepted.reassign", 1);
                self.record_usage(app, &placement);
                return true;
            }
        }

        candidate
            .try_assign(env, app, original.technique, original.config, original.placement)
            .expect("restoring a previously feasible assignment");
        false
    }

    /// Chooses the application to reconfigure, biased toward the largest
    /// contributors to overall cost (expected penalties, plus a small
    /// priority term so fully-protected expensive applications remain
    /// eligible).
    fn choose_app<R: Rng + ?Sized>(
        &self,
        env: &Environment,
        candidate: &mut Candidate,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> Option<AppId> {
        let apps: Vec<AppId> = candidate.assignments().keys().copied().collect();
        if apps.is_empty() {
            return None;
        }
        let cost = candidate.evaluate_with(env, scache);
        let weights: Vec<f64> = apps
            .iter()
            .map(|app| {
                let penalty =
                    cost.penalties.per_app.get(app).map_or(0.0, |(o, l)| (*o + *l).as_f64());
                let penalty = if penalty.is_finite() { penalty } else { 1e12 };
                penalty + env.workloads[*app].priority().as_f64() * 1e-3 + 1.0
            })
            .collect();
        weighted_index(&weights, rng).map(|i| apps[i])
    }

    /// Chooses a placement for (app, technique) with the paper's resource
    /// bias. Returns `None` when the technique has no structurally
    /// feasible placement.
    fn choose_placement<R: Rng + ?Sized>(
        &self,
        env: &Environment,
        candidate: &Candidate,
        app: AppId,
        technique: TechniqueId,
        rng: &mut R,
    ) -> Option<Placement> {
        let all = PlacementOptions::enumerate(env, technique);
        if all.is_empty() {
            return None;
        }
        // Prefer placements whose arrays are already in use (paper:
        // "currently unused resources are excluded, unless the resource
        // list is empty").
        let provision = candidate.provision();
        let in_use: Vec<Placement> = all
            .iter()
            .copied()
            .filter(|p| {
                provision.array(p.primary).is_some()
                    && p.mirror.is_none_or(|m| provision.array(m).is_some())
            })
            .collect();
        let pool = if in_use.is_empty() { all } else { in_use };

        let attempts = f64::from(*self.attempts.get(&app).unwrap_or(&0)).max(1.0);
        let weights: Vec<f64> = pool
            .iter()
            .map(|p| {
                let mut devices = vec![p.primary];
                if let Some(m) = p.mirror {
                    devices.push(m);
                }
                let score: f64 = devices
                    .iter()
                    .map(|&d| {
                        let util = provision.utilization(DeviceRef::Array(d));
                        let usage = f64::from(*self.usage.get(&(app, d)).unwrap_or(&0)) / attempts;
                        self.alpha_util * (1.0 - util)
                            + (1.0 - self.alpha_util) * (1.0 - usage.min(1.0))
                    })
                    .sum::<f64>()
                    / devices.len() as f64;
                score.max(0.0)
            })
            .collect();
        weighted_index(&weights, rng).map(|i| pool[i])
    }

    fn record_usage(&mut self, app: AppId, placement: &Placement) {
        *self.usage.entry((app, placement.primary)).or_insert(0) += 1;
        if let Some(m) = placement.mirror {
            *self.usage.entry((app, m)).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("S{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    fn complete_candidate(env: &Environment, rng: &mut ChaCha8Rng) -> Candidate {
        let mut c = Candidate::empty(env);
        for app in env.workloads.iter() {
            let class = app.class_with(&env.thresholds);
            let mut done = false;
            for (tid, t) in env.catalog.eligible_for(class) {
                for p in PlacementOptions::enumerate(env, tid) {
                    if c.try_assign(env, app.id, tid, t.default_config(), p).is_ok() {
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
            assert!(done);
        }
        let _ = rng;
        c
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let i = weighted_index(&[0.0, 1.0, 9.0], &mut rng).unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 5, "{counts:?}");
    }

    #[test]
    fn weighted_index_uniform_on_zero_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[weighted_index(&[0.0; 4], &mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(weighted_index(&[], &mut rng), None);
    }

    #[test]
    fn reconfigure_keeps_candidate_complete_and_feasible() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut c = complete_candidate(&e, &mut rng);
        let mut r = Reconfigurator::default();
        for _ in 0..20 {
            let _ = r.reconfigure(&e, &mut c, &mut rng);
            assert!(c.is_complete(&e), "reconfiguration must never lose applications");
            assert!(c.validate(&e).is_ok(), "{:?}", c.validate(&e));
            assert!(c.evaluate(&e).total().is_finite());
        }
    }

    #[test]
    fn reconfigure_respects_class_eligibility() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut c = complete_candidate(&e, &mut rng);
        let mut r = Reconfigurator::default();
        for _ in 0..30 {
            r.reconfigure(&e, &mut c, &mut rng);
        }
        for (app, a) in c.assignments() {
            let class = e.workloads[*app].class_with(&e.thresholds);
            assert!(
                e.catalog[a.technique].category.satisfies(class),
                "{app} got a below-class technique"
            );
        }
    }

    #[test]
    fn reconfigure_on_empty_candidate_is_noop() {
        let e = env(1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut c = Candidate::empty(&e);
        let mut r = Reconfigurator::default();
        assert!(!r.reconfigure(&e, &mut c, &mut rng));
        assert_eq!(c.assigned_count(), 0);
    }

    #[test]
    fn reconfigure_is_deterministic_under_seed() {
        let e = env(4);
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut c = complete_candidate(&e, &mut rng);
            let mut r = Reconfigurator::default();
            for _ in 0..10 {
                r.reconfigure(&e, &mut c, &mut rng);
            }
            c.evaluate(&e).total().as_f64()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = Reconfigurator::new(1.5);
    }
}
