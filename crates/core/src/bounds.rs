//! Relaxation lower bounds and optimality certificates.
//!
//! The solvers report a design cost but, by themselves, give no evidence
//! of how far from optimal it is. This module computes a cheap *lower
//! bound* on the total annual cost of **any** complete design over the
//! solvers' discretized configuration space (paper §3.2), by relaxing
//! exactly the couplings that make the real problem hard:
//!
//! * **Per-app relaxation** — each application independently picks its
//!   cheapest eligible technique, ignoring contention with other
//!   applications. Summing per-app minima is valid because both cost
//!   components decompose per application: the outlay floor below charges
//!   each app only for allocation-proportional resources, and
//!   [`dsd_recovery::PenaltySummary`] is an exact sum of per-app
//!   penalties.
//! * **Fractional outlay** — integer disk/cartridge/drive/link/server
//!   counts are relaxed to fractional demand-derived minima priced at the
//!   *cheapest* per-unit rate in the topology. Every priced dimension
//!   (array capacity, tape capacity, tape bandwidth, link bandwidth,
//!   servers) is one whose allocations *sum* across the applications
//!   sharing a device, so per-app fractions never over-count. Array
//!   *bandwidth* is deliberately not priced: on a disk array one unit
//!   serves both dimensions, and `max(cap, bw)` demands do not sum
//!   across apps.
//! * **Relaxed penalties** — each app's penalty floor is its penalty in a
//!   *singleton* design (the app alone in the environment) with every
//!   provisioned device topped up to its spec maximum. A real design
//!   shares spare bandwidth with other applications and enumerates a
//!   superset of failure scenarios, so its per-app penalty can only be
//!   higher.
//! * **Capacity floor on shared enclosures** — the datasets must live on
//!   *some* arrays: at least `ceil(Σ capacity / largest array)` enclosures
//!   (at least two when some application is only protectable by
//!   mirroring), each costing at least the cheapest enclosure fixed
//!   price, plus at least one facility (two when mirror-forced).
//!
//! Each term is a valid bound in isolation and they charge disjoint cost
//! components, so their sum is a valid bound on the total. The
//! [`Certificate`] pairs the bound with an achieved cost and is surfaced
//! by `dsd explain`, [`crate::SolveOutcome::certify`], and the tournament
//! harness; `tests/bound_soundness.rs` re-verifies soundness empirically
//! against exhaustive enumeration, every heuristic, and delta-evaluated
//! move sequences.

use serde::Serialize;

use dsd_protection::Technique;
use dsd_units::{Dollars, HOURS_PER_YEAR};
use dsd_workload::{AppId, ApplicationWorkload};

use crate::candidate::{Candidate, PlacementOptions};
use crate::env::Environment;

/// Cheapest per-unit purchase rates available anywhere in the topology.
/// A resource class that exists nowhere is priced at zero (the relaxation
/// simply charges nothing for it, which keeps the bound valid).
#[derive(Debug, Clone, Copy, Default)]
struct Rates {
    /// $ per GB of disk array capacity.
    array_per_gb: f64,
    /// $ per GB of tape cartridge capacity.
    tape_per_gb: f64,
    /// $ per MB/s of tape drive bandwidth.
    tape_per_mbps: f64,
    /// $ per MB/s of inter-site link bandwidth.
    link_per_mbps: f64,
    /// $ per compute server.
    server: f64,
}

fn min_rate(iter: impl Iterator<Item = f64>) -> f64 {
    iter.filter(|r| r.is_finite() && *r >= 0.0).fold(f64::INFINITY, f64::min)
}

fn finite_or_zero(r: f64) -> f64 {
    if r.is_finite() {
        r
    } else {
        0.0
    }
}

impl Rates {
    fn of(env: &Environment) -> Rates {
        let sites = env.topology.sites();
        let array_per_gb = min_rate(sites.iter().flat_map(|s| s.array_slots.iter()).map(|spec| {
            let unit = spec.capacity_per_unit.as_f64();
            if unit > 0.0 {
                spec.cost_per_capacity_unit.as_f64() / unit
            } else {
                f64::INFINITY
            }
        }));
        let tape_specs = || sites.iter().flat_map(|s| s.tape_slots.iter());
        let tape_per_gb = min_rate(tape_specs().map(|spec| {
            let unit = spec.capacity_per_unit.as_f64();
            if unit > 0.0 {
                spec.cost_per_capacity_unit.as_f64() / unit
            } else {
                f64::INFINITY
            }
        }));
        let tape_per_mbps = min_rate(tape_specs().map(|spec| {
            let unit = spec.bandwidth_per_unit.as_f64();
            if unit > 0.0 {
                spec.cost_per_bandwidth_unit.as_f64() / unit
            } else {
                f64::INFINITY
            }
        }));
        let link_per_mbps = min_rate(env.topology.routes().iter().map(|r| {
            let unit = r.network.link_bandwidth.as_f64();
            if unit > 0.0 {
                r.network.cost_per_link.as_f64() / unit
            } else {
                f64::INFINITY
            }
        }));
        let server = min_rate(sites.iter().map(|s| s.compute.cost_per_server.as_f64()));
        Rates {
            array_per_gb: finite_or_zero(array_per_gb),
            tape_per_gb: finite_or_zero(tape_per_gb),
            tape_per_mbps: finite_or_zero(tape_per_mbps),
            link_per_mbps: finite_or_zero(link_per_mbps),
            server: finite_or_zero(server),
        }
    }
}

/// Fractional annual outlay floor for protecting `app` with `technique`,
/// minimized analytically over *every* valid configuration (not just the
/// discrete grid): array gigabytes, tape cartridges/drives, link
/// bandwidth, and servers at the topology's cheapest per-unit rates,
/// amortized like real purchases, plus the (unamortized) annual vault
/// media consumables.
fn technique_outlay_floor(
    env: &Environment,
    app: &ApplicationWorkload,
    t: &Technique,
    rates: &Rates,
) -> Dollars {
    let data_gb = app.capacity().as_f64();
    let mut purchase = 0.0;

    // Primary array capacity (dataset + snapshot space) plus the mirror
    // copy. Both are config-independent; array bandwidth is not priced
    // (see the module docs).
    let mut array_gb = data_gb;
    if t.has_backup() {
        array_gb += data_gb * env.sizing.snapshot_space_fraction;
    }
    if t.has_mirror() {
        array_gb += data_gb;
    }
    purchase += array_gb * rates.array_per_gb;

    if let Some(chain) = t.backup {
        // Retained full copies; the incremental-delta term is omitted
        // because it shrinks with the backup cycle (it is ≥ 0 for every
        // configuration).
        purchase += data_gb * env.sizing.retained_tape_copies * rates.tape_per_gb;
        // The stream rate is data / min(window, cycle) ≥ data / window
        // for every cycle, so the window rate is the config-free floor.
        let window = env.sizing.backup_window.as_secs();
        let mut tape_mbps = if window > 0.0 { app.capacity().as_megabytes() / window } else { 0.0 };
        if chain.is_incremental() {
            tape_mbps += app.unique_update_rate().as_f64();
        }
        purchase += tape_mbps * rates.tape_per_mbps;
    }

    if let Some(m) = t.mirror {
        let net_mbps = if m.sync {
            app.peak_update().as_f64() * env.sizing.sync_peak_headroom
        } else {
            app.avg_update().as_f64()
        };
        purchase += net_mbps * rates.link_per_mbps;
    }

    // One primary server, plus the fractional failover spare share
    // (spare pools hold ceil(ratio × demand) ≥ ratio × demand servers).
    let mut servers = 1.0;
    if t.is_failover() {
        servers += env.sizing.failover_spare_ratio;
    }
    purchase += servers * rates.server;

    let mut annual = Dollars::new(purchase.max(0.0)).amortized_annual();

    // Vault media is an annual consumable, not an amortized purchase.
    if let Some(chain) = t.backup {
        if chain.vault && chain.vault_cycle.as_hours() > 0.0 {
            let shipments = HOURS_PER_YEAR / chain.vault_cycle.as_hours();
            annual += Dollars::new(data_gb * rates.tape_per_gb * shipments);
        }
    }
    annual
}

/// Tops up every device the candidate provisioned to its spec maximum
/// (extra disks, tape drives, links) — the most spare recovery bandwidth
/// any real design could ever give this allocation.
fn max_out(env: &Environment, candidate: &mut Candidate) {
    for r in candidate.provision().provisioned_arrays() {
        let spec = &env.topology.site(r.site).array_slots[r.slot];
        let Some(state) = candidate.provision().array(r) else { continue };
        let headroom =
            spec.max_capacity_units.saturating_sub(state.capacity_units + state.extra_units);
        if headroom > 0 {
            let _ = candidate.provision_mut().add_extra_array_units(r, headroom);
        }
    }
    for r in candidate.provision().provisioned_tapes() {
        let spec = &env.topology.site(r.site).tape_slots[r.slot];
        let Some(state) = candidate.provision().tape(r) else { continue };
        let headroom = spec.max_bandwidth_units.saturating_sub(state.drives + state.extra_drives);
        if headroom > 0 {
            let _ = candidate.provision_mut().add_extra_tape_drives(r, headroom);
        }
    }
    for rid in candidate.provision().active_routes() {
        let spec = &env.topology.route(rid).network;
        let state = candidate.provision().link(rid);
        let headroom = spec.max_links.saturating_sub(state.links + state.extra_links);
        if headroom > 0 {
            let _ = candidate.provision_mut().add_extra_links(rid, headroom);
        }
    }
}

/// Lower bound contribution of a single application: the minimum, over
/// its eligible techniques, of the fractional outlay floor plus the
/// maxed-singleton penalty floor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppBound {
    /// The application.
    pub app: AppId,
    /// Name of the technique achieving the minimum, or `"unplaceable"`
    /// when no eligible technique admits a feasible singleton assignment
    /// (the app then contributes zero — vacuously sound, since no
    /// complete design exists either).
    pub technique: String,
    /// Fractional annual outlay floor of the minimizing technique.
    pub outlay_floor: Dollars,
    /// Relaxed annual penalty floor of the minimizing technique.
    pub penalty_floor: Dollars,
}

impl AppBound {
    /// The app's combined contribution to the bound.
    #[must_use]
    pub fn total(&self) -> Dollars {
        self.outlay_floor + self.penalty_floor
    }
}

/// A relaxation lower bound on the total annual cost of any complete
/// design over the discretized configuration space. See the module docs
/// for why each term is valid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LowerBound {
    /// Per-application floors (one entry per workload, in id order).
    pub per_app: Vec<AppBound>,
    /// Capacity-derived floor on array/tape enclosure fixed costs
    /// (amortized annual).
    pub enclosure_floor: Dollars,
    /// Floor on facility costs (amortized annual): one site, or two when
    /// some application is only protectable by mirroring.
    pub facility_floor: Dollars,
    /// Total outlay-side floor: per-app fractional outlays plus the
    /// enclosure and facility floors.
    pub outlay_floor: Dollars,
    /// Total penalty-side floor: sum of per-app penalty floors.
    pub penalty_floor: Dollars,
    /// The bound itself: `outlay_floor + penalty_floor`.
    pub total: Dollars,
}

impl LowerBound {
    /// Which relaxation term dominates the bound, for display.
    #[must_use]
    pub fn dominant_term(&self) -> &'static str {
        let app_outlay = self.outlay_floor - self.enclosure_floor - self.facility_floor;
        let structural = self.enclosure_floor + self.facility_floor;
        if self.penalty_floor >= app_outlay && self.penalty_floor >= structural {
            "penalty floor"
        } else if app_outlay >= structural {
            "fractional outlay"
        } else {
            "capacity floor"
        }
    }
}

/// Computes the relaxation lower bound for an environment.
///
/// Cost: one maxed-singleton evaluation per (app × eligible technique ×
/// placement × grid configuration) — a few thousand cheap single-app
/// evaluations on paper-sized environments.
#[must_use]
pub fn lower_bound(env: &Environment) -> LowerBound {
    let rates = Rates::of(env);
    let mut per_app = Vec::with_capacity(env.workloads.len());
    let mut mirror_forced = false;
    let mut backup_forced = false;

    for app in env.workloads.iter() {
        let class = app.class_with(&env.thresholds);
        // (combined, outlay, penalty, name) of the best technique so far.
        let mut best: Option<(Dollars, Dollars, Dollars, String)> = None;
        let mut placeable_all_mirror = true;
        let mut placeable_all_backup = true;
        let mut placeable_any = false;

        for (tid, t) in env.catalog.eligible_for(class) {
            let outlay = technique_outlay_floor(env, app, t, &rates);
            let mut penalty: Option<Dollars> = None;
            for placement in PlacementOptions::enumerate(env, tid) {
                for config in t.config_space() {
                    let mut singleton = Candidate::empty(env);
                    if singleton.try_assign(env, app.id, tid, config, placement).is_err() {
                        continue;
                    }
                    max_out(env, &mut singleton);
                    let p = singleton.evaluate(env).penalties.total();
                    if penalty.is_none_or(|b| p < b) {
                        penalty = Some(p);
                    }
                }
            }
            let Some(penalty) = penalty else { continue };
            placeable_any = true;
            placeable_all_mirror &= t.has_mirror();
            placeable_all_backup &= t.has_backup();
            let combined = outlay + penalty;
            if best.as_ref().is_none_or(|(b, ..)| combined < *b) {
                best = Some((combined, outlay, penalty, t.name.clone()));
            }
        }

        if placeable_any {
            mirror_forced |= placeable_all_mirror;
            backup_forced |= placeable_all_backup;
        }
        per_app.push(match best {
            Some((_, outlay, penalty, name)) => AppBound {
                app: app.id,
                technique: name,
                outlay_floor: outlay,
                penalty_floor: penalty,
            },
            None => AppBound {
                app: app.id,
                technique: "unplaceable".into(),
                outlay_floor: Dollars::ZERO,
                penalty_floor: Dollars::ZERO,
            },
        });
    }

    let (enclosure_floor, facility_floor) = if env.workloads.is_empty() {
        (Dollars::ZERO, Dollars::ZERO)
    } else {
        structural_floors(env, mirror_forced, backup_forced)
    };

    let app_outlay: Dollars = per_app.iter().map(|a| a.outlay_floor).sum();
    let penalty_floor: Dollars = per_app.iter().map(|a| a.penalty_floor).sum();
    let outlay_floor = app_outlay + enclosure_floor + facility_floor;
    LowerBound {
        per_app,
        enclosure_floor,
        facility_floor,
        outlay_floor,
        penalty_floor,
        total: outlay_floor + penalty_floor,
    }
}

/// Enclosure and facility floors (both amortized annual): any complete
/// design stores every dataset on some array and uses at least one site.
fn structural_floors(
    env: &Environment,
    mirror_forced: bool,
    backup_forced: bool,
) -> (Dollars, Dollars) {
    let sites = env.topology.sites();
    let array_specs: Vec<_> = sites.iter().flat_map(|s| s.array_slots.iter()).collect();

    let mut enclosure = Dollars::ZERO;
    if !array_specs.is_empty() {
        let largest = array_specs
            .iter()
            .map(|spec| spec.total_capacity(spec.max_capacity_units).as_f64())
            .fold(0.0f64, f64::max);
        let total_gb: f64 = env.workloads.iter().map(|a| a.capacity().as_f64()).sum();
        let mut count = if largest > 0.0 { (total_gb / largest).ceil().max(1.0) as u32 } else { 1 };
        if mirror_forced {
            count = count.max(2);
        }
        let min_fixed =
            array_specs.iter().map(|s| s.fixed_cost).fold(Dollars::INFINITE, Dollars::min);
        if min_fixed.is_finite() {
            enclosure = (min_fixed * f64::from(count)).amortized_annual();
        }
    }
    if backup_forced {
        let min_tape_fixed = sites
            .iter()
            .flat_map(|s| s.tape_slots.iter())
            .map(|s| s.fixed_cost)
            .fold(Dollars::INFINITE, Dollars::min);
        if min_tape_fixed.is_finite() {
            enclosure += min_tape_fixed.amortized_annual();
        }
    }

    let mut facilities: Vec<Dollars> = sites.iter().map(|s| s.facility_cost).collect();
    facilities.sort_by(|a, b| a.partial_cmp(b).expect("facility costs are finite"));
    let facility = match (facilities.as_slice(), mirror_forced) {
        ([], _) => Dollars::ZERO,
        ([first, second, ..], true) => (*first + *second).amortized_annual(),
        ([first, ..], _) => first.amortized_annual(),
    };
    (enclosure, facility)
}

/// Relative slack used when comparing an achieved cost against the
/// bound: float summation order differs between the bound and the
/// evaluator, so equality holds only to rounding.
pub const CERTIFICATE_TOLERANCE: f64 = 1e-9;

/// An optimality certificate: a lower bound paired with an achieved cost
/// and the resulting gap. Attached to solver outcomes
/// ([`crate::SolveOutcome::certify`]) and printed by `dsd explain`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Certificate {
    /// The certified lower bound on any complete design's total cost.
    pub lower_bound: Dollars,
    /// The evaluated total cost of the design being certified.
    pub achieved: Dollars,
    /// Optimality gap `(achieved - lower_bound) / lower_bound`, percent.
    /// Zero when the bound is zero or the achieved cost is not finite.
    pub gap_pct: f64,
    /// Which relaxation term dominates the bound.
    pub dominant_term: String,
    /// Outlay-side share of the bound (per-app fractional outlays plus
    /// the enclosure/facility floors).
    pub outlay_floor: Dollars,
    /// Penalty-side share of the bound.
    pub penalty_floor: Dollars,
}

impl Certificate {
    /// Builds the certificate for an achieved total cost.
    #[must_use]
    pub fn new(bound: &LowerBound, achieved: Dollars) -> Self {
        let lb = bound.total.as_f64();
        let gap_pct = if lb > 0.0 && achieved.is_finite() {
            ((achieved.as_f64() - lb) / lb * 100.0).max(0.0)
        } else {
            0.0
        };
        Certificate {
            lower_bound: bound.total,
            achieved,
            gap_pct,
            dominant_term: bound.dominant_term().to_string(),
            outlay_floor: bound.outlay_floor,
            penalty_floor: bound.penalty_floor,
        }
    }

    /// Checks the certificate's defining inequality.
    ///
    /// # Errors
    ///
    /// Returns a description when the achieved cost falls below the
    /// lower bound (beyond [`CERTIFICATE_TOLERANCE`]) — either the bound
    /// or the evaluation is buggy, and the result must not be trusted.
    pub fn verify(&self) -> Result<(), String> {
        if self.achieved.as_f64() < self.lower_bound.as_f64() * (1.0 - CERTIFICATE_TOLERANCE) {
            return Err(format!(
                "achieved cost {} falls below the certified lower bound {} — \
                 bound or evaluation is unsound",
                self.achieved, self.lower_bound
            ));
        }
        Ok(())
    }

    /// Publishes the certificate as `bound.lower` / `bound.gap_pct`
    /// gauges into the installed metrics registry (no-op when none is).
    pub fn publish(&self) {
        dsd_obs::gauge("bound.lower", self.lower_bound.as_f64());
        dsd_obs::gauge("bound.gap_pct", self.gap_pct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::design_solver::DesignSolver;
    use crate::exhaustive::{exhaustive_optimal_with, ExhaustiveOptions};
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn tiny_env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(4)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn bound_is_positive_and_decomposes() {
        let env = tiny_env(2);
        let lb = lower_bound(&env);
        assert!(lb.total > Dollars::ZERO);
        assert_eq!(lb.per_app.len(), 2);
        let app_outlay: Dollars = lb.per_app.iter().map(|a| a.outlay_floor).sum();
        let penalties: Dollars = lb.per_app.iter().map(|a| a.penalty_floor).sum();
        let outlay = app_outlay + lb.enclosure_floor + lb.facility_floor;
        assert!((lb.outlay_floor.as_f64() - outlay.as_f64()).abs() < 1e-6);
        assert!((lb.penalty_floor.as_f64() - penalties.as_f64()).abs() < 1e-6);
        assert!((lb.total.as_f64() - (outlay + penalties).as_f64()).abs() < 1e-6);
        // Two sites carry a mirror-forced gold app: both facility and
        // enclosure floors must reflect two structures.
        assert!(lb.facility_floor >= (Dollars::new(2_000_000.0)).amortized_annual());
        assert!(lb.enclosure_floor >= (Dollars::new(2.0 * 375_000.0)).amortized_annual());
    }

    #[test]
    fn bound_never_exceeds_the_exhaustive_optimum() {
        for apps in [1usize, 2] {
            let env = tiny_env(apps);
            let lb = lower_bound(&env).total;
            let options = ExhaustiveOptions { config_grid: true, ..ExhaustiveOptions::default() };
            let exact = exhaustive_optimal_with(&env, options)
                .expect("tiny space")
                .best
                .expect("feasible")
                .cost()
                .total();
            assert!(
                lb.as_f64() <= exact.as_f64() * (1.0 + CERTIFICATE_TOLERANCE),
                "apps={apps}: bound {lb} exceeds exhaustive optimum {exact}"
            );
        }
    }

    #[test]
    fn bound_never_exceeds_a_heuristic_design() {
        let env = tiny_env(3);
        let lb = lower_bound(&env).total;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let best =
            DesignSolver::new(&env).solve(Budget::iterations(20), &mut rng).best.expect("feasible");
        assert!(lb <= best.cost().total());
    }

    #[test]
    fn unplaceable_apps_contribute_zero() {
        // One site, no tape, low-end array: the gold app has no eligible
        // placement at all.
        let sites =
            vec![Site::new(0, "solo").with_array_slot(DeviceSpec::msa1500()).with_compute(1)];
        let env = Environment::new(
            WorkloadSet::scaled_paper_mix(1),
            Arc::new(Topology::fully_connected(sites, NetworkSpec::med())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        );
        let lb = lower_bound(&env);
        assert_eq!(lb.per_app[0].technique, "unplaceable");
        assert_eq!(lb.per_app[0].total(), Dollars::ZERO);
        assert!(lb.total.is_finite());
    }

    #[test]
    fn certificate_math_and_verification() {
        let env = tiny_env(1);
        let lb = lower_bound(&env);
        let good = Certificate::new(&lb, lb.total * 1.25);
        assert!((good.gap_pct - 25.0).abs() < 1e-6);
        assert!(good.verify().is_ok());
        assert!(!good.dominant_term.is_empty());

        let exact = Certificate::new(&lb, lb.total);
        assert_eq!(exact.gap_pct, 0.0);
        assert!(exact.verify().is_ok());

        let bad = Certificate::new(&lb, lb.total * 0.5);
        let err = bad.verify().expect_err("below the bound must be refused");
        assert!(err.contains("below the certified lower bound"), "{err}");
    }

    #[test]
    fn maxed_singleton_has_no_less_spare_than_any_shared_design() {
        // Structural spot-check of the penalty relaxation: topping up a
        // singleton leaves every provisioned device at its spec maximum.
        let env = tiny_env(1);
        let app = env.workloads.iter().next().unwrap();
        let class = app.class_with(&env.thresholds);
        let (tid, t) = env.catalog.eligible_for(class).next().expect("gold technique");
        let placement = PlacementOptions::enumerate(&env, tid)[0];
        let mut c = Candidate::empty(&env);
        c.try_assign(&env, app.id, tid, t.default_config(), placement).expect("fits");
        max_out(&env, &mut c);
        for r in c.provision().provisioned_arrays() {
            let spec = &env.topology.site(r.site).array_slots[r.slot];
            let state = c.provision().array(r).unwrap();
            assert_eq!(state.capacity_units + state.extra_units, spec.max_capacity_units);
        }
    }
}
