//! Random design selection (paper §4.3): quick feasibility-checked random
//! designs, keeping the cheapest.

use dsd_obs as obs;
use dsd_obs::progress;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::budget::Budget;
use crate::candidate::{Candidate, PlacementOptions};
use crate::design_solver::{SolveOutcome, SolveStats};
use crate::env::Environment;
use crate::flight::{heartbeat, FlightPlan};

/// Generates one uniformly random complete design: for each application
/// (in random order) a uniformly random technique from the whole catalog
/// and a uniformly random placement, with up to `tries_per_app` retries
/// before giving up. Returns `None` when some application could not be
/// placed.
pub fn random_design<R: Rng + ?Sized>(
    env: &Environment,
    tries_per_app: usize,
    rng: &mut R,
) -> Option<Candidate> {
    let mut candidate = Candidate::empty(env);
    let mut order: Vec<_> = env.workloads.ids().collect();
    order.shuffle(rng);
    for app in order {
        let mut placed = false;
        for _ in 0..tries_per_app {
            let tid = env
                .catalog
                .ids()
                .nth(rng.gen_range(0..env.catalog.len()))
                .expect("catalog non-empty");
            let placements = PlacementOptions::enumerate(env, tid);
            if placements.is_empty() {
                continue;
            }
            let placement = placements[rng.gen_range(0..placements.len())];
            let config = env.catalog[tid].default_config();
            if candidate.try_assign(env, app, tid, config, placement).is_ok() {
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(candidate)
}

/// The random heuristic: sample random feasible designs for the whole
/// budget and return the cheapest. The paper notes this scales to large
/// environments "because it randomly generates data protection designs,
/// which can be tested for feasibility fairly quickly" (§4.4).
#[derive(Debug, Clone, Copy)]
pub struct RandomHeuristic<'e> {
    env: &'e Environment,
    tries_per_app: usize,
}

impl<'e> RandomHeuristic<'e> {
    /// Creates the heuristic for an environment.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        RandomHeuristic { env, tries_per_app: 10 }
    }

    /// Samples designs until the budget expires; returns the cheapest.
    pub fn solve<R: Rng + ?Sized>(&self, budget: Budget, rng: &mut R) -> SolveOutcome {
        let _solve_span = obs::span("random.solve", "heuristic");
        let mut tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("random");
        let mut best: Option<Candidate> = None;
        while !tracker.expired() {
            tracker.tick();
            match random_design(self.env, self.tries_per_app, rng) {
                Some(mut candidate) => {
                    candidate.evaluate(self.env);
                    stats.greedy_builds += 1;
                    stats.nodes_evaluated += 1;
                    obs::add("random.feasible_samples", 1);
                    let better = best.as_ref().is_none_or(|b| {
                        self.env.score(candidate.cost()) < self.env.score(b.cost())
                    });
                    if better {
                        best = Some(candidate);
                        if let Some(b) = &best {
                            flight.incumbent(b.cost().total(), stats.nodes_evaluated);
                        }
                    }
                }
                None => {
                    stats.greedy_failures += 1;
                    obs::add("random.infeasible_samples", 1);
                    progress::restart(stats.greedy_failures);
                }
            }
            if stats.nodes_evaluated.is_multiple_of(32) {
                heartbeat(stats.nodes_evaluated, tracker.elapsed(), 0.0);
            }
        }
        stats.publish();
        flight.done(best.as_ref().map(|b| b.cost().total()), stats.nodes_evaluated);
        SolveOutcome { best, stats, elapsed: tracker.elapsed(), cache: None, bound: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn random_design_is_complete_when_some() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut produced = 0;
        for _ in 0..20 {
            if let Some(c) = random_design(&e, 10, &mut rng) {
                assert!(c.is_complete(&e));
                produced += 1;
            }
        }
        assert!(produced > 0, "the peer environment admits random designs");
    }

    #[test]
    fn best_of_many_is_no_worse_than_best_of_few() {
        let e = env(4);
        let cost = |iters| {
            let mut rng = ChaCha8Rng::seed_from_u64(32);
            RandomHeuristic::new(&e)
                .solve(Budget::iterations(iters), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
                .unwrap()
        };
        assert!(cost(30) <= cost(3));
    }

    #[test]
    fn random_heuristic_counts_samples() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let out = RandomHeuristic::new(&e).solve(Budget::iterations(10), &mut rng);
        assert_eq!(out.stats.greedy_builds + out.stats.greedy_failures, 10);
    }
}
