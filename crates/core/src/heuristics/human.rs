//! The emulated human storage architect (paper §4.1).

use dsd_obs as obs;
use dsd_obs::progress;
use rand::Rng;

use dsd_protection::TechniqueId;
use dsd_workload::{AppClass, AppId};

use crate::budget::Budget;
use crate::candidate::{Candidate, PlacementOptions};
use crate::config_solver::{ConfigurationSolver, Thoroughness};
use crate::design_solver::{SolveOutcome, SolveStats};
use crate::env::Environment;
use crate::flight::{heartbeat, FlightPlan};
use crate::reconfigure::weighted_index;

/// Emulates a human architect's gold/silver/bronze design process:
///
/// 1. classify applications, techniques and resources into classes;
/// 2. assign applications in randomized priority order (weighted by
///    penalty-rate sum);
/// 3. give each application a uniformly random technique from its own
///    class (falling back to better classes when its class has none
///    feasible);
/// 4. spread applications uniformly over the sites, preferring arrays of
///    the matching resource class;
/// 5. let the configuration solver optimize the remaining parameters;
/// 6. restart on infeasibility; return the cheapest design found within
///    the budget.
#[derive(Debug, Clone, Copy)]
pub struct HumanHeuristic<'e> {
    env: &'e Environment,
    max_restarts_per_attempt: usize,
}

impl<'e> HumanHeuristic<'e> {
    /// Creates the heuristic for an environment.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        HumanHeuristic { env, max_restarts_per_attempt: 5 }
    }

    /// Runs design attempts until the budget expires and returns the
    /// cheapest.
    pub fn solve<R: Rng + ?Sized>(&self, budget: Budget, rng: &mut R) -> SolveOutcome {
        let _solve_span = obs::span("human.solve", "heuristic");
        let mut tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("human");
        let config = ConfigurationSolver::new(self.env);
        let mut best: Option<Candidate> = None;

        while !tracker.expired() {
            tracker.tick();
            match self.attempt(rng) {
                Some(mut candidate) => {
                    stats.greedy_builds += 1;
                    config.complete(&mut candidate, Thoroughness::Full);
                    stats.nodes_evaluated += 1;
                    let better = best.as_ref().is_none_or(|b| {
                        self.env.score(candidate.cost()) < self.env.score(b.cost())
                    });
                    if better {
                        best = Some(candidate);
                        if let Some(b) = &best {
                            flight.incumbent(b.cost().total(), stats.nodes_evaluated);
                        }
                    }
                }
                None => {
                    stats.greedy_failures += 1;
                    progress::restart(stats.greedy_failures);
                }
            }
            heartbeat(stats.nodes_evaluated, tracker.elapsed(), 0.0);
        }
        stats.publish();
        flight.done(best.as_ref().map(|b| b.cost().total()), stats.nodes_evaluated);
        SolveOutcome { best, stats, elapsed: tracker.elapsed(), cache: None, bound: None }
    }

    /// One complete design attempt (with bounded internal restarts).
    fn attempt<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Candidate> {
        'restart: for _ in 0..self.max_restarts_per_attempt {
            let mut candidate = Candidate::empty(self.env);
            let order = self.randomized_priority_order(rng);
            for (spread, app) in order.into_iter().enumerate() {
                if !self.place_app(&mut candidate, app, spread, rng) {
                    continue 'restart;
                }
            }
            return Some(candidate);
        }
        None
    }

    /// Randomized priority order: repeatedly sample without replacement,
    /// weighted by penalty-rate sums.
    fn randomized_priority_order<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<AppId> {
        let mut remaining: Vec<AppId> = self.env.workloads.ids().collect();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let weights: Vec<f64> =
                remaining.iter().map(|&a| self.env.workloads[a].priority().as_f64()).collect();
            let i = weighted_index(&weights, rng).expect("non-empty");
            order.push(remaining.swap_remove(i));
        }
        order
    }

    /// Techniques of exactly the application's class, falling back to all
    /// eligible (better) ones when the class itself is empty.
    fn class_techniques(&self, class: AppClass) -> Vec<TechniqueId> {
        let same: Vec<TechniqueId> = self
            .env
            .catalog
            .eligible_for(class)
            .filter(|(_, t)| t.category == class)
            .map(|(id, _)| id)
            .collect();
        if !same.is_empty() {
            return same;
        }
        self.env.catalog.eligible_for(class).map(|(id, _)| id).collect()
    }

    /// Assigns one application: uniform-random technique from its class,
    /// placements ordered by the spread rule (primary site = round-robin
    /// by assignment index, arrays of the matching class first).
    fn place_app<R: Rng + ?Sized>(
        &self,
        candidate: &mut Candidate,
        app: AppId,
        spread: usize,
        rng: &mut R,
    ) -> bool {
        let class = self.env.workloads[app].class_with(&self.env.thresholds);
        let mut techniques = self.class_techniques(class);
        if techniques.is_empty() {
            return false;
        }
        // Uniform random technique; on failure try the others.
        let first = rng.gen_range(0..techniques.len());
        techniques.rotate_left(first);

        let site_count = self.env.topology.site_count();
        let desired_site = spread % site_count;
        for tid in techniques {
            let technique = &self.env.catalog[tid];
            // The architect pins the primary to the round-robin spread
            // site — no cross-site fallback (the paper's human heuristic
            // "spreads the applications uniformly over the resource
            // topology" and restarts when that layout is infeasible,
            // which is why it stops finding feasible solutions as the
            // environment saturates, §4.4).
            let mut placements: Vec<_> = PlacementOptions::enumerate(self.env, tid)
                .into_iter()
                .filter(|p| p.primary.site.0 == desired_site)
                .collect();
            placements.sort_by_key(|p| {
                let spec = &self.env.topology.site(p.primary.site).array_slots[p.primary.slot];
                let class_mismatch = usize::from(spec.class.matching_app_class() != class);
                (class_mismatch, p.primary.slot)
            });
            for placement in placements {
                if candidate
                    .try_assign(self.env, app, tid, technique.default_config(), placement)
                    .is_ok()
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, SiteId, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env(apps: usize) -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(apps),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn human_finds_complete_design() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let out = HumanHeuristic::new(&e).solve(Budget::iterations(5), &mut rng);
        let best = out.best.expect("feasible");
        assert!(best.is_complete(&e));
        assert!(best.cost().total().is_finite());
    }

    #[test]
    fn human_uses_class_matched_techniques() {
        let e = env(8);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let out = HumanHeuristic::new(&e).solve(Budget::iterations(3), &mut rng);
        let best = out.best.unwrap();
        for (app, a) in best.assignments() {
            let class = e.workloads[*app].class_with(&e.thresholds);
            let cat = e.catalog[a.technique].category;
            assert!(cat.satisfies(class), "{app}: {cat} technique for {class} app");
        }
    }

    #[test]
    fn human_spreads_primaries_over_sites() {
        let e = env(8);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let out = HumanHeuristic::new(&e).solve(Budget::iterations(1), &mut rng);
        let best = out.best.unwrap();
        let at_site0 =
            best.assignments().values().filter(|a| a.placement.primary.site == SiteId(0)).count();
        // A perfect spread puts 4 of 8 at each site; allow slack for
        // feasibility-driven displacement but reject a one-sided pile-up.
        assert!((2..=6).contains(&at_site0), "primaries at site0: {at_site0}");
    }

    #[test]
    fn human_is_deterministic_under_seed() {
        let e = env(4);
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            HumanHeuristic::new(&e)
                .solve(Budget::iterations(2), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
        };
        assert_eq!(run(3), run(3));
    }
}
