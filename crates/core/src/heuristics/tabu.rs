//! Tabu search baseline.
//!
//! The second classic local-search metaheuristic from the paper's related
//! work (§5, citing Glover). Moves are the same reconfiguration steps the
//! design solver uses; the tabu list forbids re-reconfiguring the same
//! application for a fixed tenure, forcing the walk to diversify instead
//! of oscillating between two designs.
//!
//! Like the annealer, tabu search can start from a caller-provided
//! design ([`TabuSearch::solve_from`]) and share the evaluation cache —
//! the portfolio's diversification workers run it over the shared
//! incumbent.

use std::collections::VecDeque;

use dsd_obs as obs;
use dsd_obs::progress;
use rand::Rng;

use dsd_recovery::ScenarioOutcomeCache;
use dsd_workload::AppId;

use crate::budget::{Budget, BudgetTracker};
use crate::candidate::Candidate;
use crate::config_solver::{ConfigurationSolver, Thoroughness};
use crate::design_solver::{SolveOutcome, SolveStats};
use crate::env::Environment;
use crate::eval_cache::EvalCache;
use crate::flight::{heartbeat, FlightPlan};
use crate::heuristics::random::random_design;
use crate::reconfigure::Reconfigurator;

/// Tabu search over reconfiguration moves.
#[derive(Debug, Clone, Copy)]
pub struct TabuSearch<'e> {
    env: &'e Environment,
    /// Number of recently reconfigured applications that may not be
    /// touched again (the tabu tenure).
    tenure: usize,
    /// Candidate moves evaluated per step; the best non-tabu move is
    /// taken even if it worsens the design (classic tabu behavior).
    moves_per_step: usize,
    /// Resource-addition limits forwarded to the configuration solver.
    addition_limits: (usize, usize),
    cache: Option<&'e EvalCache>,
}

impl<'e> TabuSearch<'e> {
    /// Creates a tabu search with tenure 3 and 4 candidate moves per
    /// step.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        TabuSearch { env, tenure: 3, moves_per_step: 4, addition_limits: (4, 32), cache: None }
    }

    /// Overrides the configuration solver's resource-addition limits
    /// (quick, full). `(0, 0)` disables additions entirely, confining the
    /// search to the discrete configuration grid — the space the
    /// tournament's exhaustive reference enumerates.
    #[must_use]
    pub fn with_addition_limits(mut self, quick: usize, full: usize) -> Self {
        self.addition_limits = (quick, full);
        self
    }

    /// Attaches a (shareable) evaluation cache, exactly like
    /// [`crate::DesignSolver::with_cache`].
    #[must_use]
    pub fn with_cache(mut self, cache: &'e EvalCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the tabu tenure (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `tenure` is zero.
    #[must_use]
    pub fn with_tenure(mut self, tenure: usize) -> Self {
        assert!(tenure > 0, "tabu tenure must be positive");
        self.tenure = tenure;
        self
    }

    fn config_solver(&self) -> ConfigurationSolver<'e> {
        ConfigurationSolver::new(self.env)
            .with_addition_limits(self.addition_limits.0, self.addition_limits.1)
    }

    /// One completion through the optional cache, mirroring the design
    /// solver's accounting.
    fn complete(
        &self,
        config: &ConfigurationSolver<'e>,
        candidate: &mut Candidate,
        thoroughness: Thoroughness,
        stats: &mut SolveStats,
        scache: &mut ScenarioOutcomeCache,
    ) {
        match self.cache {
            Some(cache) => {
                let (_, hit) = config.complete_cached_with(candidate, thoroughness, cache, scache);
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
            }
            None => {
                config.complete_with(candidate, thoroughness, scache);
            }
        }
        stats.nodes_evaluated += 1;
    }

    /// Searches until the budget expires; returns the best design seen.
    /// Starts from a random feasible design.
    pub fn solve<R: Rng + ?Sized>(&self, budget: Budget, rng: &mut R) -> SolveOutcome {
        let mut scache = ScenarioOutcomeCache::new();
        self.solve_with(budget, &mut scache, rng)
    }

    /// [`TabuSearch::solve`] with a caller-provided scenario cache, so
    /// scenario-level reuse persists across successive runs (portfolio
    /// workers keep one per worker).
    pub fn solve_with<R: Rng + ?Sized>(
        &self,
        budget: Budget,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> SolveOutcome {
        let _solve_span = obs::span("tabu.solve", "heuristic");
        let mut tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("tabu");
        let config = self.config_solver();

        let current = loop {
            if tracker.expired() {
                flight.done(None, stats.nodes_evaluated);
                return SolveOutcome {
                    best: None,
                    stats,
                    elapsed: tracker.elapsed(),
                    cache: self.cache.map(EvalCache::stats),
                    bound: None,
                };
            }
            tracker.tick();
            match random_design(self.env, 10, rng) {
                Some(mut c) => {
                    self.complete(&config, &mut c, Thoroughness::Quick, &mut stats, scache);
                    stats.greedy_builds += 1;
                    break c;
                }
                None => {
                    stats.greedy_failures += 1;
                    progress::restart(stats.greedy_failures);
                }
            }
        };
        self.run(current, tracker, stats, &flight, scache, rng)
    }

    /// Searches from a caller-provided starting design (e.g. the
    /// portfolio's shared incumbent) until the budget expires. The start
    /// is re-completed under this search's addition limits first.
    pub fn solve_from<R: Rng + ?Sized>(
        &self,
        start: Candidate,
        budget: Budget,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> SolveOutcome {
        let _solve_span = obs::span("tabu.solve_from", "heuristic");
        let tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("tabu");
        let config = self.config_solver();
        let mut current = start;
        self.complete(&config, &mut current, Thoroughness::Quick, &mut stats, scache);
        self.run(current, tracker, stats, &flight, scache, rng)
    }

    /// The tabu walk proper, shared by both entry points.
    fn run<R: Rng + ?Sized>(
        &self,
        mut current: Candidate,
        mut tracker: BudgetTracker,
        mut stats: SolveStats,
        flight: &FlightPlan,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> SolveOutcome {
        let config = self.config_solver();
        let mut reconf = Reconfigurator::default();
        let mut best = current.clone();
        flight.incumbent(best.cost().total(), stats.nodes_evaluated);
        let mut tabu: VecDeque<AppId> = VecDeque::with_capacity(self.tenure);

        while !tracker.expired() {
            tracker.tick();
            // Evaluate a small pool of moves; keep the best whose touched
            // application is not tabu (aspiration: a new global best is
            // always allowed).
            let mut chosen: Option<(Candidate, AppId)> = None;
            for _ in 0..self.moves_per_step {
                let mut proposal = current.clone();
                if !reconf.reconfigure_with(self.env, &mut proposal, scache, rng) {
                    continue;
                }
                self.complete(&config, &mut proposal, Thoroughness::Quick, &mut stats, scache);
                let touched = touched_app(&current, &proposal);
                let is_tabu = touched.is_some_and(|a| tabu.contains(&a));
                let aspirates = self.env.score(proposal.cost()) < self.env.score(best.cost());
                if is_tabu && !aspirates {
                    obs::add("tabu.moves_forbidden", 1);
                    continue;
                }
                let better_than_chosen = chosen.as_ref().is_none_or(|(c, _)| {
                    self.env.score(proposal.cost()) < self.env.score(c.cost())
                });
                if better_than_chosen {
                    if let Some(app) = touched {
                        chosen = Some((proposal, app));
                    }
                }
            }
            let Some((next, touched)) = chosen else { continue };
            obs::add("tabu.moves_taken", 1);
            if obs::enabled() {
                obs::instant_with(
                    "tabu.move",
                    "heuristic",
                    vec![
                        ("app", touched.0.into()),
                        ("cost", self.env.score(next.cost()).as_f64().into()),
                    ],
                );
            }
            tabu.push_back(touched);
            while tabu.len() > self.tenure {
                tabu.pop_front();
            }
            current = next;
            if self.env.score(current.cost()) < self.env.score(best.cost()) {
                best = current.clone();
                flight.incumbent(best.cost().total(), stats.nodes_evaluated);
            }
            if stats.nodes_evaluated.is_multiple_of(32) {
                heartbeat(stats.nodes_evaluated, tracker.elapsed(), stats.cache_hit_rate());
            }
        }

        self.complete(&config, &mut best, Thoroughness::Full, &mut stats, scache);
        stats.publish();
        flight.incumbent(best.cost().total(), stats.nodes_evaluated);
        flight.done(Some(best.cost().total()), stats.nodes_evaluated);
        SolveOutcome {
            best: Some(best),
            stats,
            elapsed: tracker.elapsed(),
            cache: self.cache.map(EvalCache::stats),
            bound: None,
        }
    }
}

/// The application whose assignment differs between two candidates (the
/// one the reconfiguration touched).
fn touched_app(before: &Candidate, after: &Candidate) -> Option<AppId> {
    for (app, a) in after.assignments() {
        match before.assignment(*app) {
            Some(b) if b == a => continue,
            _ => return Some(*app),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env() -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn tabu_finds_feasible_designs() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let out = TabuSearch::new(&e).solve(Budget::iterations(40), &mut rng);
        let best = out.best.expect("feasible");
        assert!(best.is_complete(&e));
        assert!(best.cost().total().is_finite());
    }

    #[test]
    fn tabu_improves_over_its_random_start() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let start = {
            let mut c = random_design(&e, 10, &mut rng).expect("feasible start");
            c.evaluate(&e).total().as_f64()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let out = TabuSearch::new(&e).solve(Budget::iterations(60), &mut rng);
        let best = out.best.unwrap().cost().total().as_f64();
        assert!(best <= start, "tabu {best} vs start {start}");
    }

    #[test]
    fn tabu_is_deterministic_under_seed() {
        let e = env();
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            TabuSearch::new(&e)
                .solve(Budget::iterations(25), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn solve_from_never_loses_its_start() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(95);
        let mut start = random_design(&e, 10, &mut rng).expect("feasible start");
        start.evaluate(&e);
        let start_cost = start.cost().total().as_f64();
        let mut scache = ScenarioOutcomeCache::new();
        let out =
            TabuSearch::new(&e).solve_from(start, Budget::iterations(30), &mut scache, &mut rng);
        let best = out.best.expect("start was feasible").cost().total().as_f64();
        assert!(best <= start_cost + 1e-6, "refined {best} vs start {start_cost}");
    }

    #[test]
    fn touched_app_detects_the_difference() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let a = random_design(&e, 10, &mut rng).unwrap();
        let mut b = a.clone();
        let mut reconf = Reconfigurator::default();
        if reconf.reconfigure(&e, &mut b, &mut rng) {
            let t = touched_app(&a, &b);
            assert!(t.is_some());
        }
        assert_eq!(touched_app(&a, &a.clone()), None);
    }

    #[test]
    #[should_panic(expected = "tenure")]
    fn zero_tenure_rejected() {
        let e = env();
        let _ = TabuSearch::new(&e).with_tenure(0);
    }
}
