//! Tabu search baseline.
//!
//! The second classic local-search metaheuristic from the paper's related
//! work (§5, citing Glover). Moves are the same reconfiguration steps the
//! design solver uses; the tabu list forbids re-reconfiguring the same
//! application for a fixed tenure, forcing the walk to diversify instead
//! of oscillating between two designs.

use std::collections::VecDeque;

use dsd_obs as obs;
use dsd_obs::progress;
use rand::Rng;

use dsd_workload::AppId;

use crate::budget::Budget;
use crate::candidate::Candidate;
use crate::config_solver::{ConfigurationSolver, Thoroughness};
use crate::design_solver::{SolveOutcome, SolveStats};
use crate::env::Environment;
use crate::flight::{heartbeat, FlightPlan};
use crate::heuristics::random::random_design;
use crate::reconfigure::Reconfigurator;

/// Tabu search over reconfiguration moves.
#[derive(Debug, Clone, Copy)]
pub struct TabuSearch<'e> {
    env: &'e Environment,
    /// Number of recently reconfigured applications that may not be
    /// touched again (the tabu tenure).
    tenure: usize,
    /// Candidate moves evaluated per step; the best non-tabu move is
    /// taken even if it worsens the design (classic tabu behavior).
    moves_per_step: usize,
    /// Resource-addition limits forwarded to the configuration solver.
    addition_limits: (usize, usize),
}

impl<'e> TabuSearch<'e> {
    /// Creates a tabu search with tenure 3 and 4 candidate moves per
    /// step.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        TabuSearch { env, tenure: 3, moves_per_step: 4, addition_limits: (4, 32) }
    }

    /// Overrides the configuration solver's resource-addition limits
    /// (quick, full). `(0, 0)` disables additions entirely, confining the
    /// search to the discrete configuration grid — the space the
    /// tournament's exhaustive reference enumerates.
    #[must_use]
    pub fn with_addition_limits(mut self, quick: usize, full: usize) -> Self {
        self.addition_limits = (quick, full);
        self
    }

    /// Overrides the tabu tenure (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `tenure` is zero.
    #[must_use]
    pub fn with_tenure(mut self, tenure: usize) -> Self {
        assert!(tenure > 0, "tabu tenure must be positive");
        self.tenure = tenure;
        self
    }

    /// Searches until the budget expires; returns the best design seen.
    pub fn solve<R: Rng + ?Sized>(&self, budget: Budget, rng: &mut R) -> SolveOutcome {
        let _solve_span = obs::span("tabu.solve", "heuristic");
        let mut tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("tabu");
        let config = ConfigurationSolver::new(self.env)
            .with_addition_limits(self.addition_limits.0, self.addition_limits.1);
        let mut reconf = Reconfigurator::default();

        let mut current = loop {
            if tracker.expired() {
                flight.done(None, stats.nodes_evaluated);
                return SolveOutcome {
                    best: None,
                    stats,
                    elapsed: tracker.elapsed(),
                    cache: None,
                    bound: None,
                };
            }
            tracker.tick();
            match random_design(self.env, 10, rng) {
                Some(mut c) => {
                    config.complete(&mut c, Thoroughness::Quick);
                    stats.nodes_evaluated += 1;
                    stats.greedy_builds += 1;
                    break c;
                }
                None => {
                    stats.greedy_failures += 1;
                    progress::restart(stats.greedy_failures);
                }
            }
        };
        let mut best = current.clone();
        flight.incumbent(best.cost().total(), stats.nodes_evaluated);
        let mut tabu: VecDeque<AppId> = VecDeque::with_capacity(self.tenure);

        while !tracker.expired() {
            tracker.tick();
            // Evaluate a small pool of moves; keep the best whose touched
            // application is not tabu (aspiration: a new global best is
            // always allowed).
            let mut chosen: Option<(Candidate, AppId)> = None;
            for _ in 0..self.moves_per_step {
                let mut proposal = current.clone();
                if !reconf.reconfigure(self.env, &mut proposal, rng) {
                    continue;
                }
                config.complete(&mut proposal, Thoroughness::Quick);
                stats.nodes_evaluated += 1;
                let touched = touched_app(&current, &proposal);
                let is_tabu = touched.is_some_and(|a| tabu.contains(&a));
                let aspirates = self.env.score(proposal.cost()) < self.env.score(best.cost());
                if is_tabu && !aspirates {
                    obs::add("tabu.moves_forbidden", 1);
                    continue;
                }
                let better_than_chosen = chosen.as_ref().is_none_or(|(c, _)| {
                    self.env.score(proposal.cost()) < self.env.score(c.cost())
                });
                if better_than_chosen {
                    if let Some(app) = touched {
                        chosen = Some((proposal, app));
                    }
                }
            }
            let Some((next, touched)) = chosen else { continue };
            obs::add("tabu.moves_taken", 1);
            if obs::enabled() {
                obs::instant_with(
                    "tabu.move",
                    "heuristic",
                    vec![
                        ("app", touched.0.into()),
                        ("cost", self.env.score(next.cost()).as_f64().into()),
                    ],
                );
            }
            tabu.push_back(touched);
            while tabu.len() > self.tenure {
                tabu.pop_front();
            }
            current = next;
            if self.env.score(current.cost()) < self.env.score(best.cost()) {
                best = current.clone();
                flight.incumbent(best.cost().total(), stats.nodes_evaluated);
            }
            if stats.nodes_evaluated.is_multiple_of(32) {
                heartbeat(stats.nodes_evaluated, tracker.elapsed(), 0.0);
            }
        }

        config.complete(&mut best, Thoroughness::Full);
        stats.nodes_evaluated += 1;
        stats.publish();
        flight.incumbent(best.cost().total(), stats.nodes_evaluated);
        flight.done(Some(best.cost().total()), stats.nodes_evaluated);
        SolveOutcome {
            best: Some(best),
            stats,
            elapsed: tracker.elapsed(),
            cache: None,
            bound: None,
        }
    }
}

/// The application whose assignment differs between two candidates (the
/// one the reconfiguration touched).
fn touched_app(before: &Candidate, after: &Candidate) -> Option<AppId> {
    for (app, a) in after.assignments() {
        match before.assignment(*app) {
            Some(b) if b == a => continue,
            _ => return Some(*app),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env() -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn tabu_finds_feasible_designs() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let out = TabuSearch::new(&e).solve(Budget::iterations(40), &mut rng);
        let best = out.best.expect("feasible");
        assert!(best.is_complete(&e));
        assert!(best.cost().total().is_finite());
    }

    #[test]
    fn tabu_improves_over_its_random_start() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let start = {
            let mut c = random_design(&e, 10, &mut rng).expect("feasible start");
            c.evaluate(&e).total().as_f64()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let out = TabuSearch::new(&e).solve(Budget::iterations(60), &mut rng);
        let best = out.best.unwrap().cost().total().as_f64();
        assert!(best <= start, "tabu {best} vs start {start}");
    }

    #[test]
    fn tabu_is_deterministic_under_seed() {
        let e = env();
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            TabuSearch::new(&e)
                .solve(Budget::iterations(25), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn touched_app_detects_the_difference() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let a = random_design(&e, 10, &mut rng).unwrap();
        let mut b = a.clone();
        let mut reconf = Reconfigurator::default();
        if reconf.reconfigure(&e, &mut b, &mut rng) {
            let t = touched_app(&a, &b);
            assert!(t.is_some());
        }
        assert_eq!(touched_app(&a, &a.clone()), None);
    }

    #[test]
    #[should_panic(expected = "tenure")]
    fn zero_tenure_rejected() {
        let e = env();
        let _ = TabuSearch::new(&e).with_tenure(0);
    }
}
