//! Pure random sampling of the solution space (paper §4.3.1, Figure 2).
//!
//! "We estimate solution quality by randomly sampling a large collection
//! of solutions and evaluating their overall costs ... the quality of the
//! heuristics' solutions [is expressed] in terms of where they reside in
//! the empirical distribution of solutions."

use rand::Rng;

use crate::env::Environment;
use crate::heuristics::random::random_design;

/// Summary of a random sampling run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleSummary {
    /// Total cost of each feasible sampled design, in dollars.
    pub costs: Vec<f64>,
    /// For each feasible sample, how many applications have *no
    /// point-in-time copy* (no snapshot/backup chain): mirrors replicate
    /// corruption, so these applications are unprotected against data
    /// object failures. This is the dominant design-tradeoff behind the
    /// distribution's modes (§4.3.1 — "higher-cost solutions provide
    /// inadequate protection for workloads with stringent requirements";
    /// §4.3.2 — every good design "employ[s] some form of tape backup").
    pub underprotected: Vec<usize>,
    /// Number of attempted samples that were infeasible.
    pub infeasible: usize,
}

impl SampleSummary {
    /// Minimum sampled cost.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.costs.iter().copied().reduce(f64::min)
    }

    /// Maximum sampled cost.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.costs.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the sampled costs by the
    /// nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]: {q}");
        if self.costs.is_empty() {
            return None;
        }
        let mut sorted = self.costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Pearson correlation between a sample's cost and its count of
    /// under-protected stringent applications. The paper's reading of
    /// Figure 2 predicts a strongly positive value.
    #[must_use]
    pub fn underprotection_correlation(&self) -> Option<f64> {
        let n = self.costs.len();
        if n < 2 || self.underprotected.len() != n {
            return None;
        }
        let xs = &self.costs;
        let ys: Vec<f64> = self.underprotected.iter().map(|&u| u as f64).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for i in 0..n {
            cov += (xs[i] - mx) * (ys[i] - my);
            vx += (xs[i] - mx).powi(2);
            vy += (ys[i] - my).powi(2);
        }
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some(cov / (vx * vy).sqrt())
    }

    /// Fraction of samples with cost at or below `cost` — where a
    /// heuristic's solution "resides in the empirical distribution".
    #[must_use]
    pub fn percentile_of(&self, cost: f64) -> Option<f64> {
        if self.costs.is_empty() {
            return None;
        }
        let below = self.costs.iter().filter(|&&c| c <= cost).count();
        Some(below as f64 / self.costs.len() as f64)
    }
}

/// One bin of a cost histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Samples falling in the bin.
    pub count: usize,
}

/// Builds an equal-width histogram of `values` with `bins` bins over
/// `[min, max]`. Returns an empty vector for empty input.
///
/// # Panics
///
/// Panics if `bins` is zero.
#[must_use]
pub fn histogram(values: &[f64], bins: usize) -> Vec<HistogramBin> {
    assert!(bins > 0, "histogram needs at least one bin");
    if values.is_empty() {
        return Vec::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = if max > min { (max - min) / bins as f64 } else { 1.0 };
    let mut out: Vec<HistogramBin> = (0..bins)
        .map(|i| HistogramBin {
            lo: min + width * i as f64,
            hi: min + width * (i + 1) as f64,
            count: 0,
        })
        .collect();
    for &v in values {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        out[idx].count += 1;
    }
    out
}

/// Random solution-space sampler.
#[derive(Debug, Clone, Copy)]
pub struct RandomSampler<'e> {
    env: &'e Environment,
    tries_per_app: usize,
}

impl<'e> RandomSampler<'e> {
    /// Creates the sampler for an environment.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        RandomSampler { env, tries_per_app: 10 }
    }

    /// Attempts `n` random designs and records every feasible design's
    /// total cost (no configuration optimization — raw solution-space
    /// points, as in Figure 2).
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> SampleSummary {
        let mut summary = SampleSummary::default();
        for _ in 0..n {
            match random_design(self.env, self.tries_per_app, rng) {
                Some(mut c) => {
                    let cost = c.evaluate(self.env).total().as_f64();
                    if cost.is_finite() {
                        let underprotected = c
                            .assignments()
                            .values()
                            .filter(|a| !self.env.catalog[a.technique].has_backup())
                            .count();
                        summary.costs.push(cost);
                        summary.underprotected.push(underprotected);
                    } else {
                        summary.infeasible += 1;
                    }
                }
                None => summary.infeasible += 1,
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env() -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn sampling_produces_a_spread() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let s = RandomSampler::new(&e).sample(60, &mut rng);
        assert!(s.costs.len() > 10, "most random designs are feasible here");
        let (min, max) = (s.min().unwrap(), s.max().unwrap());
        assert!(max > min * 1.5, "solution costs vary widely: {min}..{max}");
    }

    #[test]
    fn underprotection_drives_cost() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let s = RandomSampler::new(&e).sample(120, &mut rng);
        let r = s.underprotection_correlation().expect("enough samples");
        assert!(
            r > 0.5,
            "cost should correlate strongly with under-protecting stringent apps: r={r:.2}"
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let s = RandomSampler::new(&e).sample(50, &mut rng);
        let q10 = s.quantile(0.1).unwrap();
        let q50 = s.quantile(0.5).unwrap();
        let q90 = s.quantile(0.9).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert_eq!(s.quantile(0.0).unwrap(), s.min().unwrap());
        assert_eq!(s.quantile(1.0).unwrap(), s.max().unwrap());
    }

    #[test]
    fn percentile_of_extremes() {
        let s = SampleSummary {
            costs: vec![1.0, 2.0, 3.0, 4.0],
            underprotected: vec![0, 0, 1, 2],
            infeasible: 0,
        };
        assert_eq!(s.percentile_of(0.5), Some(0.0));
        assert_eq!(s.percentile_of(2.5), Some(0.5));
        assert_eq!(s.percentile_of(10.0), Some(1.0));
        assert_eq!(SampleSummary::default().percentile_of(1.0), None);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let values = [1.0, 1.5, 2.0, 2.5, 9.9, 10.0];
        let bins = histogram(&values, 3);
        assert_eq!(bins.len(), 3);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, values.len());
        assert_eq!(bins[0].lo, 1.0);
        assert_eq!(bins[2].hi, 10.0);
    }

    #[test]
    fn histogram_of_identical_values() {
        let bins = histogram(&[5.0; 7], 4);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn histogram_of_empty_is_empty() {
        assert!(histogram(&[], 5).is_empty());
    }
}
