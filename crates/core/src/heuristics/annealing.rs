//! Simulated annealing baseline.
//!
//! The paper's related work (§5) positions classic local-search
//! metaheuristics — simulated annealing, tabu search — as the natural
//! alternatives, arguing that "without sufficient information about the
//! underlying structure, we perform better by exploring a much larger
//! space at each local region". This module implements simulated
//! annealing over the *same* reconfiguration move set and configuration
//! solver as the design solver, so the comparison isolates the search
//! strategy itself.
//!
//! Beyond the standalone baseline ([`SimulatedAnnealing::solve`], random
//! start), the annealer can start from a caller-provided design
//! ([`SimulatedAnnealing::solve_from`]) and share the evaluation cache —
//! this is how portfolio workers refine the shared incumbent.

use dsd_obs as obs;
use dsd_obs::progress;
use rand::Rng;

use dsd_recovery::ScenarioOutcomeCache;

use crate::budget::{Budget, BudgetTracker};
use crate::candidate::Candidate;
use crate::config_solver::{ConfigurationSolver, Thoroughness};
use crate::design_solver::{SolveOutcome, SolveStats};
use crate::env::Environment;
use crate::eval_cache::EvalCache;
use crate::flight::{heartbeat, FlightPlan};
use crate::heuristics::random::random_design;
use crate::reconfigure::Reconfigurator;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingParams {
    /// Initial temperature as a fraction of the starting design's total
    /// cost (so the scale adapts to the environment).
    pub initial_temp_fraction: f64,
    /// Multiplicative cooling factor applied every
    /// [`AnnealingParams::steps_per_temp`] proposals.
    pub cooling: f64,
    /// Proposals evaluated at each temperature.
    pub steps_per_temp: usize,
}

impl Default for AnnealingParams {
    fn default() -> Self {
        AnnealingParams { initial_temp_fraction: 0.1, cooling: 0.95, steps_per_temp: 10 }
    }
}

/// Simulated annealing over reconfiguration moves.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing<'e> {
    env: &'e Environment,
    params: AnnealingParams,
    addition_limits: (usize, usize),
    cache: Option<&'e EvalCache>,
}

impl<'e> SimulatedAnnealing<'e> {
    /// Creates the annealer with default parameters.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        SimulatedAnnealing {
            env,
            params: AnnealingParams::default(),
            addition_limits: (4, 32),
            cache: None,
        }
    }

    /// Overrides the configuration solver's resource-addition limits
    /// (quick, full). `(0, 0)` disables additions entirely, confining the
    /// search to the discrete configuration grid — the space the
    /// tournament's exhaustive reference enumerates.
    #[must_use]
    pub fn with_addition_limits(mut self, quick: usize, full: usize) -> Self {
        self.addition_limits = (quick, full);
        self
    }

    /// Attaches a (shareable) evaluation cache, exactly like
    /// [`crate::DesignSolver::with_cache`]: completions are memoized and
    /// replayed bit-identically, so cached and uncached runs agree.
    #[must_use]
    pub fn with_cache(mut self, cache: &'e EvalCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the schedule (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the cooling factor is outside `(0, 1)` or the schedule
    /// is otherwise degenerate.
    #[must_use]
    pub fn with_params(mut self, params: AnnealingParams) -> Self {
        assert!(
            params.cooling > 0.0 && params.cooling < 1.0,
            "cooling factor must be in (0,1): {}",
            params.cooling
        );
        assert!(params.steps_per_temp >= 1, "need at least one step per temperature");
        assert!(params.initial_temp_fraction > 0.0, "initial temperature must be positive");
        self.params = params;
        self
    }

    fn config_solver(&self) -> ConfigurationSolver<'e> {
        ConfigurationSolver::new(self.env)
            .with_addition_limits(self.addition_limits.0, self.addition_limits.1)
    }

    /// One completion through the optional cache, mirroring the design
    /// solver's accounting.
    fn complete(
        &self,
        config: &ConfigurationSolver<'e>,
        candidate: &mut Candidate,
        thoroughness: Thoroughness,
        stats: &mut SolveStats,
        scache: &mut ScenarioOutcomeCache,
    ) {
        match self.cache {
            Some(cache) => {
                let (_, hit) = config.complete_cached_with(candidate, thoroughness, cache, scache);
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
            }
            None => {
                config.complete_with(candidate, thoroughness, scache);
            }
        }
        stats.nodes_evaluated += 1;
    }

    /// Anneals until the budget expires; returns the best design seen.
    /// Starts from a random feasible design.
    pub fn solve<R: Rng + ?Sized>(&self, budget: Budget, rng: &mut R) -> SolveOutcome {
        let mut scache = ScenarioOutcomeCache::new();
        self.solve_with(budget, &mut scache, rng)
    }

    /// [`SimulatedAnnealing::solve`] with a caller-provided scenario
    /// cache, so scenario-level reuse persists across successive runs
    /// (portfolio workers keep one per worker).
    pub fn solve_with<R: Rng + ?Sized>(
        &self,
        budget: Budget,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> SolveOutcome {
        let _solve_span = obs::span("anneal.solve", "heuristic");
        let mut tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("anneal");
        let config = self.config_solver();

        // Start from a random feasible design.
        let current = loop {
            if tracker.expired() {
                flight.done(None, stats.nodes_evaluated);
                return SolveOutcome {
                    best: None,
                    stats,
                    elapsed: tracker.elapsed(),
                    cache: self.cache.map(EvalCache::stats),
                    bound: None,
                };
            }
            tracker.tick();
            match random_design(self.env, 10, rng) {
                Some(mut c) => {
                    self.complete(&config, &mut c, Thoroughness::Quick, &mut stats, scache);
                    stats.greedy_builds += 1;
                    break c;
                }
                None => {
                    stats.greedy_failures += 1;
                    progress::restart(stats.greedy_failures);
                }
            }
        };
        self.run(current, tracker, stats, &flight, scache, rng)
    }

    /// Anneals from a caller-provided starting design (e.g. the
    /// portfolio's shared incumbent) until the budget expires. The start
    /// is re-completed under this annealer's addition limits first, so
    /// its configuration lives in the same search space as the walk.
    pub fn solve_from<R: Rng + ?Sized>(
        &self,
        start: Candidate,
        budget: Budget,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> SolveOutcome {
        let _solve_span = obs::span("anneal.solve_from", "heuristic");
        let tracker = budget.start();
        let mut stats = SolveStats::default();
        let flight = FlightPlan::new(self.env);
        progress::phase_entered("anneal");
        let config = self.config_solver();
        let mut current = start;
        self.complete(&config, &mut current, Thoroughness::Quick, &mut stats, scache);
        self.run(current, tracker, stats, &flight, scache, rng)
    }

    /// The annealing walk proper, shared by both entry points.
    fn run<R: Rng + ?Sized>(
        &self,
        mut current: Candidate,
        mut tracker: BudgetTracker,
        mut stats: SolveStats,
        flight: &FlightPlan,
        scache: &mut ScenarioOutcomeCache,
        rng: &mut R,
    ) -> SolveOutcome {
        let config = self.config_solver();
        let mut reconf = Reconfigurator::default();
        let mut best = current.clone();
        flight.incumbent(best.cost().total(), stats.nodes_evaluated);

        let mut temperature =
            self.env.score(current.cost()).as_f64() * self.params.initial_temp_fraction;
        let mut step = 0usize;
        while !tracker.expired() {
            tracker.tick();
            let mut proposal = current.clone();
            if !reconf.reconfigure_with(self.env, &mut proposal, scache, rng) {
                continue;
            }
            self.complete(&config, &mut proposal, Thoroughness::Quick, &mut stats, scache);

            let delta =
                self.env.score(proposal.cost()).as_f64() - self.env.score(current.cost()).as_f64();
            let accept = delta < 0.0
                || (temperature > 0.0 && rng.gen_range(0.0..1.0f64) < (-delta / temperature).exp());
            if obs::enabled() {
                obs::instant_with(
                    "anneal.move",
                    "heuristic",
                    vec![
                        ("delta", delta.into()),
                        ("temp", temperature.into()),
                        ("accepted", accept.into()),
                    ],
                );
            }
            obs::add(if accept { "anneal.accepted" } else { "anneal.rejected" }, 1);
            if accept {
                current = proposal;
                if self.env.score(current.cost()) < self.env.score(best.cost()) {
                    best = current.clone();
                    flight.incumbent(best.cost().total(), stats.nodes_evaluated);
                }
            }
            if stats.nodes_evaluated.is_multiple_of(32) {
                heartbeat(stats.nodes_evaluated, tracker.elapsed(), stats.cache_hit_rate());
            }

            step += 1;
            if step.is_multiple_of(self.params.steps_per_temp) {
                temperature *= self.params.cooling;
            }
        }

        self.complete(&config, &mut best, Thoroughness::Full, &mut stats, scache);
        stats.publish();
        flight.incumbent(best.cost().total(), stats.nodes_evaluated);
        flight.done(Some(best.cost().total()), stats.nodes_evaluated);
        SolveOutcome {
            best: Some(best),
            stats,
            elapsed: tracker.elapsed(),
            cache: self.cache.map(EvalCache::stats),
            bound: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn env() -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn annealing_finds_feasible_designs() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let out = SimulatedAnnealing::new(&e).solve(Budget::iterations(40), &mut rng);
        let best = out.best.expect("feasible");
        assert!(best.is_complete(&e));
        assert!(best.cost().total().is_finite());
    }

    #[test]
    fn annealing_improves_over_its_random_start() {
        let e = env();
        // The random start alone is one sample; annealing with the same
        // seed must do at least as well.
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let start = {
            let mut c = random_design(&e, 10, &mut rng).expect("feasible start");
            c.evaluate(&e).total().as_f64()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let out = SimulatedAnnealing::new(&e).solve(Budget::iterations(60), &mut rng);
        let best = out.best.unwrap().cost().total().as_f64();
        assert!(best <= start, "annealed {best} vs start {start}");
    }

    #[test]
    fn annealing_is_deterministic_under_seed() {
        let e = env();
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            SimulatedAnnealing::new(&e)
                .solve(Budget::iterations(25), &mut rng)
                .best
                .map(|b| b.cost().total().as_f64())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn solve_from_never_loses_its_start() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let mut start = random_design(&e, 10, &mut rng).expect("feasible start");
        start.evaluate(&e);
        let start_cost = start.cost().total().as_f64();
        let mut scache = ScenarioOutcomeCache::new();
        let out = SimulatedAnnealing::new(&e).solve_from(
            start,
            Budget::iterations(30),
            &mut scache,
            &mut rng,
        );
        let best = out.best.expect("start was feasible").cost().total().as_f64();
        // The walk tracks its best-ever design, so it can only match or
        // improve the (re-completed) start.
        assert!(best <= start_cost + 1e-6, "refined {best} vs start {start_cost}");
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        let e = env();
        let cache = EvalCache::new(256);
        let run = |cache: Option<&EvalCache>| {
            let mut rng = ChaCha8Rng::seed_from_u64(54);
            let mut annealer = SimulatedAnnealing::new(&e);
            if let Some(c) = cache {
                annealer = annealer.with_cache(c);
            }
            annealer.solve(Budget::iterations(25), &mut rng).best.map(|b| b.cost().total().as_f64())
        };
        assert_eq!(run(None), run(Some(&cache)));
        // Second cached run replays completions from the cache.
        assert_eq!(run(None), run(Some(&cache)));
        assert!(cache.stats().hits > 0);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn bad_cooling_rejected() {
        let e = env();
        let _ = SimulatedAnnealing::new(&e)
            .with_params(AnnealingParams { cooling: 1.5, ..AnnealingParams::default() });
    }
}
