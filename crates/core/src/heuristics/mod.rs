//! Baseline design heuristics from the paper's evaluation.
//!
//! * [`HumanHeuristic`] (§4.1) — emulates a human storage architect:
//!   class-matched techniques, applications spread uniformly over sites,
//!   configuration solver for the remaining parameters.
//! * [`RandomHeuristic`] (§4.3) — generates random feasible designs and
//!   keeps the cheapest.
//! * [`RandomSampler`] (§4.3.1) — maps the solution-space cost
//!   distribution by pure random sampling (Figure 2);
//! * [`SimulatedAnnealing`] and [`TabuSearch`] — the classic local-search
//!   metaheuristics from the related-work comparison (§5), run over the
//!   same move set as the design solver.

mod annealing;
mod human;
mod random;
mod sampler;
mod tabu;

pub use annealing::{AnnealingParams, SimulatedAnnealing};
pub use human::HumanHeuristic;
pub use random::{random_design, RandomHeuristic};
pub use sampler::{histogram, HistogramBin, RandomSampler, SampleSummary};
pub use tabu::TabuSearch;
