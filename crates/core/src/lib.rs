#![warn(missing_docs)]

//! The automated design tool for dependable storage solutions.
//!
//! This crate is the paper's primary contribution (§3): given an
//! [`Environment`] (application workloads, site topology, device catalog,
//! failure model), it searches for the storage solution minimizing
//! overall annual cost = amortized outlays + expected penalties.
//!
//! The search is decomposed into two levels:
//!
//! * the **design solver** ([`DesignSolver`], Algorithm 1) chooses data
//!   protection techniques and resource placements per application — a
//!   greedy best-fit stage builds a feasible initial design, then a refit
//!   stage explores the design graph (breadth `b`, depth `d`) via
//!   randomized [`Reconfigurator`] moves until a local optimum;
//! * the **configuration solver** ([`ConfigurationSolver`], §3.2)
//!   completes a candidate: it exhaustively searches each technique's
//!   discretized parameter space and keeps adding resources (links,
//!   drives, disks) while that lowers overall cost.
//!
//! Baselines from the paper's evaluation (§4.1, §4.3.1) are provided in
//! [`heuristics`]: an emulated human architect, a feasibility-checked
//! random design picker, and a pure random sampler for mapping the
//! solution-space distribution.
//!
//! # Examples
//!
//! ```no_run
//! use dsd_core::{DesignSolver, Budget, Environment};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! # fn env() -> Environment { unimplemented!() }
//! let environment = env();
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let solver = DesignSolver::new(&environment);
//! let outcome = solver.solve(Budget::iterations(50), &mut rng);
//! if let Some(best) = outcome.best {
//!     println!("total annual cost: {}", best.cost().total());
//! }
//! ```

pub mod bounds;
mod budget;
mod candidate;
mod config_solver;
mod delta;
mod design_solver;
mod env;
pub mod eval_cache;
mod exhaustive;
mod explain;
mod flight;
pub mod heuristics;
mod objective;
mod parallel;
mod portfolio;
mod reconfigure;
mod tournament;

pub use bounds::{lower_bound, AppBound, Certificate, LowerBound};
pub use budget::Budget;
pub use candidate::{AppAssignment, Candidate, CostBreakdown, PlacementOptions};
pub use config_solver::{ConfigurationSolver, Thoroughness};
pub use delta::{scenario_digest, scenario_digests, Move, MoveUndo};
pub use design_solver::{DesignSolver, RefitParams, SolveOutcome, SolveStats};
pub use dsd_recovery::{ScenarioDigest, ScenarioOutcomeCache};
pub use env::Environment;
pub use eval_cache::{CacheStats, CandidateKey, EvalCache, DEFAULT_CACHE_CAPACITY};
pub use exhaustive::{
    combination_count, exhaustive_optimal, exhaustive_optimal_with, ExhaustiveError,
    ExhaustiveOptions, ExhaustiveResult, MAX_COMBINATIONS,
};
pub use explain::{technique_marginals, CostAttribution, RunnerUp, TechniqueMarginal};
pub use objective::Objective;
pub use parallel::{parallel_solve, parallel_solve_with_cache};
pub use portfolio::{Portfolio, PortfolioOutcome};
pub use reconfigure::Reconfigurator;
pub use tournament::{
    run_tournament, HeuristicEntry, HeuristicSummary, InstanceResult, TournamentConfig,
    TournamentReport,
};
