//! Work-stealing portfolio solver.
//!
//! [`parallel_solve`](crate::parallel_solve) runs one greedy/refit solver
//! per seed — embarrassingly parallel, but every worker runs the *same*
//! strategy and learns nothing from the others. The portfolio keeps those
//! independent restarts as its backbone (so it can never do worse) and
//! layers two cooperation mechanisms on top:
//!
//! * **a shared incumbent** — a seqlock-style slot (atomic epoch + atomic
//!   cost bits + guarded payload) every finished task publishes into.
//!   Diversification tasks (annealing, tabu) adopt the incumbent as their
//!   starting design when one exists, so later tasks refine the best
//!   design found so far instead of restarting from scratch;
//! * **work stealing** — tasks are dealt round-robin onto per-worker
//!   deques; a worker that drains its own deque steals from the back of
//!   its neighbors', so stragglers never leave cores idle.
//!
//! All workers share one [`EvalCache`] (completions replay bit-identically
//! across threads) and each worker keeps one scenario-outcome cache for
//! its whole lifetime, so scenario pricing persists across the tasks it
//! executes.
//!
//! # Determinism and the baseline guarantee
//!
//! The final winner is an order-independent *min* over all task results
//! under the total order (score, seed, strategy rank). Greedy tasks run
//! the exact same solver, seeds, and budget as
//! [`parallel_solve`](crate::parallel_solve), and shared-cache replays are
//! bit-identical, so the portfolio's winner costs no more than the
//! independent-restart baseline's regardless of thread scheduling. With
//! one worker and cooperation off the portfolio *is* the sequential
//! min-over-seeds, bit for bit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_obs::progress;
use dsd_recovery::ScenarioOutcomeCache;

use crate::budget::Budget;
use crate::candidate::Candidate;
use crate::design_solver::{DesignSolver, SolveOutcome, SolveStats};
use crate::env::Environment;
use crate::eval_cache::{EvalCache, DEFAULT_CACHE_CAPACITY};
use crate::heuristics::{SimulatedAnnealing, TabuSearch};

/// One unit of portfolio work: a full solver run on one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    /// The two-stage greedy/refit solver — the independent-restart
    /// baseline, replicated verbatim.
    Greedy { seed: u64 },
    /// Simulated annealing, refining the shared incumbent when one
    /// exists.
    Anneal { seed: u64 },
    /// Tabu search, refining the shared incumbent when one exists.
    Tabu { seed: u64 },
}

impl Task {
    fn seed(self) -> u64 {
        match self {
            Task::Greedy { seed } | Task::Anneal { seed } | Task::Tabu { seed } => seed,
        }
    }

    /// Tie-break rank: the baseline strategy wins ties so adding
    /// cooperative strategies can never change a tied outcome.
    fn rank(self) -> u8 {
        match self {
            Task::Greedy { .. } => 0,
            Task::Anneal { .. } => 1,
            Task::Tabu { .. } => 2,
        }
    }

    /// Span name for the profiler's per-task frames (static per strategy
    /// so trees from all workers merge by path).
    fn span_name(self) -> &'static str {
        match self {
            Task::Greedy { .. } => "portfolio.greedy",
            Task::Anneal { .. } => "portfolio.anneal",
            Task::Tabu { .. } => "portfolio.tabu",
        }
    }
}

/// Totally ordered key identifying a task result: lower is better. Score
/// first (positive finite costs, compared by bit pattern — identical to
/// numeric order), then producing seed, then strategy rank.
type ResultKey = (u64, u64, u8);

fn result_key(score: f64, seed: u64, rank: u8) -> ResultKey {
    (score.to_bits(), seed, rank)
}

/// The seqlock-style shared incumbent.
///
/// `cost_bits` holds the published score's bit pattern (`u64::MAX` while
/// empty) and is readable lock-free: workers peek it to decide whether
/// locking the payload is worth it. `epoch` is odd while a publish is in
/// flight and increments twice per successful publish, so readers can
/// detect both "a write is happening" and "something changed since I last
/// looked" without taking the lock.
struct SharedIncumbent {
    epoch: AtomicU64,
    cost_bits: AtomicU64,
    slot: Mutex<Option<IncumbentEntry>>,
}

struct IncumbentEntry {
    key: ResultKey,
    candidate: Candidate,
}

impl SharedIncumbent {
    fn new() -> Self {
        SharedIncumbent {
            epoch: AtomicU64::new(0),
            cost_bits: AtomicU64::new(u64::MAX),
            slot: Mutex::new(None),
        }
    }

    /// Publishes a finished task's best design if it beats the current
    /// incumbent under the (score, seed, rank) order.
    fn publish(&self, key: ResultKey, candidate: &Candidate) {
        // Cheap rejection without the lock: scores are monotone
        // decreasing, so a strictly worse score can never win.
        if key.0 > self.cost_bits.load(Ordering::Acquire) {
            dsd_obs::add("portfolio.publish_rejects", 1);
            return;
        }
        let mut slot = self.slot.lock().expect("incumbent lock poisoned");
        let better = slot.as_ref().is_none_or(|held| key < held.key);
        if better {
            self.epoch.fetch_add(1, Ordering::AcqRel); // now odd: write in flight
            self.cost_bits.store(key.0, Ordering::Release);
            *slot = Some(IncumbentEntry { key, candidate: candidate.clone() });
            self.epoch.fetch_add(1, Ordering::AcqRel); // even again: published
            dsd_obs::add("portfolio.publish_accepts", 1);
        } else {
            dsd_obs::add("portfolio.publish_rejects", 1);
        }
    }

    /// Returns a clone of the current incumbent when one exists and its
    /// score (bit pattern) beats `than_bits`. The lock-free peek makes
    /// the common no-incumbent / not-better case free.
    fn adopt_if_better(&self, than_bits: u64) -> Option<(f64, Candidate)> {
        if self.cost_bits.load(Ordering::Acquire) >= than_bits {
            dsd_obs::add("portfolio.adopt_rejects", 1);
            return None;
        }
        let slot = self.slot.lock().expect("incumbent lock poisoned");
        let adopted = slot
            .as_ref()
            .filter(|held| held.key.0 < than_bits)
            .map(|held| (f64::from_bits(held.key.0), held.candidate.clone()));
        dsd_obs::add(
            if adopted.is_some() { "portfolio.adopts" } else { "portfolio.adopt_rejects" },
            1,
        );
        adopted
    }

    /// Published-generation count (half the epoch, which bumps twice per
    /// successful publish).
    fn generations(&self) -> u64 {
        self.epoch.load(Ordering::Acquire) / 2
    }
}

/// Outcome of a portfolio run: the merged [`SolveOutcome`] plus
/// cooperation counters.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The winning design and merged run statistics (stats are summed
    /// over every task, like [`crate::parallel_solve`]).
    pub outcome: SolveOutcome,
    /// Worker threads used.
    pub workers: usize,
    /// Tasks executed (greedy restarts plus cooperative refinements).
    pub tasks: u64,
    /// Tasks a worker stole from another worker's deque.
    pub steals: u64,
    /// Times a task started from the shared incumbent instead of a
    /// random design.
    pub adoptions: u64,
    /// Incumbent publishes that improved the shared slot.
    pub incumbent_generations: u64,
}

/// Work-stealing portfolio of design-space search strategies.
///
/// ```no_run
/// use dsd_core::{Budget, Environment, Portfolio};
/// # fn env() -> Environment { unimplemented!() }
/// let environment = env();
/// let outcome = Portfolio::new(&environment)
///     .with_workers(8)
///     .solve(Budget::iterations(100), &[1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Portfolio<'e> {
    env: &'e Environment,
    workers: usize,
    cooperation: bool,
}

impl<'e> Portfolio<'e> {
    /// Creates a portfolio sized to the machine (one worker per available
    /// CPU), with cooperation enabled.
    #[must_use]
    pub fn new(env: &'e Environment) -> Self {
        let workers =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        Portfolio { env, workers, cooperation: true }
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Toggles cooperation. When off, only the greedy baseline tasks run
    /// — one worker then reproduces the sequential min-over-seeds bit for
    /// bit; many workers reproduce [`crate::parallel_solve`] (with its
    /// lowest-seed tie-break).
    #[must_use]
    pub fn with_cooperation(mut self, cooperation: bool) -> Self {
        self.cooperation = cooperation;
        self
    }

    /// Runs the portfolio: every seed gets a greedy baseline task and —
    /// with cooperation on — an annealing and a tabu refinement task,
    /// each with the same per-task `budget`. Returns the best design
    /// under the deterministic (score, seed, strategy) order.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or a worker thread panics.
    #[must_use]
    pub fn solve(&self, budget: Budget, seeds: &[u64]) -> PortfolioOutcome {
        let cache = EvalCache::new(DEFAULT_CACHE_CAPACITY);
        self.solve_with_cache(budget, seeds, &cache)
    }

    /// [`Portfolio::solve`] with a caller-provided shared evaluation
    /// cache (reusable across invocations).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or a worker thread panics.
    #[must_use]
    pub fn solve_with_cache(
        &self,
        budget: Budget,
        seeds: &[u64],
        cache: &EvalCache,
    ) -> PortfolioOutcome {
        assert!(!seeds.is_empty(), "need at least one seed");
        let started = dsd_obs::Stopwatch::start();
        let mut span = dsd_obs::span("solver.portfolio", "solver");
        span.arg("workers", self.workers);
        span.arg("seeds", seeds.len());
        dsd_obs::gauge("portfolio.workers", self.workers as f64);
        progress::phase_entered("portfolio");

        // Deal tasks round-robin onto per-worker deques: baseline greedy
        // tasks first (lowest seeds land on distinct workers), then the
        // cooperative refinements, which benefit from starting late —
        // there is usually an incumbent to adopt by the time they run.
        let mut tasks: Vec<Task> = seeds.iter().map(|&seed| Task::Greedy { seed }).collect();
        if self.cooperation {
            tasks.extend(seeds.iter().map(|&seed| Task::Anneal { seed }));
            tasks.extend(seeds.iter().map(|&seed| Task::Tabu { seed }));
        }
        let task_count = tasks.len() as u64;
        let deques: Vec<Mutex<VecDeque<Task>>> =
            (0..self.workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            deques[i % self.workers].lock().expect("deque lock poisoned").push_back(task);
        }

        let incumbent = SharedIncumbent::new();
        let results: Mutex<Vec<(ResultKey, SolveOutcome)>> = Mutex::new(Vec::new());
        let (steals, adoptions) = (AtomicU64::new(0), AtomicU64::new(0));
        let recorder = dsd_obs::current();
        let channel = dsd_obs::progress::current();

        std::thread::scope(|scope| {
            for own in 0..self.workers {
                let (deques, incumbent, results) = (&deques, &incumbent, &results);
                let (steals, adoptions) = (&steals, &adoptions);
                let recorder = recorder.clone();
                let channel = channel.clone();
                scope.spawn(move || {
                    let _obs_guard = recorder.as_ref().map(dsd_obs::Recorder::install);
                    let _progress_guard = channel.as_ref().map(dsd_obs::ProgressChannel::install);
                    // The worker frame: per-task spans nest inside it, so
                    // in the folded profile a worker's self time *is* its
                    // idle (fetch/steal/publish) time and its children are
                    // its eval time.
                    let mut worker_span = dsd_obs::span("portfolio.worker", "portfolio");
                    worker_span.arg("worker", own as u64);
                    let worker_started = dsd_obs::enabled().then(dsd_obs::Stopwatch::start);
                    let mut eval_secs = 0.0f64;
                    // One scenario-outcome cache for this worker's whole
                    // lifetime: scenario pricing persists across tasks.
                    let mut scache = ScenarioOutcomeCache::new();
                    let mut my_steals = 0u64;
                    let mut my_adoptions = 0u64;
                    while let Some(task) = next_task(own, deques, &mut my_steals) {
                        let mut task_span = dsd_obs::span(task.span_name(), "portfolio");
                        task_span.arg("seed", task.seed());
                        let task_started = worker_started.is_some().then(dsd_obs::Stopwatch::start);
                        let outcome = self.run_task(
                            task,
                            budget,
                            cache,
                            incumbent,
                            &mut scache,
                            &mut my_adoptions,
                        );
                        if let Some(started) = task_started {
                            eval_secs += started.elapsed_secs();
                        }
                        drop(task_span);
                        if let Some(best) = &outcome.best {
                            let score = self.env.score(best.cost()).as_f64();
                            let key = result_key(score, task.seed(), task.rank());
                            incumbent.publish(key, best);
                            results.lock().expect("results lock poisoned").push((key, outcome));
                        } else {
                            let key = (u64::MAX, task.seed(), task.rank());
                            results.lock().expect("results lock poisoned").push((key, outcome));
                        }
                    }
                    if let Some(started) = worker_started {
                        // Idle-vs-eval split, also available without a
                        // trace file: merged histograms over all workers.
                        dsd_obs::observe("portfolio.worker_eval_secs", eval_secs);
                        dsd_obs::observe(
                            "portfolio.worker_idle_secs",
                            (started.elapsed_secs() - eval_secs).max(0.0),
                        );
                    }
                    steals.fetch_add(my_steals, Ordering::Relaxed);
                    adoptions.fetch_add(my_adoptions, Ordering::Relaxed);
                });
            }
        });

        let results = results.into_inner().expect("results lock poisoned");
        let mut stats = SolveStats::default();
        for (_, outcome) in &results {
            stats.merge(&outcome.stats);
        }
        // Order-independent min: the winner depends only on the task set,
        // never on which thread finished first.
        let mut outcome = results
            .into_iter()
            .min_by_key(|(key, _)| *key)
            .map(|(_, outcome)| outcome)
            .expect("at least one task ran");
        outcome.stats = stats;
        outcome.elapsed = started.elapsed();
        outcome.cache = Some(cache.stats());
        cache.publish_occupancy();
        PortfolioOutcome {
            outcome,
            workers: self.workers,
            tasks: task_count,
            steals: steals.into_inner(),
            adoptions: adoptions.into_inner(),
            incumbent_generations: incumbent.generations(),
        }
    }

    fn run_task(
        &self,
        task: Task,
        budget: Budget,
        cache: &EvalCache,
        incumbent: &SharedIncumbent,
        scache: &mut ScenarioOutcomeCache,
        my_adoptions: &mut u64,
    ) -> SolveOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(task.seed());
        match task {
            // The baseline, verbatim: own internal scenario cache, so a
            // greedy task's result is bit-identical to the sequential
            // solver's run on the same seed no matter which worker or
            // shared cache state executes it.
            Task::Greedy { .. } => {
                DesignSolver::new(self.env).with_cache(cache).solve(budget, &mut rng)
            }
            Task::Anneal { .. } => {
                let annealer = SimulatedAnnealing::new(self.env).with_cache(cache);
                match incumbent.adopt_if_better(u64::MAX) {
                    Some((cost, start)) => {
                        *my_adoptions += 1;
                        progress::incumbent_adopted(cost, *my_adoptions);
                        annealer.solve_from(start, budget, scache, &mut rng)
                    }
                    None => annealer.solve_with(budget, scache, &mut rng),
                }
            }
            Task::Tabu { .. } => {
                let tabu = TabuSearch::new(self.env).with_cache(cache);
                match incumbent.adopt_if_better(u64::MAX) {
                    Some((cost, start)) => {
                        *my_adoptions += 1;
                        progress::incumbent_adopted(cost, *my_adoptions);
                        tabu.solve_from(start, budget, scache, &mut rng)
                    }
                    None => tabu.solve_with(budget, scache, &mut rng),
                }
            }
        }
    }
}

/// Pops the next task for worker `own`: front of its own deque first,
/// then the *back* of each neighbor's deque in cyclic order (classic
/// work-stealing — owners and thieves contend on opposite ends).
fn next_task(own: usize, deques: &[Mutex<VecDeque<Task>>], my_steals: &mut u64) -> Option<Task> {
    if let Some(task) = deques[own].lock().expect("deque lock poisoned").pop_front() {
        return Some(task);
    }
    // Contention telemetry: how long one pass over the victims' deque
    // locks takes (successful or not). Only timed when a recorder is
    // listening, and never consumes randomness.
    let probe = dsd_obs::enabled().then(dsd_obs::Stopwatch::start);
    let stolen = steal_task(own, deques, my_steals);
    if let Some(probe) = probe {
        dsd_obs::observe("portfolio.steal_latency", probe.elapsed_secs());
    }
    stolen
}

/// One cyclic steal pass over the other workers' deques.
fn steal_task(own: usize, deques: &[Mutex<VecDeque<Task>>], my_steals: &mut u64) -> Option<Task> {
    let n = deques.len();
    for offset in 1..n {
        let victim = (own + offset) % n;
        if let Some(task) = deques[victim].lock().expect("deque lock poisoned").pop_back() {
            *my_steals += 1;
            progress::task_stolen(victim as u64, *my_steals);
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
    use dsd_workload::WorkloadSet;
    use std::sync::Arc;

    fn env() -> Environment {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        };
        Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        )
    }

    #[test]
    fn single_worker_without_cooperation_matches_sequential_min() {
        let e = env();
        let budget = Budget::iterations(10);
        let seeds = [7u64, 3, 11];
        let portfolio =
            Portfolio::new(&e).with_workers(1).with_cooperation(false).solve(budget, &seeds);
        // Sequential reference: lowest cost, ties to lowest seed.
        let mut best: Option<(u64, f64)> = None;
        for &seed in &seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let out = DesignSolver::new(&e).solve(budget, &mut rng);
            if let Some(b) = out.best {
                let cost = e.score(b.cost()).as_f64();
                let better = best.is_none_or(|(held_seed, held)| {
                    cost < held || (cost == held && seed < held_seed)
                });
                if better {
                    best = Some((seed, cost));
                }
            }
        }
        let expected = best.expect("feasible").1;
        let got = e.score(portfolio.outcome.best.expect("feasible").cost()).as_f64();
        assert_eq!(got.to_bits(), expected.to_bits(), "got {got}, expected {expected}");
        assert_eq!(portfolio.tasks, 3);
        assert_eq!(portfolio.steals, 0, "single worker has nobody to steal from");
    }

    #[test]
    fn portfolio_is_deterministic_per_seed_set() {
        let e = env();
        let budget = Budget::iterations(8);
        let a = Portfolio::new(&e).with_workers(1).with_cooperation(false).solve(budget, &[4, 9]);
        let b = Portfolio::new(&e).with_workers(1).with_cooperation(false).solve(budget, &[9, 4]);
        assert_eq!(
            a.outcome.best.map(|c| c.cost().total().as_f64().to_bits()),
            b.outcome.best.map(|c| c.cost().total().as_f64().to_bits()),
        );
    }

    #[test]
    fn cooperative_portfolio_bounded_by_baseline_and_lower_bound() {
        let e = env();
        let budget = Budget::iterations(10);
        let seeds = [1u64, 2, 3, 4];
        let baseline = crate::parallel::parallel_solve(&e, budget, &seeds);
        let baseline_cost = e.score(baseline.best.expect("feasible").cost());
        let portfolio = Portfolio::new(&e).with_workers(4).solve(budget, &seeds);
        let portfolio_cost = e.score(portfolio.outcome.best.expect("feasible").cost());
        assert!(
            portfolio_cost <= baseline_cost,
            "portfolio {portfolio_cost:?} must not lose to independent restarts {baseline_cost:?}"
        );
        let bound = e.certified_lower_bound();
        assert!(
            portfolio_cost.as_f64() >= bound.total.as_f64() - 1e-6,
            "portfolio {portfolio_cost:?} below certified lower bound {bound:?}"
        );
        assert_eq!(portfolio.tasks, 12, "4 seeds x 3 strategies");
    }

    #[test]
    fn incumbent_orders_by_score_then_seed_then_rank() {
        let e = env();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut c = crate::heuristics::random_design(&e, 10, &mut rng).expect("feasible");
        c.evaluate(&e);
        let shared = SharedIncumbent::new();
        assert!(shared.adopt_if_better(u64::MAX).is_none(), "empty slot adopts nothing");
        shared.publish(result_key(100.0, 5, 2), &c);
        assert_eq!(shared.generations(), 1);
        // Worse score: rejected without bumping the epoch.
        shared.publish(result_key(200.0, 1, 0), &c);
        assert_eq!(shared.generations(), 1);
        // Same score, lower seed: wins.
        shared.publish(result_key(100.0, 2, 2), &c);
        assert_eq!(shared.generations(), 2);
        // Same score and seed, baseline rank: wins.
        shared.publish(result_key(100.0, 2, 0), &c);
        assert_eq!(shared.generations(), 3);
        let adopted = shared.adopt_if_better(u64::MAX).expect("incumbent present");
        assert_eq!(adopted.0.to_bits(), 100.0f64.to_bits());
        assert!(shared.adopt_if_better(100.0f64.to_bits()).is_none(), "not strictly better");
    }

    #[test]
    fn stealing_happens_when_deques_are_unbalanced() {
        let deques: Vec<Mutex<VecDeque<Task>>> =
            vec![Mutex::new(VecDeque::new()), Mutex::new(VecDeque::new())];
        deques[1].lock().unwrap().extend([Task::Greedy { seed: 1 }, Task::Greedy { seed: 2 }]);
        let mut steals = 0;
        // Worker 0 owns an empty deque: both pops must steal from the
        // back of worker 1's.
        assert_eq!(next_task(0, &deques, &mut steals), Some(Task::Greedy { seed: 2 }));
        assert_eq!(next_task(0, &deques, &mut steals), Some(Task::Greedy { seed: 1 }));
        assert_eq!(next_task(0, &deques, &mut steals), None);
        assert_eq!(steals, 2);
    }
}
