//! Design objectives: how candidate costs are ranked.
//!
//! The paper minimizes overall cost = outlays + expected penalties. A
//! common real-world variant is *budget-capped* design: "minimize my
//! exposure, but capital expenditure may not exceed B". The cap is
//! enforced with an exact-penalty formulation so the same randomized
//! search machinery applies unchanged.

use serde::{Deserialize, Serialize};

use dsd_units::Dollars;

use crate::candidate::CostBreakdown;

/// How a [`CostBreakdown`] is collapsed into the scalar the solvers
/// minimize.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// The paper's objective: amortized outlays plus expected penalties.
    #[default]
    MinimizeTotal,
    /// Minimize expected penalties subject to an annual outlay cap.
    /// Designs over the cap are charged the overrun at
    /// [`Objective::OVERRUN_WEIGHT`] dollars per dollar, which dominates
    /// any achievable penalty reduction, so the search is driven back
    /// under the cap whenever a compliant design exists.
    PenaltiesWithOutlayCap {
        /// Maximum annual (amortized) outlay.
        cap: Dollars,
    },
}

impl Objective {
    /// Exact-penalty weight for outlay overruns.
    pub const OVERRUN_WEIGHT: f64 = 1e6;

    /// The scalar score the solvers minimize (lower is better).
    #[must_use]
    pub fn score(&self, cost: &CostBreakdown) -> Dollars {
        match self {
            Objective::MinimizeTotal => cost.total(),
            Objective::PenaltiesWithOutlayCap { cap } => {
                let overrun = cost.outlay - *cap; // saturating at zero
                cost.penalties.total() + overrun * Self::OVERRUN_WEIGHT
            }
        }
    }

    /// True if the breakdown satisfies the objective's hard constraints.
    #[must_use]
    pub fn is_compliant(&self, cost: &CostBreakdown) -> bool {
        match self {
            Objective::MinimizeTotal => true,
            Objective::PenaltiesWithOutlayCap { cap } => cost.outlay <= *cap,
        }
    }

    /// Human-readable decomposition of how this objective collapses a
    /// breakdown into the solver's scalar, for `dsd explain`.
    #[must_use]
    pub fn explain(&self, cost: &CostBreakdown) -> String {
        match self {
            Objective::MinimizeTotal => format!(
                "minimize total = outlay ${:.0} + penalties ${:.0} = ${:.0}/yr",
                cost.outlay.as_f64(),
                cost.penalties.total().as_f64(),
                self.score(cost).as_f64()
            ),
            Objective::PenaltiesWithOutlayCap { cap } => {
                let overrun = cost.outlay - *cap;
                format!(
                    "minimize penalties ${:.0} subject to outlay ${:.0} <= cap ${:.0} \
                     (overrun ${:.0} charged at {:.0e}x) = ${:.0}",
                    cost.penalties.total().as_f64(),
                    cost.outlay.as_f64(),
                    cap.as_f64(),
                    overrun.as_f64(),
                    Self::OVERRUN_WEIGHT,
                    self.score(cost).as_f64()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_recovery::PenaltySummary;

    fn breakdown(outlay: f64, outage: f64, loss: f64) -> CostBreakdown {
        CostBreakdown {
            outlay: Dollars::new(outlay),
            penalties: PenaltySummary {
                outage: Dollars::new(outage),
                loss: Dollars::new(loss),
                per_app: Default::default(),
            },
        }
    }

    #[test]
    fn default_objective_is_the_papers() {
        let cost = breakdown(10.0, 20.0, 30.0);
        assert_eq!(Objective::default().score(&cost).as_f64(), 60.0);
        assert!(Objective::default().is_compliant(&cost));
    }

    #[test]
    fn cap_ignores_outlay_below_the_cap() {
        let objective = Objective::PenaltiesWithOutlayCap { cap: Dollars::new(100.0) };
        let cheap = breakdown(80.0, 50.0, 0.0);
        assert_eq!(objective.score(&cheap).as_f64(), 50.0, "outlay under cap is free");
        assert!(objective.is_compliant(&cheap));
    }

    #[test]
    fn cap_overrun_dominates_penalty_savings() {
        let objective = Objective::PenaltiesWithOutlayCap { cap: Dollars::new(100.0) };
        let compliant = breakdown(100.0, 100_000.0, 0.0);
        let overrun = breakdown(101.0, 0.0, 0.0); // saves all penalties
        assert!(
            objective.score(&overrun) > objective.score(&compliant),
            "a $1 overrun must outweigh a $100K penalty saving"
        );
        assert!(!objective.is_compliant(&overrun));
    }
}
