//! The design environment: every input of the problem statement (§2.6).

use std::sync::Arc;

use dsd_failure::FailureModel;
use dsd_protection::{SizingPolicy, TechniqueCatalog};
use dsd_recovery::RecoveryPolicy;
use dsd_resources::Topology;
use dsd_units::Dollars;
use dsd_workload::{ClassThresholds, WorkloadSet};

use crate::candidate::CostBreakdown;
use crate::objective::Objective;

/// Everything the solvers need to evaluate and compare candidate designs:
/// application penalty rates and access characteristics, the site
/// topology and device catalog, failure scenarios, and the modeling
/// policies (paper §2.6).
#[derive(Debug, Clone)]
pub struct Environment {
    /// The applications to protect.
    pub workloads: WorkloadSet,
    /// Sites, device slots and link routes.
    pub topology: Arc<Topology>,
    /// Candidate data protection techniques (Table 2).
    pub catalog: TechniqueCatalog,
    /// Failure scopes and annual likelihoods.
    pub failures: FailureModel,
    /// Demand-sizing assumptions.
    pub sizing: SizingPolicy,
    /// Recovery timing constants.
    pub recovery: RecoveryPolicy,
    /// Business-class thresholds.
    pub thresholds: ClassThresholds,
    /// How candidate costs are ranked by the solvers.
    pub objective: Objective,
}

impl Environment {
    /// Creates an environment with default sizing/recovery policies and
    /// class thresholds.
    #[must_use]
    pub fn new(
        workloads: WorkloadSet,
        topology: Arc<Topology>,
        catalog: TechniqueCatalog,
        failures: FailureModel,
    ) -> Self {
        Environment {
            workloads,
            topology,
            catalog,
            failures,
            sizing: SizingPolicy::default(),
            recovery: RecoveryPolicy::default(),
            thresholds: ClassThresholds::default(),
            objective: Objective::default(),
        }
    }

    /// The solvers' scalar score for a cost breakdown (lower is better).
    #[must_use]
    pub fn score(&self, cost: &CostBreakdown) -> Dollars {
        self.objective.score(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::FailureRates;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site};

    #[test]
    fn environment_builds_with_defaults() {
        let sites = vec![Site::new(0, "A").with_array_slot(DeviceSpec::xp1200())];
        let env = Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        );
        assert_eq!(env.workloads.len(), 4);
        assert_eq!(env.catalog.len(), 9);
        assert_eq!(env.sizing.snapshot_space_fraction, 0.2);
    }
}
