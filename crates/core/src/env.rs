//! The design environment: every input of the problem statement (§2.6).

use std::sync::{Arc, OnceLock};

use dsd_failure::FailureModel;
use dsd_protection::{SizingPolicy, TechniqueCatalog};
use dsd_recovery::RecoveryPolicy;
use dsd_resources::Topology;
use dsd_units::Dollars;
use dsd_workload::{ClassThresholds, WorkloadSet};

use crate::bounds::{lower_bound, LowerBound};
use crate::candidate::CostBreakdown;
use crate::objective::Objective;

/// Everything the solvers need to evaluate and compare candidate designs:
/// application penalty rates and access characteristics, the site
/// topology and device catalog, failure scenarios, and the modeling
/// policies (paper §2.6).
#[derive(Debug)]
pub struct Environment {
    /// The applications to protect.
    pub workloads: WorkloadSet,
    /// Sites, device slots and link routes.
    pub topology: Arc<Topology>,
    /// Candidate data protection techniques (Table 2).
    pub catalog: TechniqueCatalog,
    /// Failure scopes and annual likelihoods.
    pub failures: FailureModel,
    /// Demand-sizing assumptions.
    pub sizing: SizingPolicy,
    /// Recovery timing constants.
    pub recovery: RecoveryPolicy,
    /// Business-class thresholds.
    pub thresholds: ClassThresholds,
    /// How candidate costs are ranked by the solvers.
    pub objective: Objective,
    /// Memoized relaxation lower bound — see
    /// [`Environment::certified_lower_bound`].
    bound_memo: OnceLock<LowerBound>,
}

impl Clone for Environment {
    fn clone(&self) -> Self {
        // The bound memo deliberately does NOT survive a clone: clones
        // are routinely mutated before solving (sensitivity sweeps vary
        // `failures`, ablations swap `catalog`), and a carried-over memo
        // would silently certify against the pre-mutation inputs.
        Environment {
            workloads: self.workloads.clone(),
            topology: Arc::clone(&self.topology),
            catalog: self.catalog.clone(),
            failures: self.failures,
            sizing: self.sizing,
            recovery: self.recovery,
            thresholds: self.thresholds,
            objective: self.objective,
            bound_memo: OnceLock::new(),
        }
    }
}

impl Environment {
    /// Creates an environment with default sizing/recovery policies and
    /// class thresholds.
    #[must_use]
    pub fn new(
        workloads: WorkloadSet,
        topology: Arc<Topology>,
        catalog: TechniqueCatalog,
        failures: FailureModel,
    ) -> Self {
        Environment {
            workloads,
            topology,
            catalog,
            failures,
            sizing: SizingPolicy::default(),
            recovery: RecoveryPolicy::default(),
            thresholds: ClassThresholds::default(),
            objective: Objective::default(),
            bound_memo: OnceLock::new(),
        }
    }

    /// The relaxation lower bound for this environment, computed on
    /// first use and memoized ([`crate::bounds::lower_bound`] is pure
    /// arithmetic over the inputs, so the memo is sound as long as the
    /// environment is not mutated afterwards — mutate fields *before*
    /// solving, or clone first: a clone always starts with an empty
    /// memo). The flight recorder leans on this so enabling a progress
    /// channel pays for the bound once per environment, not once per
    /// solve.
    pub fn certified_lower_bound(&self) -> &LowerBound {
        self.bound_memo.get_or_init(|| lower_bound(self))
    }

    /// The solvers' scalar score for a cost breakdown (lower is better).
    #[must_use]
    pub fn score(&self, cost: &CostBreakdown) -> Dollars {
        self.objective.score(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_failure::FailureRates;
    use dsd_resources::{DeviceSpec, NetworkSpec, Site};

    #[test]
    fn bound_memo_is_stable_and_does_not_survive_a_clone() {
        let mk = |i: usize| {
            Site::new(i, format!("P{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(4)
        };
        let sites = vec![mk(0), mk(1)];
        let env = Environment::new(
            WorkloadSet::scaled_paper_mix(2),
            Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        );
        let first = env.certified_lower_bound().total;
        assert_eq!(first.as_f64().to_bits(), env.certified_lower_bound().total.as_f64().to_bits());

        // A clone starts with an empty memo, so mutating the clone and
        // re-querying certifies against the mutated inputs (dropping an
        // application drops its positive outlay floor from the bound).
        let mut cheaper = env.clone();
        cheaper.workloads = WorkloadSet::scaled_paper_mix(1);
        assert!(cheaper.certified_lower_bound().total < first, "mutated clone re-certifies");
        assert_eq!(env.certified_lower_bound().total, first, "original memo untouched");
    }

    #[test]
    fn environment_builds_with_defaults() {
        let sites = vec![Site::new(0, "A").with_array_slot(DeviceSpec::xp1200())];
        let env = Environment::new(
            WorkloadSet::scaled_paper_mix(4),
            Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
            TechniqueCatalog::table2(),
            FailureModel::new(FailureRates::case_study()),
        );
        assert_eq!(env.workloads.len(), 4);
        assert_eq!(env.catalog.len(), 9);
        assert_eq!(env.sizing.snapshot_space_fraction, 0.2);
    }
}
