//! Integration tests for the solver's `dsd-obs` instrumentation: the
//! trace and metrics must describe the search faithfully, and recording
//! must never change what the search computes.

use dsd_core::{parallel_solve, Budget, DesignSolver, Environment, EvalCache, SolveStats};
use dsd_failure::{FailureModel, FailureRates};
use dsd_obs as obs;
use dsd_protection::TechniqueCatalog;
use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd_workload::WorkloadSet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn env(apps: usize) -> Environment {
    let mk = |i: usize| {
        Site::new(i, format!("P{i}"))
            .with_array_slot(DeviceSpec::xp1200())
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_high())
            .with_compute(8)
    };
    Environment::new(
        WorkloadSet::scaled_paper_mix(apps),
        Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

/// Recording must not perturb the search: same seed, same best design,
/// with and without an installed recorder (instrumentation consumes no
/// randomness and mutates no solver state).
#[test]
fn instrumented_run_is_bit_identical_to_uninstrumented() {
    let e = env(4);
    let bare = {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        DesignSolver::new(&e).solve(Budget::iterations(15), &mut rng)
    };
    let recorder = obs::Recorder::new();
    let traced = {
        let _g = recorder.install();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        DesignSolver::new(&e).solve(Budget::iterations(15), &mut rng)
    };
    assert_eq!(
        bare.best.as_ref().map(|b| b.cost().total().as_f64()),
        traced.best.as_ref().map(|b| b.cost().total().as_f64()),
    );
    assert_eq!(bare.stats.nodes_evaluated, traced.stats.nodes_evaluated);
    assert_eq!(bare.stats.greedy_builds, traced.stats.greedy_builds);
    assert_eq!(bare.stats.refit_rounds, traced.stats.refit_rounds);
}

mod profiling {
    use super::*;
    use dsd_core::{ConfigurationSolver, Portfolio, Thoroughness};
    use dsd_obs::ProfileTree;

    /// The profiler's frames (polish span, per-Move apply/undo/delta
    /// counters, cache probe timing, portfolio telemetry) must not
    /// perturb the configuration solver: completing the same candidate
    /// with and without a recorder yields bit-identical costs.
    #[test]
    fn profiled_config_solve_is_bit_identical() {
        let e = env(4);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let out = DesignSolver::new(&e).solve(Budget::iterations(10), &mut rng);
        let best = out.best.expect("feasible design");

        let bare_cost = {
            let mut candidate = best.clone();
            ConfigurationSolver::new(&e).complete(&mut candidate, Thoroughness::Full)
        };
        let recorder = obs::Recorder::new();
        let traced_cost = {
            let _g = recorder.install();
            let mut candidate = best;
            ConfigurationSolver::new(&e).complete(&mut candidate, Thoroughness::Full)
        };
        assert_eq!(
            bare_cost.total().as_f64().to_bits(),
            traced_cost.total().as_f64().to_bits(),
            "recording must not change the completed configuration"
        );
    }

    /// Same discipline for the portfolio (cooperation off, so the task
    /// set is fixed and the winner is deterministic): profiled and
    /// unprofiled runs find the bit-identical design.
    #[test]
    fn profiled_portfolio_solve_is_bit_identical() {
        let e = env(4);
        let budget = Budget::iterations(10);
        let solve = || {
            Portfolio::new(&e)
                .with_workers(2)
                .with_cooperation(false)
                .solve(budget, &[1, 2, 3])
                .outcome
                .best
                .map(|b| b.cost().total().as_f64())
        };
        let bare = solve();
        let recorder = obs::Recorder::new();
        let traced = {
            let _g = recorder.install();
            solve()
        };
        assert_eq!(bare.map(f64::to_bits), traced.map(f64::to_bits));
    }

    /// Folding a recorded solve yields a verifiable tree whose hot paths
    /// carry the explicit frames, attributing the bulk of the wall time
    /// below the root.
    #[test]
    fn profile_tree_attributes_the_solve() {
        let e = env(6);
        let cache = EvalCache::new(512);
        let recorder = obs::Recorder::new();
        {
            let _g = recorder.install();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let out =
                DesignSolver::new(&e).with_cache(&cache).solve(Budget::iterations(40), &mut rng);
            assert!(out.best.is_some());
        }
        let events = recorder.drain_events();
        let tree = ProfileTree::from_events(&events);
        tree.verify().expect("containment invariant");
        assert!(
            tree.attributed_fraction() > 0.90,
            "only {:.1}% of wall time attributed below the roots",
            tree.attributed_fraction() * 100.0
        );
        let paths: Vec<String> = tree.rows().into_iter().map(|r| r.path).collect();
        for expected in ["solver.solve", "solver.solve;solver.greedy", "solver.solve;solver.refit"]
        {
            assert!(paths.iter().any(|p| p == expected), "missing path {expected}: {paths:?}");
        }

        // The per-Move-kind counters and shard occupancy gauges rode the
        // same run.
        let snap = recorder.metrics_snapshot();
        let moves: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("eval.apply."))
            .map(|(_, v)| *v)
            .sum();
        assert!(moves > 0, "refit applies per-kind move counters: {:?}", snap.counters);
        assert!(
            snap.gauges.keys().any(|name| name.starts_with("eval_cache.shard_occupancy.")),
            "cached solve publishes per-shard occupancy: {:?}",
            snap.gauges.keys().collect::<Vec<_>>()
        );
        assert!(
            snap.histogram("eval_cache.probe_latency").is_some_and(|h| h.count > 0),
            "cache probes are timed"
        );
    }

    /// A profiled portfolio run records per-worker spans and contention
    /// telemetry, and the per-thread trees merge into one verifiable
    /// aggregate.
    #[test]
    fn portfolio_contention_telemetry_and_merged_tree() {
        let e = env(4);
        let recorder = obs::Recorder::new();
        {
            let _g = recorder.install();
            let _ = Portfolio::new(&e).with_workers(2).solve(Budget::iterations(12), &[1, 2, 3]);
        }
        let events = recorder.drain_events();
        let workers = events.iter().filter(|ev| ev.name == "portfolio.worker").count();
        assert_eq!(workers, 2, "one worker span per worker thread");
        assert!(
            events.iter().any(|ev| ev.name.starts_with("portfolio.greedy")),
            "per-task spans recorded"
        );

        // Per-worker trees (split by thread) merge losslessly into the
        // whole-run fold.
        let whole = ProfileTree::from_events(&events);
        whole.verify().expect("whole-run fold verifies");
        let threads: std::collections::BTreeSet<u64> = events.iter().map(|ev| ev.thread).collect();
        let mut merged = ProfileTree::default();
        for t in threads {
            let per: Vec<_> = events.iter().filter(|ev| ev.thread == t).cloned().collect();
            merged.merge(&ProfileTree::from_events(&per));
        }
        merged.verify().expect("merged per-worker trees verify");
        assert_eq!(merged.roots, whole.roots, "per-worker trees merge losslessly");

        let snap = recorder.metrics_snapshot();
        assert!(
            snap.histogram("portfolio.worker_eval_secs").is_some_and(|h| h.count == 2),
            "per-worker eval time observed"
        );
        assert!(
            snap.histogram("portfolio.worker_idle_secs").is_some_and(|h| h.count == 2),
            "per-worker idle time observed"
        );
        let publishes = snap.counter("portfolio.publish_accepts").unwrap_or(0)
            + snap.counter("portfolio.publish_rejects").unwrap_or(0);
        assert!(publishes > 0, "seqlock publish outcomes counted");
    }
}

mod recording {
    use super::*;

    /// A cached solve must emit the full event taxonomy: greedy
    /// placements, refit moves, cache hits/misses, scenario evaluations,
    /// and improvement points.
    #[test]
    fn solve_emits_the_event_taxonomy() {
        let e = env(4);
        let cache = EvalCache::new(512);
        let recorder = obs::Recorder::new();
        {
            let _g = recorder.install();
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let out =
                DesignSolver::new(&e).with_cache(&cache).solve(Budget::iterations(20), &mut rng);
            assert!(out.best.is_some());
        }
        let events = recorder.drain_events();
        let count = |name: &str| events.iter().filter(|ev| ev.name == name).count();
        assert!(count("greedy.place") > 0, "greedy placements traced");
        assert!(count("refit.move") > 0, "refit moves traced");
        assert!(count("recovery.scenario") > 0, "scenario evaluations traced");
        assert!(count("solver.improved") > 0, "improvement curve points traced");
        assert!(count("solver.solve") == 1, "one top-level solve span");
        assert!(
            count("cache.hit") + count("cache.miss") > 0,
            "cache lookups traced when a cache is attached"
        );
        // Improvement points carry the objective-vs-evaluations curve.
        let improved = events.iter().find(|ev| ev.name == "solver.improved").unwrap();
        assert!(improved.arg("evals").is_some());
        assert!(improved.arg("cost").is_some());
    }

    /// The metrics registry must expose the headline series and agree
    /// with the run's `SolveStats`.
    #[test]
    fn metrics_registry_agrees_with_solve_stats() {
        let e = env(4);
        let cache = EvalCache::new(512);
        let recorder = obs::Recorder::new();
        let out = {
            let _g = recorder.install();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            DesignSolver::new(&e).with_cache(&cache).solve(Budget::iterations(15), &mut rng)
        };
        let snap = recorder.metrics_snapshot();
        assert!(snap.series_count() >= 5, "got {} series", snap.series_count());

        // SolveStats is reconstructible from the registry (its counters
        // are a view over the published series).
        let view = SolveStats::from_snapshot(&snap);
        assert_eq!(view.greedy_builds, out.stats.greedy_builds);
        assert_eq!(view.greedy_failures, out.stats.greedy_failures);
        assert_eq!(view.refit_rounds, out.stats.refit_rounds);
        assert_eq!(view.nodes_evaluated, out.stats.nodes_evaluated);
        assert_eq!(view.cache_hits, out.stats.cache_hits);
        assert_eq!(view.cache_misses, out.stats.cache_misses);

        // Histograms observed on the hot paths. The latency histogram
        // covers configuration-solver completions — exactly the lookups
        // when a cache is attached ('nodes_evaluated' additionally counts
        // the greedy stage's trial evaluations).
        let lat = snap.histogram("solver.eval_latency").expect("eval latency observed");
        assert_eq!(lat.count, out.stats.cache_hits + out.stats.cache_misses);
        assert!(lat.count <= out.stats.nodes_evaluated);
        assert!(snap.histogram("recovery.schedule_len").is_some());

        // Cache-eye counters come from the cache itself.
        let cs = out.cache.expect("cache attached");
        assert_eq!(snap.counter("cache.hits"), Some(cs.hits));
        assert_eq!(snap.counter("cache.misses"), Some(cs.misses));
        assert_eq!(snap.gauges.get("cache.hit_ratio"), Some(&cs.hit_rate()));
    }

    /// `parallel_solve` must propagate the caller's recorder into its
    /// workers: every seed's events and metrics land in the one sink,
    /// and per-run stats published by each worker sum losslessly.
    #[test]
    fn parallel_solve_propagates_recorder_to_workers() {
        let e = env(4);
        let recorder = obs::Recorder::new();
        let out = {
            let _g = recorder.install();
            parallel_solve(&e, Budget::iterations(8), &[1, 2, 3])
        };
        let events = recorder.drain_events();
        let solves = events.iter().filter(|ev| ev.name == "solver.solve").count();
        assert_eq!(solves, 3, "one solve span per worker");
        let threads: std::collections::BTreeSet<u64> =
            events.iter().filter(|ev| ev.name == "solver.solve").map(|ev| ev.thread).collect();
        assert_eq!(threads.len(), 3, "workers record under distinct thread ids");
        let snap = recorder.metrics_snapshot();
        // Summed stats across workers equal the registry view.
        let view = SolveStats::from_snapshot(&snap);
        assert_eq!(view.nodes_evaluated, out.stats.nodes_evaluated);
        assert_eq!(view.greedy_builds, out.stats.greedy_builds);
    }

    /// The baseline heuristics publish their runs under the same series.
    #[test]
    fn heuristics_publish_into_the_registry() {
        let e = env(4);
        let recorder = obs::Recorder::new();
        {
            let _g = recorder.install();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let _ = dsd_core::heuristics::RandomHeuristic::new(&e)
                .solve(Budget::iterations(6), &mut rng);
            let _ = dsd_core::heuristics::SimulatedAnnealing::new(&e)
                .solve(Budget::iterations(6), &mut rng);
            let _ =
                dsd_core::heuristics::TabuSearch::new(&e).solve(Budget::iterations(6), &mut rng);
        }
        let events = recorder.drain_events();
        for span in ["random.solve", "anneal.solve", "tabu.solve"] {
            assert_eq!(events.iter().filter(|ev| ev.name == span).count(), 1, "{span}");
        }
        let snap = recorder.metrics_snapshot();
        assert!(snap.counter("random.feasible_samples").unwrap_or(0) > 0);
        assert!(
            snap.counter("anneal.accepted").unwrap_or(0)
                + snap.counter("anneal.rejected").unwrap_or(0)
                > 0
        );
    }
}
