//! Integration tests for the flight recorder: progress events must
//! describe the search faithfully (ordered, monotone incumbents,
//! per-worker lanes) and emission must never change what the search
//! computes.

use dsd_core::{
    heuristics::{HumanHeuristic, RandomHeuristic, SimulatedAnnealing, TabuSearch},
    lower_bound, parallel_solve, Budget, Certificate, DesignSolver, Environment,
};
use dsd_failure::{FailureModel, FailureRates};
use dsd_obs::progress::{self, ProgressChannel, ProgressKind};
use dsd_obs::ProgressEvent;
use dsd_protection::TechniqueCatalog;
use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd_units::Dollars;
use dsd_workload::WorkloadSet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn env(apps: usize) -> Environment {
    let mk = |i: usize| {
        Site::new(i, format!("P{i}"))
            .with_array_slot(DeviceSpec::xp1200())
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_high())
            .with_compute(8)
    };
    Environment::new(
        WorkloadSet::scaled_paper_mix(apps),
        Arc::new(Topology::fully_connected(vec![mk(0), mk(1)], NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

fn incumbent_costs(events: &[ProgressEvent]) -> Vec<f64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            ProgressKind::IncumbentImproved { cost, .. } => Some(cost),
            _ => None,
        })
        .collect()
}

/// Emission must not perturb the search: same seed, same best design,
/// with and without an installed progress channel.
#[test]
fn instrumented_solve_is_bit_identical() {
    let e = env(4);
    let solve = |seed| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DesignSolver::new(&e).solve(Budget::iterations(15), &mut rng)
    };
    let bare = solve(77);
    let channel = ProgressChannel::new();
    let instrumented = {
        let _g = channel.install();
        solve(77)
    };
    assert_eq!(
        bare.best.as_ref().map(|b| b.cost().total().as_f64().to_bits()),
        instrumented.best.as_ref().map(|b| b.cost().total().as_f64().to_bits()),
    );
    assert_eq!(bare.stats.nodes_evaluated, instrumented.stats.nodes_evaluated);
    assert!(!channel.poll().is_empty(), "instrumented run emitted events");
}

/// The design solver's event stream: phases are entered, incumbents
/// improve monotonically, the final incumbent bit-matches the returned
/// objective and its gap bit-matches a certificate over the same
/// environment, and the stream ends with `done`.
#[test]
fn design_solver_stream_is_ordered_and_certified() {
    let e = env(4);
    let channel = ProgressChannel::new();
    let outcome = {
        let _g = channel.install();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        DesignSolver::new(&e).solve(Budget::iterations(25), &mut rng)
    };
    let events = channel.poll();
    assert!(events.windows(2).all(|w| w[0].elapsed_ns <= w[1].elapsed_ns), "time-ordered");

    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.kind {
            ProgressKind::PhaseEntered { phase } => Some(phase.as_str()),
            _ => None,
        })
        .collect();
    assert!(phases.contains(&"greedy"));
    assert!(phases.contains(&"refit"));
    assert!(phases.contains(&"polish"));

    let costs = incumbent_costs(&events);
    assert!(!costs.is_empty());
    assert!(costs.windows(2).all(|w| w[1] <= w[0]), "incumbents never worsen: {costs:?}");

    let best_total = outcome.best.as_ref().expect("feasible").cost().total();
    assert_eq!(costs.last().copied().map(f64::to_bits), Some(best_total.as_f64().to_bits()));

    let expected_gap = Certificate::new(&lower_bound(&e), best_total).gap_pct;
    let last_incumbent_gap = events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            ProgressKind::IncumbentImproved { gap_pct, .. } => Some(gap_pct),
            _ => None,
        })
        .expect("incumbent present");
    assert_eq!(last_incumbent_gap.map(f64::to_bits), Some(expected_gap.to_bits()));

    match &events.last().expect("non-empty").kind {
        ProgressKind::Done { cost, evals, .. } => {
            assert_eq!(cost.map(f64::to_bits), Some(best_total.as_f64().to_bits()));
            assert_eq!(*evals, outcome.stats.nodes_evaluated);
        }
        other => panic!("stream must end with done, got {other:?}"),
    }
}

/// `parallel_solve` propagates the channel: heartbeats from N workers
/// interleave in one queue under distinct worker lanes, and emission
/// keeps the parallel result bit-identical.
#[test]
fn parallel_workers_interleave_in_distinct_lanes() {
    let e = env(4);
    let seeds = [1u64, 2, 3, 4];
    let budget = Budget::iterations(12);
    let bare = parallel_solve(&e, budget, &seeds);

    let channel = ProgressChannel::new();
    let instrumented = {
        let _g = channel.install();
        parallel_solve(&e, budget, &seeds)
    };
    assert_eq!(
        bare.best.as_ref().map(|b| b.cost().total().as_f64().to_bits()),
        instrumented.best.as_ref().map(|b| b.cost().total().as_f64().to_bits()),
        "progress emission must not perturb the parallel search"
    );

    let events = channel.poll();
    let heartbeat_workers: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, ProgressKind::WorkerHeartbeat { .. }))
        .map(|e| e.worker)
        .collect();
    assert_eq!(heartbeat_workers.len(), seeds.len(), "one heartbeat lane per worker");
    // The fan-out parent (lane of the installing thread) emits the
    // parallel phase marker; workers emit the solver phases.
    assert!(events
        .iter()
        .any(|e| e.kind == ProgressKind::PhaseEntered { phase: "parallel".into() }));
    let dones = events.iter().filter(|e| matches!(e.kind, ProgressKind::Done { .. })).count();
    assert_eq!(dones, seeds.len(), "every worker reports done");

    // Per-lane incumbents stay monotone even though lanes interleave.
    for worker in &heartbeat_workers {
        let lane: Vec<f64> = incumbent_costs(
            &events.iter().filter(|e| e.worker == *worker).cloned().collect::<Vec<_>>(),
        );
        assert!(lane.windows(2).all(|w| w[1] <= w[0]), "lane {worker} monotone: {lane:?}");
    }
}

/// A disabled channel (and no channel at all) emits nothing, and the
/// solver result is still bit-identical.
#[test]
fn disabled_channel_emits_nothing() {
    let e = env(4);
    let solve = || {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        DesignSolver::new(&e).solve(Budget::iterations(10), &mut rng)
    };
    let bare = solve();
    let channel = ProgressChannel::disabled();
    let gated = {
        let _g = channel.install();
        assert!(!progress::enabled());
        solve()
    };
    assert!(channel.poll().is_empty());
    assert_eq!(channel.dropped(), 0);
    assert_eq!(
        bare.best.as_ref().map(|b| b.cost().total().as_f64().to_bits()),
        gated.best.as_ref().map(|b| b.cost().total().as_f64().to_bits()),
    );
}

/// All four heuristics emit into the channel with the same contract:
/// a phase marker, monotone incumbents ending at the returned objective,
/// and a final done event — without perturbing their results.
#[test]
fn heuristics_emit_monotone_incumbents() {
    let e = env(4);
    let budget = Budget::iterations(30);
    type Runner<'e> = Box<dyn Fn(&mut ChaCha8Rng) -> Option<Dollars> + 'e>;
    let runners: Vec<(&str, Runner<'_>)> = vec![
        (
            "anneal",
            Box::new(|rng: &mut ChaCha8Rng| {
                SimulatedAnnealing::new(&e).solve(budget, rng).best.map(|b| b.cost().total())
            }),
        ),
        (
            "tabu",
            Box::new(|rng: &mut ChaCha8Rng| {
                TabuSearch::new(&e).solve(budget, rng).best.map(|b| b.cost().total())
            }),
        ),
        (
            "human",
            Box::new(|rng: &mut ChaCha8Rng| {
                HumanHeuristic::new(&e)
                    .solve(Budget::iterations(4), rng)
                    .best
                    .map(|b| b.cost().total())
            }),
        ),
        (
            "random",
            Box::new(|rng: &mut ChaCha8Rng| {
                RandomHeuristic::new(&e).solve(budget, rng).best.map(|b| b.cost().total())
            }),
        ),
    ];
    for (phase, run) in runners {
        let bare = run(&mut ChaCha8Rng::seed_from_u64(42));
        let channel = ProgressChannel::new();
        let instrumented = {
            let _g = channel.install();
            run(&mut ChaCha8Rng::seed_from_u64(42))
        };
        assert_eq!(
            bare.map(|c| c.as_f64().to_bits()),
            instrumented.map(|c| c.as_f64().to_bits()),
            "{phase}: emission must not perturb the search"
        );
        let events = channel.poll();
        assert!(
            events.iter().any(|e| e.kind == ProgressKind::PhaseEntered { phase: phase.into() }),
            "{phase}: phase marker present"
        );
        let costs = incumbent_costs(&events);
        assert!(!costs.is_empty(), "{phase}: incumbents emitted");
        assert!(costs.windows(2).all(|w| w[1] <= w[0]), "{phase}: monotone {costs:?}");
        assert_eq!(
            costs.last().copied().map(f64::to_bits),
            instrumented.map(|c| c.as_f64().to_bits()),
            "{phase}: final incumbent is the returned objective"
        );
        match &events.last().expect("{phase}: non-empty").kind {
            ProgressKind::Done { cost, .. } => {
                assert_eq!(cost.map(f64::to_bits), instrumented.map(|c| c.as_f64().to_bits()));
            }
            other => panic!("{phase}: stream must end with done, got {other:?}"),
        }
    }
}
