//! Oracle-equivalence property suite for incremental (delta) evaluation:
//! random move sequences on random environments must produce totals —
//! and per-scenario `details`, in order — bit-identical to a fresh full
//! evaluation, and apply→undo must restore the exact candidate state.

use dsd_core::{
    scenario_digests, Candidate, CandidateKey, ConfigurationSolver, Environment, Move,
    PlacementOptions, ScenarioOutcomeCache, Thoroughness,
};
use dsd_failure::{FailureModel, FailureRates};
use dsd_obs as obs;
use dsd_protection::TechniqueCatalog;
use dsd_recovery::Evaluator;
use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd_workload::{AppId, GeneratorConfig, WorkloadGenerator};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A randomized but structurally sane environment: 2–3 paper-style
/// sites, perturbed workloads (same shape as the root solver-property
/// suite).
fn random_env(seed: u64, sites: usize, apps: usize) -> Environment {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sites: Vec<Site> = (0..sites)
        .map(|i| {
            Site::new(i, format!("S{i}"))
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8)
        })
        .collect();
    let generator = WorkloadGenerator::new(GeneratorConfig {
        scale_min: 0.5,
        scale_max: 1.5,
        penalty_scale_min: 0.5,
        penalty_scale_max: 2.0,
    });
    Environment::new(
        generator.generate(apps, &mut rng),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

/// First-fit complete candidate over every application.
fn complete_candidate(env: &Environment) -> Option<Candidate> {
    let mut c = Candidate::empty(env);
    for app in env.workloads.iter() {
        let class = app.class_with(&env.thresholds);
        let mut done = false;
        'tech: for (tid, t) in env.catalog.eligible_for(class) {
            for p in PlacementOptions::enumerate(env, tid) {
                if c.try_assign(env, app.id, tid, t.default_config(), p).is_ok() {
                    done = true;
                    break 'tech;
                }
            }
        }
        if !done {
            return None;
        }
    }
    Some(c)
}

/// Draws a random move of a random kind against the candidate's current
/// state.
fn random_move(env: &Environment, candidate: &Candidate, rng: &mut ChaCha8Rng) -> Option<Move> {
    match rng.gen_range(0..4u8) {
        0 => {
            let apps: Vec<AppId> = candidate.assignments().keys().copied().collect();
            let app = *apps.choose(rng)?;
            let class = env.workloads[app].class_with(&env.thresholds);
            let eligible: Vec<_> = env.catalog.eligible_for(class).collect();
            let &(tid, technique) = eligible.choose(rng)?;
            let config = *technique.config_space().choose(rng)?;
            let placement = *PlacementOptions::enumerate(env, tid).choose(rng)?;
            Some(Move::Reassign { app, technique: tid, config, placement })
        }
        1 => {
            let routes = candidate.provision().active_routes();
            Some(Move::AddLinks { route: *routes.choose(rng)?, extra: 1 })
        }
        2 => {
            let tapes = candidate.provision().provisioned_tapes();
            Some(Move::AddTapeDrives { tape: *tapes.choose(rng)?, extra: 1 })
        }
        _ => {
            let arrays = candidate.provision().provisioned_arrays();
            Some(Move::AddArrayUnits { array: *arrays.choose(rng)?, extra: 1 })
        }
    }
}

/// Full-evaluation oracle, computed fresh from the candidate state with
/// no caches involved.
fn oracle(env: &Environment, candidate: &Candidate) -> dsd_core::CostBreakdown {
    let protections = candidate.protections(env);
    let scenarios = env.failures.enumerate(candidate.primaries());
    let evaluator = Evaluator::new(&env.workloads, candidate.provision(), env.recovery);
    let (penalties, _) = evaluator.annual_penalties(&protections, &scenarios);
    let outlay = candidate.provision().annual_outlay() + candidate.vault_media_annual(env);
    dsd_core::CostBreakdown { outlay, penalties }
}

/// Bit-level equality of two cost breakdowns, including every per-app
/// penalty entry.
fn assert_cost_bits_equal(a: &dsd_core::CostBreakdown, b: &dsd_core::CostBreakdown) {
    assert_eq!(a.outlay.as_f64().to_bits(), b.outlay.as_f64().to_bits(), "outlay");
    assert_eq!(
        a.penalties.outage.as_f64().to_bits(),
        b.penalties.outage.as_f64().to_bits(),
        "outage"
    );
    assert_eq!(a.penalties.loss.as_f64().to_bits(), b.penalties.loss.as_f64().to_bits(), "loss");
    assert_eq!(a.penalties.per_app.len(), b.penalties.per_app.len(), "per-app cardinality");
    for ((ka, va), (kb, vb)) in a.penalties.per_app.iter().zip(b.penalties.per_app.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(va.0.as_f64().to_bits(), vb.0.as_f64().to_bits(), "{ka} outage");
        assert_eq!(va.1.as_f64().to_bits(), vb.1.as_f64().to_bits(), "{ka} loss");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random move sequences: after every applied move (some kept, some
    /// undone), the delta-evaluated cost must be bit-identical to the
    /// fresh full oracle, and the cached evaluator's per-scenario
    /// `details` must match the uncached evaluator's exactly, in order.
    #[test]
    fn delta_evaluation_matches_the_full_oracle(
        seed in 0u64..1000,
        sites in 2usize..4,
        apps in 2usize..5,
        steps in 4usize..12,
    ) {
        let env = random_env(seed, sites, apps);
        let Some(mut c) = complete_candidate(&env) else { return Ok(()); };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE17A);
        let mut scache = ScenarioOutcomeCache::new();

        for step in 0..steps {
            let Some(mv) = random_move(&env, &c, &mut rng) else { continue; };
            let keep = rng.gen_bool(0.6);
            let Ok((delta_cost, undo)) = c.evaluate_delta(&env, &mv, &mut scache) else {
                continue;
            };
            assert_cost_bits_equal(&delta_cost, &oracle(&env, &c));

            // The cached evaluator must also reproduce the oracle's
            // per-scenario details, in scenario order.
            let protections = c.protections(&env);
            let scenarios = env.failures.enumerate(c.primaries());
            let digests = scenario_digests(&c, &scenarios);
            let evaluator = Evaluator::new(&env.workloads, c.provision(), env.recovery);
            let (_, full_details) = evaluator.annual_penalties(&protections, &scenarios);
            let (_, cached_details) = evaluator.annual_penalties_cached(
                &protections,
                &scenarios,
                &digests,
                &mut scache,
            );
            prop_assert_eq!(&full_details, &cached_details, "step {} details diverge", step);

            if !keep {
                c.undo_move(undo);
                let undone = c.evaluate_with(&env, &mut scache).clone();
                assert_cost_bits_equal(&undone, &oracle(&env, &c));
            }
            prop_assert!(c.validate(&env).is_ok(), "{:?}", c.validate(&env));
        }
        prop_assert!(scache.hits() > 0, "move sequences must reuse unchanged scenarios");
    }

    /// apply_move → undo_move restores the exact prior state: provision,
    /// assignments, and the completion cache key.
    #[test]
    fn apply_then_undo_is_a_bitwise_roundtrip(
        seed in 0u64..1000,
        steps in 1usize..8,
    ) {
        let env = random_env(seed, 2, 3);
        let Some(mut c) = complete_candidate(&env) else { return Ok(()); };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0D0);
        let limits = ConfigurationSolver::new(&env).addition_limits();
        for _ in 0..steps {
            let Some(mv) = random_move(&env, &c, &mut rng) else { continue; };
            let provision_before = c.provision().clone();
            let assignments_before = c.assignments().clone();
            let key_before = CandidateKey::of(&c, Thoroughness::Quick, limits);
            let Ok(undo) = c.apply_move(&env, &mv) else {
                // Failed moves must leave the candidate untouched too.
                prop_assert_eq!(c.provision(), &provision_before);
                prop_assert_eq!(c.assignments(), &assignments_before);
                continue;
            };
            c.undo_move(undo);
            prop_assert_eq!(c.provision(), &provision_before, "provision state drifted");
            prop_assert_eq!(c.assignments(), &assignments_before, "assignments drifted");
            prop_assert_eq!(
                CandidateKey::of(&c, Thoroughness::Quick, limits),
                key_before,
                "cache key drifted"
            );
        }
    }

    /// The clone-free, scenario-memoized completion is bit-identical to
    /// itself under a shared cache: completing the same start state with
    /// a fresh cache and with a warm shared cache yields the same design
    /// and the same cost bits.
    #[test]
    fn completion_is_bit_identical_under_a_shared_scenario_cache(
        seed in 0u64..1000,
    ) {
        let env = random_env(seed, 2, 3);
        let Some(base) = complete_candidate(&env) else { return Ok(()); };
        let solver = ConfigurationSolver::new(&env);

        let mut cold = base.clone();
        let cold_cost = solver.complete(&mut cold, Thoroughness::Full);

        let mut shared = ScenarioOutcomeCache::new();
        let mut warm1 = base.clone();
        let warm1_cost = solver.complete_with(&mut warm1, Thoroughness::Full, &mut shared);
        let mut warm2 = base.clone();
        let warm2_cost = solver.complete_with(&mut warm2, Thoroughness::Full, &mut shared);

        assert_cost_bits_equal(&cold_cost, &warm1_cost);
        assert_cost_bits_equal(&cold_cost, &warm2_cost);
        prop_assert_eq!(cold.assignments(), warm1.assignments());
        prop_assert_eq!(cold.assignments(), warm2.assignments());
        prop_assert_eq!(cold.provision(), warm2.provision());
        assert_cost_bits_equal(&cold_cost, &oracle(&env, &cold));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Attribution (ISSUE 5): penalty line items and outlay line items
    /// must fold bit-identically to the evaluated totals — on the fresh
    /// full path and after every delta-evaluated move. `verify()` checks
    /// every component (outlay, outage, loss, per-app map, grand total)
    /// at the bit level.
    #[test]
    fn attribution_is_bit_identical_on_full_and_delta_paths(
        seed in 0u64..1000,
        sites in 2usize..4,
        apps in 2usize..5,
        steps in 3usize..10,
    ) {
        let env = random_env(seed, sites, apps);
        let Some(mut c) = complete_candidate(&env) else { return Ok(()); };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA77B);
        let mut scache = ScenarioOutcomeCache::new();

        // Full path: evaluate fresh, then attribute.
        c.evaluate_with(&env, &mut scache);
        let baseline = c.attribution(&env);
        prop_assert!(baseline.verify().is_ok(), "{:?}", baseline.verify());

        // Delta path: after each kept move the candidate's cached cost
        // came from evaluate_delta; a freshly computed attribution must
        // reproduce it exactly (stale line items would fail verify()).
        for step in 0..steps {
            let Some(mv) = random_move(&env, &c, &mut rng) else { continue; };
            if c.evaluate_delta(&env, &mv, &mut scache).is_err() { continue; }
            let attribution = c.attribution(&env);
            prop_assert!(
                attribution.verify().is_ok(),
                "step {}: {:?}", step, attribution.verify()
            );
            let (outage, loss) = attribution.penalty_totals();
            let full = oracle(&env, &c);
            prop_assert_eq!(outage.as_f64().to_bits(), full.penalties.outage.as_f64().to_bits());
            prop_assert_eq!(loss.as_f64().to_bits(), full.penalties.loss.as_f64().to_bits());
        }
    }
}

/// Regression (ISSUE 5 satellite): a move that changes only a device
/// fingerprint — extra links or extra array units, with no assignment
/// change — must invalidate the memoized evaluation, so an attribution
/// built against the delta-path cached cost reflects the new outlay
/// rather than replaying stale line items.
#[test]
fn fingerprint_only_moves_invalidate_the_memoized_attribution() {
    let env = random_env(7, 2, 3);
    let mut c = complete_candidate(&env).expect("paper-style environment is assignable");
    let mut scache = ScenarioOutcomeCache::new();
    let before = c.evaluate_with(&env, &mut scache).clone();
    let before_attr = c.attribution(&env);
    before_attr.verify().expect("baseline attribution is exact");

    // Extra array units: always available (every candidate provisions a
    // primary array), and purely a fingerprint change.
    let array = c.provision().provisioned_arrays()[0];
    let (after, _undo) = c
        .evaluate_delta(&env, &Move::AddArrayUnits { array, extra: 1 }, &mut scache)
        .expect("adding an array unit applies");
    assert_ne!(
        before.outlay.as_f64().to_bits(),
        after.outlay.as_f64().to_bits(),
        "an extra array unit must change the outlay"
    );
    assert_cost_bits_equal(&after, &oracle(&env, &c));
    let attr = c.attribution(&env);
    attr.verify().expect("post-move attribution is exact");
    assert_ne!(
        attr.outlay_annual().as_f64().to_bits(),
        before_attr.outlay_annual().as_f64().to_bits(),
        "attribution must track the fingerprint-only change, not replay the memo"
    );

    // Extra links, when the design uses any inter-site route.
    let routes = c.provision().active_routes();
    if let Some(&route) = routes.first() {
        let (after2, _undo) = c
            .evaluate_delta(&env, &Move::AddLinks { route, extra: 1 }, &mut scache)
            .expect("adding a link applies");
        assert_cost_bits_equal(&after2, &oracle(&env, &c));
        c.attribution(&env).verify().expect("attribution tracks the second fingerprint move");
    }
}

/// Regression (ISSUE 4 satellite): the configuration solver's trial
/// loops — config coordinate descent and the resource-addition loop —
/// must be clone-free: every trial is an apply/undo move on the one
/// candidate. Counted via the `eval.candidate_clones` obs series
/// (recorders are thread-local, so parallel tests cannot pollute it).
#[test]
fn completion_trial_paths_do_not_clone_the_candidate() {
    let env = random_env(42, 2, 4);
    let mut c = complete_candidate(&env).expect("paper-style environment is assignable");
    let recorder = obs::Recorder::new();
    {
        let _g = recorder.install();
        let cost = ConfigurationSolver::new(&env).complete(&mut c, Thoroughness::Full);
        assert!(cost.total().is_finite());
    }
    let snap = recorder.metrics_snapshot();
    assert_eq!(
        snap.counter("eval.candidate_clones").unwrap_or(0),
        0,
        "a full completion must not clone the candidate on any trial path"
    );
    assert!(
        snap.counter("eval.scenarios_recomputed").unwrap_or(0) > 0,
        "fresh scenario outcomes are recorded under eval.scenarios_recomputed"
    );
    assert!(
        snap.counter("eval.delta_hits").unwrap_or(0) > 0,
        "unchanged scenarios replay from the cache during completion"
    );
}
