#![warn(missing_docs)]

//! Typed quantities for the dependable storage designer.
//!
//! The design tool reasons about capacities (gigabytes), transfer rates
//! (megabytes per second), money (US dollars), penalty rates (dollars per
//! hour), spans of time, and annualized event rates. Mixing these up is the
//! classic source of silent modeling bugs, so each quantity is a newtype
//! ([C-NEWTYPE]) with only the physically meaningful arithmetic defined:
//!
//! * [`Gigabytes`] / [`MegabytesPerSec`] → [`TimeSpan`] (how long a transfer
//!   takes),
//! * [`DollarsPerHour`] × [`TimeSpan`] → [`Dollars`] (penalty accrual),
//! * [`PerYear`] × [`Dollars`] → [`Dollars`] (likelihood-weighted expected
//!   annual cost).
//!
//! # Examples
//!
//! ```
//! use dsd_units::{Gigabytes, MegabytesPerSec, DollarsPerHour, TimeSpan};
//!
//! let dataset = Gigabytes::new(1300.0);
//! let link = MegabytesPerSec::new(20.0);
//! let restore = dataset / link;
//! assert!((restore.as_hours() - 18.489).abs() < 0.01);
//!
//! let outage_rate = DollarsPerHour::new(5_000_000.0);
//! let penalty = outage_rate * restore;
//! assert!(penalty.as_f64() > 9.0e7);
//! ```

mod capacity;
mod money;
mod rate;
mod time;

pub use capacity::{Gigabytes, MegabytesPerSec};
pub use money::{Dollars, DollarsPerHour};
pub use rate::PerYear;
pub use time::TimeSpan;

/// Number of years over which device purchase prices are amortized.
///
/// The paper (§2.5) amortizes purchase prices over the expected device
/// lifetime, "which is chosen to be three years".
pub const AMORTIZATION_YEARS: f64 = 3.0;

/// Hours in a (non-leap) year; used to annualize hourly penalty rates.
pub const HOURS_PER_YEAR: f64 = 365.0 * 24.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_constants_are_consistent() {
        assert_eq!(AMORTIZATION_YEARS, 3.0);
        assert_eq!(HOURS_PER_YEAR, 8760.0);
    }

    #[test]
    fn cross_module_transfer_and_penalty_pipeline() {
        // 4300 GB over 2 links of 10 MB/s = 4300*1024 MB / 20 MB/s.
        let t = Gigabytes::new(4300.0) / MegabytesPerSec::new(20.0);
        let expected_secs = 4300.0 * 1024.0 / 20.0;
        assert!((t.as_secs() - expected_secs).abs() < 1e-6);
        let penalty = DollarsPerHour::new(5000.0) * t;
        assert!((penalty.as_f64() - 5000.0 * expected_secs / 3600.0).abs() < 1e-6);
    }

    #[test]
    fn expected_annual_penalty_weighting() {
        let once_in_three_years = PerYear::new(1.0 / 3.0);
        let per_event = Dollars::new(900_000.0);
        let annual = once_in_three_years * per_event;
        assert!((annual.as_f64() - 300_000.0).abs() < 1e-9);
    }
}
