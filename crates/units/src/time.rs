//! Spans of time, with an explicit "infinite" value for unreachable events.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A non-negative span of time.
///
/// `TimeSpan` is the common currency for accumulation windows, propagation
/// windows, recovery times and data-loss times. It supports an explicit
/// [`TimeSpan::INFINITE`] value, used for transfers over zero bandwidth and
/// for recovery paths that do not exist; infinite spans propagate through
/// arithmetic like IEEE infinities.
///
/// # Examples
///
/// ```
/// use dsd_units::TimeSpan;
/// let acc = TimeSpan::from_hours(12.0);
/// let prop = TimeSpan::from_days(1.0);
/// assert_eq!((acc + prop).as_hours(), 36.0);
/// assert!(acc < prop);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TimeSpan(f64);

impl std::hash::Hash for TimeSpan {
    /// Hashes the span's bit pattern. Spans come from policy grids and
    /// deterministic arithmetic, never NaN, so equal spans hash equally.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl TimeSpan {
    /// The zero span.
    pub const ZERO: TimeSpan = TimeSpan(0.0);

    /// An unbounded span: the event never completes.
    pub const INFINITE: TimeSpan = TimeSpan(f64::INFINITY);

    /// Creates a span from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan() && secs >= 0.0, "time span must be non-negative: {secs}");
        TimeSpan(secs)
    }

    /// Creates a span from minutes.
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        TimeSpan::from_secs(mins * 60.0)
    }

    /// Creates a span from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        TimeSpan::from_secs(hours * 3600.0)
    }

    /// Creates a span from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        TimeSpan::from_secs(days * 86_400.0)
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in minutes.
    #[must_use]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// The span in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The span in days.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// True if the span is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// True for [`TimeSpan::INFINITE`].
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// True if the span is finite (i.e. the event completes).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the larger of two spans.
    #[must_use]
    pub fn max(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    #[must_use]
    pub fn min(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.min(other.0))
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else if self.0 >= 86_400.0 {
            write!(f, "{:.2} d", self.as_days())
        } else if self.0 >= 3600.0 {
            write!(f, "{:.2} h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.2} min", self.as_mins())
        } else {
            write!(f, "{:.2} s", self.0)
        }
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl AddAssign for TimeSpan {
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;
    /// Saturating at zero. `∞ - ∞` is defined as zero.
    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        if self.0.is_infinite() && rhs.0.is_infinite() {
            return TimeSpan::ZERO;
        }
        TimeSpan((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for TimeSpan {
    type Output = TimeSpan;
    fn mul(self, rhs: f64) -> TimeSpan {
        assert!(rhs >= 0.0, "cannot scale a time span by a negative factor");
        TimeSpan(self.0 * rhs)
    }
}

impl Mul<TimeSpan> for f64 {
    type Output = TimeSpan;
    fn mul(self, rhs: TimeSpan) -> TimeSpan {
        rhs * self
    }
}

impl Div<f64> for TimeSpan {
    type Output = TimeSpan;
    fn div(self, rhs: f64) -> TimeSpan {
        assert!(rhs > 0.0, "cannot divide a time span by a non-positive factor");
        TimeSpan(self.0 / rhs)
    }
}

impl Div for TimeSpan {
    type Output = f64;
    fn div(self, rhs: TimeSpan) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for TimeSpan {
    fn sum<I: Iterator<Item = TimeSpan>>(iter: I) -> TimeSpan {
        iter.fold(TimeSpan::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_roundtrip() {
        let t = TimeSpan::from_days(2.0);
        assert_eq!(t.as_hours(), 48.0);
        assert_eq!(t.as_mins(), 48.0 * 60.0);
        assert_eq!(t.as_secs(), 172_800.0);
        assert_eq!(TimeSpan::from_mins(90.0).as_hours(), 1.5);
        assert_eq!(TimeSpan::from_hours(1.0).as_secs(), 3600.0);
    }

    #[test]
    fn infinite_propagates_through_addition() {
        let t = TimeSpan::INFINITE + TimeSpan::from_hours(1.0);
        assert!(t.is_infinite());
        assert!(!t.is_finite());
    }

    #[test]
    fn saturating_sub() {
        let a = TimeSpan::from_hours(1.0);
        let b = TimeSpan::from_hours(2.0);
        assert_eq!((a - b), TimeSpan::ZERO);
        assert_eq!((b - a).as_hours(), 1.0);
        assert_eq!(TimeSpan::INFINITE - TimeSpan::INFINITE, TimeSpan::ZERO);
    }

    #[test]
    fn ordering_is_sensible() {
        assert!(TimeSpan::from_mins(30.0) < TimeSpan::from_hours(1.0));
        assert!(TimeSpan::INFINITE > TimeSpan::from_days(10_000.0));
        assert_eq!(TimeSpan::from_mins(5.0).min(TimeSpan::from_mins(3.0)).as_mins(), 3.0);
        assert_eq!(TimeSpan::from_mins(5.0).max(TimeSpan::from_mins(3.0)).as_mins(), 5.0);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(TimeSpan::from_secs(30.0).to_string(), "30.00 s");
        assert_eq!(TimeSpan::from_mins(5.0).to_string(), "5.00 min");
        assert_eq!(TimeSpan::from_hours(3.0).to_string(), "3.00 h");
        assert_eq!(TimeSpan::from_days(7.0).to_string(), "7.00 d");
        assert_eq!(TimeSpan::INFINITE.to_string(), "∞");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_span_rejected() {
        let _ = TimeSpan::from_secs(-1.0);
    }

    #[test]
    fn sum_of_spans() {
        let total: TimeSpan = [1.0, 2.0, 3.0].iter().map(|&h| TimeSpan::from_hours(h)).sum();
        assert_eq!(total.as_hours(), 6.0);
    }

    proptest! {
        #[test]
        fn prop_addition_associative(a in 0.0..1e7f64, b in 0.0..1e7f64, c in 0.0..1e7f64) {
            let x = (TimeSpan::from_secs(a) + TimeSpan::from_secs(b)) + TimeSpan::from_secs(c);
            let y = TimeSpan::from_secs(a) + (TimeSpan::from_secs(b) + TimeSpan::from_secs(c));
            prop_assert!((x.as_secs() - y.as_secs()).abs() < 1e-6);
        }

        #[test]
        fn prop_scaling_monotone(t in 0.0..1e7f64, k in 1.0..10.0f64) {
            let base = TimeSpan::from_secs(t);
            prop_assert!(base * k >= base);
            prop_assert!(base / k <= base);
        }
    }
}
