//! Annualized event rates (failure likelihoods).

use std::fmt;
use std::ops::{Add, Mul};

use serde::{Deserialize, Serialize};

use crate::Dollars;

/// An annualized event rate: expected occurrences per year.
///
/// The paper (§2.4–2.5) converts every failure likelihood to an *annual
/// expected failure likelihood* so that penalties and amortized outlays can
/// be summed over a common one-year time frame. A failure "once in three
/// years" is `PerYear::once_every_years(3.0)` = 0.333/yr; "twice a year" is
/// `PerYear::new(2.0)`.
///
/// Multiplying a rate by a per-event [`Dollars`] penalty yields the expected
/// annual penalty in dollars.
///
/// # Examples
///
/// ```
/// use dsd_units::{PerYear, Dollars};
/// let site_disaster = PerYear::once_every_years(5.0);
/// let per_event = Dollars::new(1_000_000.0);
/// assert_eq!((site_disaster * per_event).as_f64(), 200_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PerYear(f64);

impl PerYear {
    /// Zero occurrences per year: the event never happens.
    pub const NEVER: PerYear = PerYear(0.0);

    /// Creates a rate of `events_per_year` expected occurrences per year.
    ///
    /// # Panics
    ///
    /// Panics if `events_per_year` is negative or not finite.
    #[must_use]
    pub fn new(events_per_year: f64) -> Self {
        assert!(
            events_per_year.is_finite() && events_per_year >= 0.0,
            "annual rate must be finite and non-negative: {events_per_year}"
        );
        PerYear(events_per_year)
    }

    /// Creates the rate of an event expected once every `years` years.
    ///
    /// # Panics
    ///
    /// Panics if `years` is not strictly positive.
    #[must_use]
    pub fn once_every_years(years: f64) -> Self {
        assert!(years > 0.0 && years.is_finite(), "interval must be positive: {years}");
        PerYear(1.0 / years)
    }

    /// Returns expected occurrences per year.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the mean interval between events in years, or `None` for
    /// [`PerYear::NEVER`].
    #[must_use]
    pub fn mean_interval_years(self) -> Option<f64> {
        if self.0 == 0.0 {
            None
        } else {
            Some(1.0 / self.0)
        }
    }

    /// True if the event never occurs.
    #[must_use]
    pub fn is_never(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for PerYear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean_interval_years() {
            None => write!(f, "never"),
            Some(y) if y >= 1.0 => write!(f, "once per {y:.1} yr"),
            Some(_) => write!(f, "{:.1}/yr", self.0),
        }
    }
}

impl Add for PerYear {
    type Output = PerYear;
    fn add(self, rhs: PerYear) -> PerYear {
        PerYear(self.0 + rhs.0)
    }
}

impl Mul<f64> for PerYear {
    type Output = PerYear;
    fn mul(self, rhs: f64) -> PerYear {
        PerYear::new(self.0 * rhs)
    }
}

impl Mul<Dollars> for PerYear {
    type Output = Dollars;
    /// Expected annual cost: likelihood-weighted per-event penalty.
    fn mul(self, rhs: Dollars) -> Dollars {
        if self.0 == 0.0 {
            // Never-occurring events cost nothing, even if the per-event
            // penalty is infinite (an unreachable recovery path).
            return Dollars::ZERO;
        }
        Dollars::new(self.0 * rhs.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn once_every_years_inverts() {
        let r = PerYear::once_every_years(3.0);
        assert!((r.as_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.mean_interval_years(), Some(3.0));
    }

    #[test]
    fn never_weights_everything_to_zero() {
        assert_eq!(PerYear::NEVER * Dollars::INFINITE, Dollars::ZERO);
        assert!(PerYear::NEVER.is_never());
        assert_eq!(PerYear::NEVER.mean_interval_years(), None);
    }

    #[test]
    fn weighting_scales_linearly() {
        let twice_yearly = PerYear::new(2.0);
        assert_eq!((twice_yearly * Dollars::new(100.0)).as_f64(), 200.0);
    }

    #[test]
    fn display_variants() {
        assert_eq!(PerYear::NEVER.to_string(), "never");
        assert_eq!(PerYear::once_every_years(5.0).to_string(), "once per 5.0 yr");
        assert_eq!(PerYear::new(2.0).to_string(), "2.0/yr");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = PerYear::once_every_years(0.0);
    }

    proptest! {
        #[test]
        fn prop_weighting_monotone_in_likelihood(
            r1 in 0.0..10.0f64, r2 in 0.0..10.0f64, cost in 0.0..1e9f64
        ) {
            let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            let c = Dollars::new(cost);
            prop_assert!(PerYear::new(lo) * c <= PerYear::new(hi) * c);
        }

        #[test]
        fn prop_rate_addition_commutes(a in 0.0..10.0f64, b in 0.0..10.0f64) {
            let x = PerYear::new(a) + PerYear::new(b);
            let y = PerYear::new(b) + PerYear::new(a);
            prop_assert!((x.as_f64() - y.as_f64()).abs() < 1e-12);
        }
    }
}
