//! Storage capacity and transfer-rate quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::TimeSpan;

/// A storage capacity in gigabytes (2³⁰ bytes for transfer-time purposes;
/// the paper's tables mix decimal and binary loosely, we consistently use
/// 1 GB = 1024 MB when dividing by a [`MegabytesPerSec`] rate).
///
/// # Examples
///
/// ```
/// use dsd_units::Gigabytes;
/// let a = Gigabytes::new(100.0);
/// let b = Gigabytes::new(43.0);
/// assert_eq!((a + b).as_f64(), 143.0);
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Gigabytes(f64);

impl Gigabytes {
    /// The zero capacity.
    pub const ZERO: Gigabytes = Gigabytes(0.0);

    /// Creates a capacity from a raw gigabyte count.
    ///
    /// # Panics
    ///
    /// Panics if `gb` is negative or not finite.
    #[must_use]
    pub fn new(gb: f64) -> Self {
        assert!(gb.is_finite() && gb >= 0.0, "capacity must be finite and non-negative: {gb}");
        Gigabytes(gb)
    }

    /// Returns the raw gigabyte count.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the capacity in megabytes (1 GB = 1024 MB).
    #[must_use]
    pub fn as_megabytes(self) -> f64 {
        self.0 * 1024.0
    }

    /// Returns true if this capacity is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the larger of two capacities.
    #[must_use]
    pub fn max(self, other: Gigabytes) -> Gigabytes {
        Gigabytes(self.0.max(other.0))
    }

    /// Returns the smaller of two capacities.
    #[must_use]
    pub fn min(self, other: Gigabytes) -> Gigabytes {
        Gigabytes(self.0.min(other.0))
    }

    /// Number of whole allocation units of size `unit` needed to hold this
    /// capacity (i.e. `ceil(self / unit)`).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    #[must_use]
    pub fn units_of(self, unit: Gigabytes) -> u32 {
        assert!(unit.0 > 0.0, "allocation unit must be positive");
        (self.0 / unit.0).ceil() as u32
    }
}

impl fmt::Display for Gigabytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB", self.0)
    }
}

impl Add for Gigabytes {
    type Output = Gigabytes;
    fn add(self, rhs: Gigabytes) -> Gigabytes {
        Gigabytes(self.0 + rhs.0)
    }
}

impl AddAssign for Gigabytes {
    fn add_assign(&mut self, rhs: Gigabytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Gigabytes {
    type Output = Gigabytes;
    /// Saturating at zero: capacities cannot go negative. Residues below
    /// one byte's worth of gigabytes (1e-9 GB) snap to exactly zero so
    /// that releasing everything that was allocated frees the last
    /// allocation unit despite floating-point rounding.
    fn sub(self, rhs: Gigabytes) -> Gigabytes {
        let r = self.0 - rhs.0;
        Gigabytes(if r < 1e-9 { 0.0 } else { r })
    }
}

impl SubAssign for Gigabytes {
    fn sub_assign(&mut self, rhs: Gigabytes) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Gigabytes {
    type Output = Gigabytes;
    fn mul(self, rhs: f64) -> Gigabytes {
        Gigabytes::new(self.0 * rhs)
    }
}

impl Mul<Gigabytes> for f64 {
    type Output = Gigabytes;
    fn mul(self, rhs: Gigabytes) -> Gigabytes {
        rhs * self
    }
}

impl Div<f64> for Gigabytes {
    type Output = Gigabytes;
    fn div(self, rhs: f64) -> Gigabytes {
        Gigabytes::new(self.0 / rhs)
    }
}

impl Div for Gigabytes {
    type Output = f64;
    fn div(self, rhs: Gigabytes) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<MegabytesPerSec> for Gigabytes {
    type Output = TimeSpan;
    /// Transfer time for this much data at the given rate.
    fn div(self, rhs: MegabytesPerSec) -> TimeSpan {
        if rhs.0 <= 0.0 {
            return TimeSpan::INFINITE;
        }
        TimeSpan::from_secs(self.as_megabytes() / rhs.0)
    }
}

impl Sum for Gigabytes {
    fn sum<I: Iterator<Item = Gigabytes>>(iter: I) -> Gigabytes {
        iter.fold(Gigabytes::ZERO, Add::add)
    }
}

/// A data transfer rate in megabytes per second.
///
/// # Examples
///
/// ```
/// use dsd_units::{Gigabytes, MegabytesPerSec, TimeSpan};
/// let rate = MegabytesPerSec::new(25.0) * 4.0; // four disks
/// assert_eq!(rate.as_f64(), 100.0);
/// // Data written over a span of time:
/// let written = rate * TimeSpan::from_secs(10.24);
/// assert_eq!(written.as_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MegabytesPerSec(f64);

impl MegabytesPerSec {
    /// The zero rate.
    pub const ZERO: MegabytesPerSec = MegabytesPerSec(0.0);

    /// Creates a rate from a raw MB/s value.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is negative or not finite.
    #[must_use]
    pub fn new(mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps >= 0.0,
            "bandwidth must be finite and non-negative: {mbps}"
        );
        MegabytesPerSec(mbps)
    }

    /// Returns the raw MB/s value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns true if the rate is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the larger of two rates.
    #[must_use]
    pub fn max(self, other: MegabytesPerSec) -> MegabytesPerSec {
        MegabytesPerSec(self.0.max(other.0))
    }

    /// Returns the smaller of two rates (e.g. the bottleneck of a path).
    #[must_use]
    pub fn min(self, other: MegabytesPerSec) -> MegabytesPerSec {
        MegabytesPerSec(self.0.min(other.0))
    }

    /// Number of whole bandwidth units of size `unit` needed to sustain this
    /// rate (i.e. `ceil(self / unit)`).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    #[must_use]
    pub fn units_of(self, unit: MegabytesPerSec) -> u32 {
        assert!(unit.0 > 0.0, "bandwidth unit must be positive");
        (self.0 / unit.0).ceil() as u32
    }
}

impl fmt::Display for MegabytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MB/s", self.0)
    }
}

impl Add for MegabytesPerSec {
    type Output = MegabytesPerSec;
    fn add(self, rhs: MegabytesPerSec) -> MegabytesPerSec {
        MegabytesPerSec(self.0 + rhs.0)
    }
}

impl AddAssign for MegabytesPerSec {
    fn add_assign(&mut self, rhs: MegabytesPerSec) {
        self.0 += rhs.0;
    }
}

impl Sub for MegabytesPerSec {
    type Output = MegabytesPerSec;
    /// Saturating at zero: spare bandwidth cannot go negative. Residues
    /// below 1e-9 MB/s snap to exactly zero so that releasing everything
    /// that was allocated frees the last bandwidth unit despite
    /// floating-point rounding.
    fn sub(self, rhs: MegabytesPerSec) -> MegabytesPerSec {
        let r = self.0 - rhs.0;
        MegabytesPerSec(if r < 1e-9 { 0.0 } else { r })
    }
}

impl SubAssign for MegabytesPerSec {
    fn sub_assign(&mut self, rhs: MegabytesPerSec) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for MegabytesPerSec {
    type Output = MegabytesPerSec;
    fn mul(self, rhs: f64) -> MegabytesPerSec {
        MegabytesPerSec::new(self.0 * rhs)
    }
}

impl Mul<MegabytesPerSec> for f64 {
    type Output = MegabytesPerSec;
    fn mul(self, rhs: MegabytesPerSec) -> MegabytesPerSec {
        rhs * self
    }
}

impl Mul<TimeSpan> for MegabytesPerSec {
    type Output = Gigabytes;
    /// Amount of data transferred at this rate over the given span.
    fn mul(self, rhs: TimeSpan) -> Gigabytes {
        if rhs.is_infinite() {
            panic!("cannot accumulate data over an infinite time span");
        }
        Gigabytes::new(self.0 * rhs.as_secs() / 1024.0)
    }
}

impl Div<f64> for MegabytesPerSec {
    type Output = MegabytesPerSec;
    fn div(self, rhs: f64) -> MegabytesPerSec {
        MegabytesPerSec::new(self.0 / rhs)
    }
}

impl Div for MegabytesPerSec {
    type Output = f64;
    fn div(self, rhs: MegabytesPerSec) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for MegabytesPerSec {
    fn sum<I: Iterator<Item = MegabytesPerSec>>(iter: I) -> MegabytesPerSec {
        iter.fold(MegabytesPerSec::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capacity_basic_arithmetic() {
        let a = Gigabytes::new(10.0);
        let b = Gigabytes::new(4.0);
        assert_eq!((a + b).as_f64(), 14.0);
        assert_eq!((a - b).as_f64(), 6.0);
        assert_eq!((b - a).as_f64(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.0).as_f64(), 20.0);
        assert_eq!((a / 2.0).as_f64(), 5.0);
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn capacity_units_of_rounds_up() {
        let disk = Gigabytes::new(143.0);
        assert_eq!(Gigabytes::new(0.0).units_of(disk), 0);
        assert_eq!(Gigabytes::new(1.0).units_of(disk), 1);
        assert_eq!(Gigabytes::new(143.0).units_of(disk), 1);
        assert_eq!(Gigabytes::new(143.1).units_of(disk), 2);
        assert_eq!(Gigabytes::new(1300.0).units_of(disk), 10);
    }

    #[test]
    fn bandwidth_units_of_rounds_up() {
        let link = MegabytesPerSec::new(20.0);
        assert_eq!(MegabytesPerSec::new(0.0).units_of(link), 0);
        assert_eq!(MegabytesPerSec::new(20.0).units_of(link), 1);
        assert_eq!(MegabytesPerSec::new(20.5).units_of(link), 2);
    }

    #[test]
    fn transfer_time_is_capacity_over_rate() {
        let t = Gigabytes::new(1.0) / MegabytesPerSec::new(1024.0);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_at_zero_rate_takes_forever() {
        let t = Gigabytes::new(1.0) / MegabytesPerSec::ZERO;
        assert!(t.is_infinite());
    }

    #[test]
    fn rate_times_span_roundtrips_capacity() {
        let cap = Gigabytes::new(50.0);
        let rate = MegabytesPerSec::new(10.0);
        let span = cap / rate;
        let back = rate * span;
        assert!((back.as_f64() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_pick_correct_operand() {
        let a = MegabytesPerSec::new(5.0);
        let b = MegabytesPerSec::new(7.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let c = Gigabytes::new(5.0);
        let d = Gigabytes::new(7.0);
        assert_eq!(c.min(d), c);
        assert_eq!(c.max(d), d);
    }

    #[test]
    fn subtraction_snaps_rounding_residue_to_zero() {
        // 79.70248808848375 - 46.00103323524029 - 33.70145485324346 is a
        // ~1e-14 float residue; it must come out exactly zero or a whole
        // phantom allocation unit survives release.
        let total =
            MegabytesPerSec::new(46.00103323524029) + MegabytesPerSec::new(33.70145485324346);
        let rest = total
            - MegabytesPerSec::new(46.00103323524029)
            - MegabytesPerSec::new(33.70145485324346);
        assert!(rest.is_zero(), "residue {rest} must snap to zero");
        let cap = (Gigabytes::new(0.1) + Gigabytes::new(0.2)) - Gigabytes::new(0.3);
        assert!(cap.is_zero());
    }

    #[test]
    fn sums_accumulate() {
        let total: Gigabytes = [1.0, 2.0, 3.0].iter().map(|&g| Gigabytes::new(g)).sum();
        assert_eq!(total.as_f64(), 6.0);
        let bw: MegabytesPerSec = [1.0, 2.0].iter().map(|&g| MegabytesPerSec::new(g)).sum();
        assert_eq!(bw.as_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let _ = Gigabytes::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_rejected() {
        let _ = MegabytesPerSec::new(-0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gigabytes::new(1.25).to_string(), "1.2 GB");
        assert_eq!(MegabytesPerSec::new(20.0).to_string(), "20.0 MB/s");
    }

    proptest! {
        #[test]
        fn prop_capacity_addition_commutes(a in 0.0..1e9f64, b in 0.0..1e9f64) {
            let x = Gigabytes::new(a) + Gigabytes::new(b);
            let y = Gigabytes::new(b) + Gigabytes::new(a);
            prop_assert!((x.as_f64() - y.as_f64()).abs() < 1e-6);
        }

        #[test]
        fn prop_units_of_covers_capacity(cap in 0.0..1e7f64, unit in 0.1..1e4f64) {
            let n = Gigabytes::new(cap).units_of(Gigabytes::new(unit));
            prop_assert!(f64::from(n) * unit >= cap - 1e-9);
            if n > 0 {
                prop_assert!((f64::from(n) - 1.0) * unit < cap + 1e-9);
            }
        }

        #[test]
        fn prop_transfer_time_monotone_in_rate(cap in 0.1..1e6f64, r1 in 0.1..1e4f64, r2 in 0.1..1e4f64) {
            let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            let slow = Gigabytes::new(cap) / MegabytesPerSec::new(lo);
            let fast = Gigabytes::new(cap) / MegabytesPerSec::new(hi);
            prop_assert!(fast <= slow);
        }

        #[test]
        fn prop_saturating_sub_never_negative(a in 0.0..1e9f64, b in 0.0..1e9f64) {
            prop_assert!((Gigabytes::new(a) - Gigabytes::new(b)).as_f64() >= 0.0);
            prop_assert!((MegabytesPerSec::new(a) - MegabytesPerSec::new(b)).as_f64() >= 0.0);
        }
    }
}
