//! Monetary quantities: absolute dollars and hourly penalty rates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{TimeSpan, AMORTIZATION_YEARS};

/// An amount of money in US dollars.
///
/// Used for device outlays, facility costs and computed penalties. Amounts
/// may be summed, scaled, and amortized to annual figures; like the other
/// quantities in this crate they are non-negative (the design problem has no
/// notion of revenue).
///
/// # Examples
///
/// ```
/// use dsd_units::Dollars;
/// let array = Dollars::new(375_000.0) + Dollars::new(8_723.0) * 10.0;
/// assert_eq!(array.as_f64(), 462_230.0);
/// // Annual amortized share over the 3-year device lifetime:
/// assert!((array.amortized_annual().as_f64() - 154_076.66).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Dollars(f64);

impl Dollars {
    /// Zero dollars.
    pub const ZERO: Dollars = Dollars(0.0);

    /// An unbounded cost, used to price infeasible or never-completing
    /// designs out of consideration.
    pub const INFINITE: Dollars = Dollars(f64::INFINITY);

    /// Creates an amount from a raw dollar figure.
    ///
    /// # Panics
    ///
    /// Panics if `usd` is negative or NaN.
    #[must_use]
    pub fn new(usd: f64) -> Self {
        assert!(!usd.is_nan() && usd >= 0.0, "money must be non-negative: {usd}");
        Dollars(usd)
    }

    /// Returns the raw dollar figure.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// True if the amount is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// True if the amount is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Annual share of a purchase price amortized over the device lifetime
    /// ([`AMORTIZATION_YEARS`], three years per the paper §2.5).
    #[must_use]
    pub fn amortized_annual(self) -> Dollars {
        Dollars(self.0 / AMORTIZATION_YEARS)
    }

    /// Returns the smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Dollars) -> Dollars {
        Dollars(self.0.min(other.0))
    }

    /// Returns the larger of two amounts.
    #[must_use]
    pub fn max(self, other: Dollars) -> Dollars {
        Dollars(self.0.max(other.0))
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "$∞")
        } else if self.0 >= 1e6 {
            write!(f, "${:.3}M", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "${:.1}K", self.0 / 1e3)
        } else {
            write!(f, "${:.2}", self.0)
        }
    }
}

impl Add for Dollars {
    type Output = Dollars;
    fn add(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 + rhs.0)
    }
}

impl AddAssign for Dollars {
    fn add_assign(&mut self, rhs: Dollars) {
        self.0 += rhs.0;
    }
}

impl Sub for Dollars {
    type Output = Dollars;
    /// Saturating at zero. `∞ - ∞` is defined as zero.
    fn sub(self, rhs: Dollars) -> Dollars {
        if self.0.is_infinite() && rhs.0.is_infinite() {
            return Dollars::ZERO;
        }
        Dollars((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: f64) -> Dollars {
        assert!(rhs >= 0.0, "cannot scale money by a negative factor");
        Dollars(self.0 * rhs)
    }
}

impl Mul<Dollars> for f64 {
    type Output = Dollars;
    fn mul(self, rhs: Dollars) -> Dollars {
        rhs * self
    }
}

impl Div<f64> for Dollars {
    type Output = Dollars;
    fn div(self, rhs: f64) -> Dollars {
        assert!(rhs > 0.0, "cannot divide money by a non-positive factor");
        Dollars(self.0 / rhs)
    }
}

impl Div for Dollars {
    type Output = f64;
    fn div(self, rhs: Dollars) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Dollars {
    fn sum<I: Iterator<Item = Dollars>>(iter: I) -> Dollars {
        iter.fold(Dollars::ZERO, Add::add)
    }
}

/// A monetary rate in US dollars per hour.
///
/// The paper (§2.4) expresses business requirements as two such rates per
/// application: the *data outage penalty rate* and the *recent data loss
/// penalty rate*. Multiplying a rate by a [`TimeSpan`] yields the incurred
/// [`Dollars`].
///
/// # Examples
///
/// ```
/// use dsd_units::{DollarsPerHour, TimeSpan};
/// let rate = DollarsPerHour::new(5_000.0);
/// let penalty = rate * TimeSpan::from_hours(12.0);
/// assert_eq!(penalty.as_f64(), 60_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DollarsPerHour(f64);

impl DollarsPerHour {
    /// Zero rate.
    pub const ZERO: DollarsPerHour = DollarsPerHour(0.0);

    /// Creates a rate from a raw $/hr figure.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "penalty rate must be finite and non-negative: {rate}"
        );
        DollarsPerHour(rate)
    }

    /// Returns the raw $/hr figure.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// True if the rate is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for DollarsPerHour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/hr", Dollars(self.0))
    }
}

impl Add for DollarsPerHour {
    type Output = DollarsPerHour;
    fn add(self, rhs: DollarsPerHour) -> DollarsPerHour {
        DollarsPerHour(self.0 + rhs.0)
    }
}

impl AddAssign for DollarsPerHour {
    fn add_assign(&mut self, rhs: DollarsPerHour) {
        self.0 += rhs.0;
    }
}

impl Mul<TimeSpan> for DollarsPerHour {
    type Output = Dollars;
    /// Penalty accrued at this rate over the given span. An infinite span
    /// with a non-zero rate yields [`Dollars::INFINITE`]; a zero rate
    /// accrues nothing regardless of the span.
    fn mul(self, rhs: TimeSpan) -> Dollars {
        if self.0 == 0.0 {
            return Dollars::ZERO;
        }
        Dollars(self.0 * rhs.as_hours())
    }
}

impl Mul<f64> for DollarsPerHour {
    type Output = DollarsPerHour;
    fn mul(self, rhs: f64) -> DollarsPerHour {
        DollarsPerHour::new(self.0 * rhs)
    }
}

impl Sum for DollarsPerHour {
    fn sum<I: Iterator<Item = DollarsPerHour>>(iter: I) -> DollarsPerHour {
        iter.fold(DollarsPerHour::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn amortization_divides_by_lifetime() {
        let price = Dollars::new(300_000.0);
        assert_eq!(price.amortized_annual().as_f64(), 100_000.0);
    }

    #[test]
    fn penalty_accrual() {
        let p = DollarsPerHour::new(5_000_000.0) * TimeSpan::from_mins(30.0);
        assert_eq!(p.as_f64(), 2_500_000.0);
    }

    #[test]
    fn zero_rate_accrues_nothing_even_forever() {
        let p = DollarsPerHour::ZERO * TimeSpan::INFINITE;
        assert_eq!(p, Dollars::ZERO);
    }

    #[test]
    fn nonzero_rate_over_infinite_span_is_infinite() {
        let p = DollarsPerHour::new(1.0) * TimeSpan::INFINITE;
        assert!(!p.is_finite());
    }

    #[test]
    fn money_sub_saturates() {
        assert_eq!(Dollars::new(5.0) - Dollars::new(9.0), Dollars::ZERO);
        assert_eq!(Dollars::INFINITE - Dollars::INFINITE, Dollars::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Dollars::new(5_000_000.0).to_string(), "$5.000M");
        assert_eq!(Dollars::new(5_000.0).to_string(), "$5.0K");
        assert_eq!(Dollars::new(12.5).to_string(), "$12.50");
        assert_eq!(Dollars::INFINITE.to_string(), "$∞");
        assert_eq!(DollarsPerHour::new(5_000.0).to_string(), "$5.0K/hr");
    }

    #[test]
    fn rate_sums() {
        let total: DollarsPerHour = [5e6, 5e3].iter().map(|&r| DollarsPerHour::new(r)).sum();
        assert_eq!(total.as_f64(), 5_005_000.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_money_rejected() {
        let _ = Dollars::new(-1.0);
    }

    proptest! {
        #[test]
        fn prop_penalty_linear_in_time(rate in 0.0..1e7f64, h in 0.0..1e4f64, k in 1.0..4.0f64) {
            let r = DollarsPerHour::new(rate);
            let one = r * TimeSpan::from_hours(h);
            let scaled = r * TimeSpan::from_hours(h * k);
            prop_assert!((scaled.as_f64() - one.as_f64() * k).abs() <= 1e-6 * (1.0 + scaled.as_f64()));
        }

        #[test]
        fn prop_amortized_is_cheaper(price in 0.0..1e9f64) {
            let p = Dollars::new(price);
            prop_assert!(p.amortized_annual() <= p);
        }
    }
}
