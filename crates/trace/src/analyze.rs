//! Trace analysis: extracting Table 1 workload characteristics.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_units::{Gigabytes, MegabytesPerSec, TimeSpan};
use dsd_workload::{PenaltyRates, WorkloadProfile};

use crate::generate::{IoEvent, IoKind, Trace};

/// The workload characteristics the design tool consumes (paper §2.2),
/// measured from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Dataset capacity (the traced volume size).
    pub capacity: Gigabytes,
    /// Average (non-unique) update rate: bytes written / duration.
    pub avg_update: MegabytesPerSec,
    /// Peak (non-unique) update rate: the largest 1-minute write window.
    pub peak_update: MegabytesPerSec,
    /// Average access rate (reads + writes).
    pub avg_access: MegabytesPerSec,
    /// Unique update rate: distinct blocks dirtied / duration — what a
    /// periodic copy actually has to move.
    pub unique_update: MegabytesPerSec,
}

impl TraceStats {
    /// Measures a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace duration is zero.
    #[must_use]
    pub fn analyze(trace: &Trace) -> Self {
        assert!(trace.duration.as_secs() > 0.0, "trace duration must be positive");
        let secs = trace.duration.as_secs();

        let mut written_mb = 0.0;
        let mut accessed_mb = 0.0;
        let mut dirty: HashSet<u64> = HashSet::new();

        // Peak over 60-second windows.
        let window = 60.0;
        let windows = (secs / window).ceil().max(1.0) as usize;
        let mut per_window_mb = vec![0.0f64; windows];

        for e in &trace.events {
            let mb = e.megabytes();
            accessed_mb += mb;
            if e.kind == IoKind::Write {
                written_mb += mb;
                for b in e.block..e.block + u64::from(e.blocks) {
                    dirty.insert(b);
                }
                let w = ((e.at.as_secs() / window) as usize).min(windows - 1);
                per_window_mb[w] += mb;
            }
        }

        let peak_window_mb = per_window_mb.iter().copied().fold(0.0, f64::max);
        let avg_update = MegabytesPerSec::new(written_mb / secs);
        // The peak cannot be below the average by construction of maxima,
        // but guard against degenerate traces shorter than one window.
        let peak_update = MegabytesPerSec::new(peak_window_mb / window.min(secs)).max(avg_update);

        TraceStats {
            capacity: trace.volume,
            avg_update,
            peak_update,
            avg_access: MegabytesPerSec::new(accessed_mb / secs),
            unique_update: MegabytesPerSec::new(
                dirty.len() as f64 * crate::generate::BLOCK_MB / secs,
            ),
        }
    }

    /// The unique fraction: unique / average update rate, clamped to
    /// `(0, 1]` (a trace that rewrites nothing has fraction 1).
    #[must_use]
    pub fn unique_fraction(&self) -> f64 {
        if self.avg_update.is_zero() {
            return 1.0;
        }
        (self.unique_update / self.avg_update).clamp(1e-6, 1.0)
    }

    /// Builds a solver-ready workload profile from the measurements plus
    /// the business requirements (which no trace can tell you).
    #[must_use]
    pub fn to_profile(
        &self,
        name: impl Into<String>,
        code: char,
        penalties: PenaltyRates,
    ) -> WorkloadProfile {
        WorkloadProfile::new(
            name,
            code,
            penalties,
            self.capacity,
            self.avg_update,
            self.peak_update,
            self.avg_access,
            self.unique_fraction(),
        )
    }

    /// Measures only a time slice of the trace (for stationarity checks).
    #[must_use]
    pub fn analyze_window(trace: &Trace, from: TimeSpan, to: TimeSpan) -> Self {
        let events: Vec<IoEvent> = trace
            .events
            .iter()
            .filter(|e| e.at >= from && e.at < to)
            .map(|e| IoEvent { at: e.at - from, ..*e })
            .collect();
        let slice = Trace { duration: to - from, volume: trace.volume, events };
        TraceStats::analyze(&slice)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: update {} avg / {} peak / {} unique, access {}",
            self.capacity, self.avg_update, self.peak_update, self.unique_update, self.avg_access
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{TraceConfig, TraceGenerator};
    use dsd_units::DollarsPerHour;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn config() -> TraceConfig {
        TraceConfig {
            duration: TimeSpan::from_hours(2.0),
            volume: Gigabytes::new(200.0),
            mean_update: MegabytesPerSec::new(2.0),
            read_ratio: 3.0,
            peak_to_mean: 2.0,
            working_set_fraction: 0.2,
            mean_io_blocks: 4,
        }
    }

    fn trace() -> Trace {
        TraceGenerator::new(config()).generate(&mut ChaCha8Rng::seed_from_u64(11))
    }

    #[test]
    fn stats_recover_generator_parameters() {
        let stats = TraceStats::analyze(&trace());
        // The 2 h window covers only the rising edge of the 24 h diurnal
        // sinusoid (phase 0..pi/6), so the expected measured mean is the
        // configured 2.0 MB/s scaled by the window-average intensity
        // 1 + (peak_to_mean - 1)(1 - cos(pi/6))/(pi/6) ~= 1.256, i.e.
        // ~2.51 MB/s — not the configured long-run mean itself.
        let phase_end = config().duration.as_secs() / 86_400.0 * std::f64::consts::TAU;
        let amplitude = config().peak_to_mean - 1.0;
        let window_intensity = 1.0 + amplitude * (1.0 - phase_end.cos()) / phase_end;
        let expected = config().mean_update.as_f64() * window_intensity;
        assert!((stats.avg_update.as_f64() - expected).abs() < 0.5, "{stats} vs {expected}");
        // Access = (1 + read_ratio) x update.
        let access_ratio = stats.avg_access / stats.avg_update;
        assert!((access_ratio - 4.0).abs() < 0.8, "access ratio {access_ratio}");
        // Diurnal peak visible.
        assert!(stats.peak_update.as_f64() > stats.avg_update.as_f64() * 1.3);
        // Rewrites shrink the unique rate below the raw update rate.
        assert!(stats.unique_update < stats.avg_update);
        assert!(stats.unique_fraction() < 1.0);
        assert!(stats.unique_fraction() > 0.0);
    }

    #[test]
    fn working_set_bounds_unique_volume() {
        let stats = TraceStats::analyze(&trace());
        // Unique bytes cannot exceed the working set (20% of 200 GB).
        let unique_gb = stats.unique_update.as_f64() * 7200.0 / 1024.0;
        assert!(unique_gb <= 0.2 * 200.0 + 1.0, "unique {unique_gb} GB");
    }

    #[test]
    fn profile_conversion_is_solver_ready() {
        let stats = TraceStats::analyze(&trace());
        let profile = stats.to_profile(
            "traced oltp",
            'T',
            PenaltyRates::new(DollarsPerHour::new(1e6), DollarsPerHour::new(1e5)),
        );
        assert_eq!(profile.capacity, Gigabytes::new(200.0));
        assert!(profile.peak_update >= profile.avg_update);
        assert!(profile.unique_fraction > 0.0 && profile.unique_fraction <= 1.0);
        assert!((profile.unique_update_rate().as_f64() - stats.unique_update.as_f64()).abs() < 0.2);
    }

    #[test]
    fn window_analysis_sees_the_diurnal_shape() {
        let mut cfg = config();
        cfg.duration = TimeSpan::from_hours(24.0);
        cfg.volume = Gigabytes::new(50.0);
        cfg.mean_update = MegabytesPerSec::new(0.2);
        let trace = TraceGenerator::new(cfg).generate(&mut ChaCha8Rng::seed_from_u64(12));
        // The sinusoid peaks at hour 6 and troughs at hour 18.
        let peak_window = TraceStats::analyze_window(
            &trace,
            TimeSpan::from_hours(5.0),
            TimeSpan::from_hours(7.0),
        );
        let trough_window = TraceStats::analyze_window(
            &trace,
            TimeSpan::from_hours(17.0),
            TimeSpan::from_hours(19.0),
        );
        assert!(
            peak_window.avg_update.as_f64() > trough_window.avg_update.as_f64() * 2.0,
            "peak {} vs trough {}",
            peak_window.avg_update,
            trough_window.avg_update
        );
    }

    #[test]
    fn empty_trace_yields_zero_rates() {
        let empty = Trace {
            duration: TimeSpan::from_hours(1.0),
            volume: Gigabytes::new(10.0),
            events: Vec::new(),
        };
        let stats = TraceStats::analyze(&empty);
        assert!(stats.avg_update.is_zero());
        assert!(stats.avg_access.is_zero());
        assert_eq!(stats.unique_fraction(), 1.0);
    }

    #[test]
    fn display_mentions_rates() {
        let stats = TraceStats::analyze(&trace());
        let text = stats.to_string();
        assert!(text.contains("update"));
        assert!(text.contains("access"));
    }
}
