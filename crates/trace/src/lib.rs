#![warn(missing_docs)]

//! Synthetic block-I/O traces and workload characterization.
//!
//! The paper's workload characteristics (Table 1) are "based on scaled
//! versions of the cello2002 workload" — an HP Labs internal trace that
//! is not publicly available. Per the reproduction's substitution policy
//! (DESIGN.md §3), this crate provides the equivalent capability:
//!
//! * [`TraceGenerator`] synthesizes block-level I/O traces with the
//!   first-order properties that matter to the design tool — a mean
//!   update rate, a diurnal peak-to-mean ratio, a working-set size
//!   (which determines the *unique* update rate periodic copies see),
//!   and a read/write mix;
//! * [`TraceStats`] extracts exactly the Table 1 parameters from any
//!   trace (synthetic or otherwise): average and peak (non-unique)
//!   update rates, average access rate, and the unique update fraction;
//! * [`TraceStats::to_profile`] turns those measurements into a
//!   [`dsd_workload::WorkloadProfile`] ready for the solver.
//!
//! # Examples
//!
//! ```
//! use dsd_trace::{TraceConfig, TraceGenerator, TraceStats};
//! use dsd_units::{Gigabytes, MegabytesPerSec, TimeSpan};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let config = TraceConfig {
//!     duration: TimeSpan::from_hours(2.0),
//!     volume: Gigabytes::new(500.0),
//!     mean_update: MegabytesPerSec::new(2.0),
//!     peak_to_mean: 1.0, // flat: a 2 h window of a diurnal day is biased
//!     ..TraceConfig::default()
//! };
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let trace = TraceGenerator::new(config).generate(&mut rng);
//! let stats = TraceStats::analyze(&trace);
//! assert!((stats.avg_update.as_f64() - 2.0).abs() < 0.5);
//! assert!(stats.peak_update >= stats.avg_update);
//! ```

mod analyze;
mod generate;
mod io;

pub use analyze::TraceStats;
pub use generate::{IoEvent, IoKind, Trace, TraceConfig, TraceGenerator};
pub use io::{from_csv, to_csv, ParseTraceError};
