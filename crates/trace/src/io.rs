//! Trace (de)serialization in a simple CSV dialect, so real traces can be
//! fed to the analyzer and synthetic ones exported for inspection.
//!
//! Format: a header line `secs,block,blocks,kind` followed by one event
//! per line, e.g. `12.500,1024,4,W`. The volume size and duration travel
//! in two comment lines (`# volume_gb=...`, `# duration_secs=...`) so a
//! file round-trips losslessly.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use dsd_units::{Gigabytes, TimeSpan};

use crate::generate::{IoEvent, IoKind, Trace};

/// Errors raised while parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line (0 = preamble).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// Renders a trace to the CSV dialect.
#[must_use]
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# volume_gb={}", trace.volume.as_f64());
    let _ = writeln!(out, "# duration_secs={}", trace.duration.as_secs());
    out.push_str("secs,block,blocks,kind\n");
    for e in &trace.events {
        let kind = match e.kind {
            IoKind::Read => 'R',
            IoKind::Write => 'W',
        };
        let _ = writeln!(out, "{:.3},{},{},{kind}", e.at.as_secs(), e.block, e.blocks);
    }
    out
}

/// Parses a trace from the CSV dialect.
///
/// # Errors
///
/// [`ParseTraceError`] describing the first malformed line; missing
/// preamble values default to the last event time (duration) and the
/// highest touched block (volume).
pub fn from_csv(text: &str) -> Result<Trace, ParseTraceError> {
    let mut volume: Option<f64> = None;
    let mut duration: Option<f64> = None;
    let mut events = Vec::new();
    let mut seen_header = false;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("volume_gb=") {
                volume = Some(v.trim().parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("bad volume_gb value: {v}"),
                })?);
            } else if let Some(v) = rest.strip_prefix("duration_secs=") {
                duration = Some(v.trim().parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("bad duration_secs value: {v}"),
                })?);
            }
            continue;
        }
        if !seen_header {
            if line != "secs,block,blocks,kind" {
                return Err(ParseTraceError {
                    line: line_no,
                    message: format!("expected header `secs,block,blocks,kind`, got `{line}`"),
                });
            }
            seen_header = true;
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |what: &str| {
            fields.next().map(str::trim).filter(|f| !f.is_empty()).ok_or_else(|| ParseTraceError {
                line: line_no,
                message: format!("missing field `{what}`"),
            })
        };
        let secs: f64 = next("secs")?
            .parse()
            .map_err(|_| ParseTraceError { line: line_no, message: "bad seconds".into() })?;
        let block: u64 = next("block")?
            .parse()
            .map_err(|_| ParseTraceError { line: line_no, message: "bad block".into() })?;
        let blocks: u32 = next("blocks")?
            .parse()
            .map_err(|_| ParseTraceError { line: line_no, message: "bad block count".into() })?;
        let kind = match next("kind")? {
            "R" | "r" => IoKind::Read,
            "W" | "w" => IoKind::Write,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    message: format!("kind must be R or W, got `{other}`"),
                })
            }
        };
        if secs < 0.0 || !secs.is_finite() {
            return Err(ParseTraceError {
                line: line_no,
                message: "seconds must be finite and non-negative".into(),
            });
        }
        if blocks == 0 {
            return Err(ParseTraceError {
                line: line_no,
                message: "block count must be positive".into(),
            });
        }
        events.push(IoEvent { at: TimeSpan::from_secs(secs), block, blocks, kind });
    }

    events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
    let duration =
        duration.or_else(|| events.last().map(|e| e.at.as_secs())).unwrap_or(0.0).max(f64::EPSILON);
    let volume = volume.unwrap_or_else(|| {
        events
            .iter()
            .map(|e| (e.block + u64::from(e.blocks)) as f64 * crate::generate::BLOCK_MB / 1024.0)
            .fold(1.0, f64::max)
    });
    Ok(Trace { duration: TimeSpan::from_secs(duration), volume: Gigabytes::new(volume), events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{TraceConfig, TraceGenerator};
    use dsd_units::MegabytesPerSec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_trace() -> Trace {
        let config = TraceConfig {
            duration: TimeSpan::from_mins(20.0),
            volume: Gigabytes::new(50.0),
            mean_update: MegabytesPerSec::new(1.0),
            peak_to_mean: 1.0,
            ..TraceConfig::default()
        };
        TraceGenerator::new(config).generate(&mut ChaCha8Rng::seed_from_u64(5))
    }

    #[test]
    fn csv_roundtrip_is_lossless_modulo_time_precision() {
        let trace = sample_trace();
        let csv = to_csv(&trace);
        let parsed = from_csv(&csv).expect("parses");
        assert_eq!(parsed.volume, trace.volume);
        assert_eq!(parsed.duration, trace.duration);
        assert_eq!(parsed.events.len(), trace.events.len());
        for (a, b) in parsed.events.iter().zip(&trace.events) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.blocks, b.blocks);
            assert_eq!(a.kind, b.kind);
            assert!((a.at.as_secs() - b.at.as_secs()).abs() < 1e-3);
        }
    }

    #[test]
    fn hand_written_trace_parses_and_analyzes() {
        let csv = "\
# volume_gb=10
# duration_secs=3600
secs,block,blocks,kind
0.0,0,4,W
600.0,4,4,W
1200.0,0,4,W
1800.0,100,8,R
";
        let trace = from_csv(csv).expect("parses");
        assert_eq!(trace.events.len(), 4);
        let stats = crate::TraceStats::analyze(&trace);
        // 12 MB written over 3600 s.
        assert!((stats.avg_update.as_f64() - 12.0 / 3600.0).abs() < 1e-9);
        // Blocks 0..4 rewritten: 8 unique MB of 12 written.
        assert!((stats.unique_fraction() - 8.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn missing_preamble_is_inferred() {
        let csv = "secs,block,blocks,kind\n1.0,10,2,W\n5.0,100,1,R\n";
        let trace = from_csv(csv).expect("parses");
        assert_eq!(trace.duration.as_secs(), 5.0);
        assert!(trace.volume.as_f64() > 0.0);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let bad_kind = "secs,block,blocks,kind\n1.0,1,1,X\n";
        let err = from_csv(bad_kind).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("kind"));

        let bad_header = "time,block\n";
        assert!(from_csv(bad_header).unwrap_err().message.contains("header"));

        let negative = "secs,block,blocks,kind\n-1.0,1,1,W\n";
        assert!(from_csv(negative).unwrap_err().message.contains("non-negative"));

        let zero_blocks = "secs,block,blocks,kind\n1.0,1,0,W\n";
        assert!(from_csv(zero_blocks).unwrap_err().message.contains("positive"));
    }

    #[test]
    fn unsorted_events_are_sorted_on_load() {
        let csv = "secs,block,blocks,kind\n5.0,1,1,W\n1.0,2,1,W\n";
        let trace = from_csv(csv).expect("parses");
        assert!(trace.events[0].at < trace.events[1].at);
    }
}
