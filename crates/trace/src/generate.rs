//! Synthetic trace generation.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use dsd_units::{Gigabytes, MegabytesPerSec, TimeSpan};

/// Block size of trace addressing (1 MB blocks keep day-long traces
/// tractable while preserving the statistics the design tool consumes).
pub const BLOCK_MB: f64 = 1.0;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Read access (contributes to the access rate only).
    Read,
    /// Write access (contributes to update and access rates).
    Write,
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoKind::Read => f.write_str("R"),
            IoKind::Write => f.write_str("W"),
        }
    }
}

/// One I/O in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoEvent {
    /// Time since trace start.
    pub at: TimeSpan,
    /// First block touched.
    pub block: u64,
    /// Number of consecutive blocks.
    pub blocks: u32,
    /// Read or write.
    pub kind: IoKind,
}

impl IoEvent {
    /// Bytes moved, in megabytes.
    #[must_use]
    pub fn megabytes(&self) -> f64 {
        f64::from(self.blocks) * BLOCK_MB
    }
}

/// A block-level I/O trace over a fixed-size volume.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Trace duration.
    pub duration: TimeSpan,
    /// Volume size.
    pub volume: Gigabytes,
    /// Events in time order.
    pub events: Vec<IoEvent>,
}

impl Trace {
    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// First-order workload knobs of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Trace length.
    pub duration: TimeSpan,
    /// Volume size (determines the block address space).
    pub volume: Gigabytes,
    /// Target mean write (update) rate.
    pub mean_update: MegabytesPerSec,
    /// Reads per write byte: access = (1 + read_ratio) × update.
    pub read_ratio: f64,
    /// Diurnal peak-to-mean intensity ratio (≥ 1; 1 = flat).
    pub peak_to_mean: f64,
    /// Fraction of the volume that receives writes (the working set);
    /// writes are skewed 80/20 toward its hot fifth.
    pub working_set_fraction: f64,
    /// Mean I/O size in blocks.
    pub mean_io_blocks: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            duration: TimeSpan::from_hours(24.0),
            volume: Gigabytes::new(1000.0),
            mean_update: MegabytesPerSec::new(2.0),
            read_ratio: 4.0,
            peak_to_mean: 3.0,
            working_set_fraction: 0.25,
            mean_io_blocks: 4,
        }
    }
}

impl TraceConfig {
    fn validate(&self) {
        assert!(self.duration.as_secs() > 0.0, "duration must be positive");
        assert!(self.volume.as_f64() > 0.0, "volume must be positive");
        assert!(self.read_ratio >= 0.0, "read ratio must be non-negative");
        assert!(self.peak_to_mean >= 1.0, "peak-to-mean must be at least 1");
        assert!(
            self.working_set_fraction > 0.0 && self.working_set_fraction <= 1.0,
            "working set fraction must be in (0, 1]"
        );
        assert!(self.mean_io_blocks >= 1, "I/O size must be at least one block");
    }
}

/// Generates synthetic traces with a sinusoidal diurnal intensity and a
/// skewed write working set.
#[derive(Debug, Clone, Copy)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-positive duration or
    /// volume, peak-to-mean below 1, working set outside `(0, 1]`).
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        config.validate();
        TraceGenerator { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Instantaneous intensity multiplier at time `t`: a raised sinusoid
    /// with period 24 h whose mean is 1 and whose maximum is
    /// `peak_to_mean`.
    #[must_use]
    pub fn intensity(&self, t: TimeSpan) -> f64 {
        let amplitude = self.config.peak_to_mean - 1.0;
        let phase = t.as_secs() / 86_400.0 * std::f64::consts::TAU;
        // sin is negative half the time; clamp at zero keeps the mean
        // slightly above 1 for large amplitudes, which the analyzer
        // tolerates (it measures, it doesn't trust the config).
        (1.0 + amplitude * phase.sin()).max(0.05)
    }

    /// Generates one trace. Deterministic for a given RNG state.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Trace {
        let c = &self.config;
        let total_blocks = (c.volume.as_megabytes() / BLOCK_MB).max(1.0) as u64;
        let ws_blocks = ((total_blocks as f64) * c.working_set_fraction).max(1.0) as u64;
        let hot_blocks = (ws_blocks / 5).max(1);

        // Time-sliced generation: 60 s slots, Poisson event counts per
        // slot at the diurnally modulated rate.
        let slot = 60.0_f64;
        let slots = (c.duration.as_secs() / slot).ceil() as usize;
        let mean_event_mb = f64::from(c.mean_io_blocks) * BLOCK_MB;
        let mut events = Vec::new();

        for s in 0..slots {
            let t0 = s as f64 * slot;
            let intensity = self.intensity(TimeSpan::from_secs(t0));
            let write_mb_this_slot = c.mean_update.as_f64() * slot * intensity;
            let write_events = sample_count(rng, write_mb_this_slot / mean_event_mb);
            let read_events = sample_count(rng, write_mb_this_slot * c.read_ratio / mean_event_mb);

            for _ in 0..write_events {
                let at = TimeSpan::from_secs(t0 + rng.gen_range(0.0..slot));
                // 80% of writes land in the hot fifth of the working set.
                let block = if rng.gen_bool(0.8) {
                    rng.gen_range(0..hot_blocks)
                } else {
                    rng.gen_range(0..ws_blocks)
                };
                events.push(IoEvent {
                    at,
                    block,
                    blocks: sample_size(rng, c.mean_io_blocks),
                    kind: IoKind::Write,
                });
            }
            for _ in 0..read_events {
                let at = TimeSpan::from_secs(t0 + rng.gen_range(0.0..slot));
                events.push(IoEvent {
                    at,
                    block: rng.gen_range(0..total_blocks),
                    blocks: sample_size(rng, c.mean_io_blocks),
                    kind: IoKind::Read,
                });
            }
        }
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        Trace { duration: c.duration, volume: c.volume, events }
    }
}

/// Poisson-ish count with the right mean (normal approximation above 30).
fn sample_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        // Knuth's method.
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k;
            }
        }
    }
    let std = mean.sqrt();
    let u: f64 = rng.gen_range(0.0..1.0);
    let v: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * v).cos();
    (mean + std * z).round().max(0.0) as usize
}

/// Geometric-ish I/O size with the requested mean, at least one block.
fn sample_size<R: Rng + ?Sized>(rng: &mut R, mean_blocks: u32) -> u32 {
    if mean_blocks <= 1 {
        return 1;
    }
    let p = 1.0 / f64::from(mean_blocks);
    let u: f64 = rng.gen_range(0.0..1.0f64);
    let size = (u.max(1e-12).ln() / (1.0 - p).ln()).ceil();
    (size.max(1.0) as u32).min(mean_blocks * 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn short_config() -> TraceConfig {
        TraceConfig {
            duration: TimeSpan::from_hours(1.0),
            volume: Gigabytes::new(100.0),
            mean_update: MegabytesPerSec::new(1.0),
            read_ratio: 2.0,
            peak_to_mean: 1.0,
            working_set_fraction: 0.5,
            mean_io_blocks: 4,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TraceGenerator::new(short_config());
        let a = g.generate(&mut ChaCha8Rng::seed_from_u64(1));
        let b = g.generate(&mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn flat_trace_hits_target_write_rate() {
        let g = TraceGenerator::new(short_config());
        let trace = g.generate(&mut ChaCha8Rng::seed_from_u64(2));
        let written_mb: f64 =
            trace.events.iter().filter(|e| e.kind == IoKind::Write).map(IoEvent::megabytes).sum();
        let rate = written_mb / trace.duration.as_secs();
        assert!((rate - 1.0).abs() < 0.2, "measured {rate} MB/s vs target 1.0");
    }

    #[test]
    fn events_are_time_ordered_and_in_range() {
        let g = TraceGenerator::new(short_config());
        let trace = g.generate(&mut ChaCha8Rng::seed_from_u64(3));
        let total_blocks = (trace.volume.as_megabytes() / BLOCK_MB) as u64;
        for pair in trace.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for e in &trace.events {
            assert!(e.at <= trace.duration);
            assert!(e.block < total_blocks);
            assert!(e.blocks >= 1);
        }
    }

    #[test]
    fn writes_stay_inside_the_working_set() {
        let config = TraceConfig { working_set_fraction: 0.1, ..short_config() };
        let g = TraceGenerator::new(config);
        let trace = g.generate(&mut ChaCha8Rng::seed_from_u64(4));
        let ws_blocks = ((trace.volume.as_megabytes() / BLOCK_MB) * 0.1) as u64;
        for e in trace.events.iter().filter(|e| e.kind == IoKind::Write) {
            assert!(e.block < ws_blocks, "write at {} beyond working set", e.block);
        }
    }

    #[test]
    fn intensity_has_requested_peak() {
        let config = TraceConfig { peak_to_mean: 3.0, ..short_config() };
        let g = TraceGenerator::new(config);
        let peak = (0..1440)
            .map(|m| g.intensity(TimeSpan::from_mins(f64::from(m))))
            .fold(0.0f64, f64::max);
        assert!((peak - 3.0).abs() < 0.01);
        let flat = TraceGenerator::new(short_config());
        assert_eq!(flat.intensity(TimeSpan::from_hours(6.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "peak-to-mean")]
    fn sub_unit_peak_rejected() {
        let _ = TraceGenerator::new(TraceConfig { peak_to_mean: 0.5, ..short_config() });
    }

    #[test]
    fn sample_count_matches_mean_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for mean in [0.5, 5.0, 80.0] {
            let n = 2000;
            let total: usize = (0..n).map(|_| sample_count(&mut rng, mean)).sum();
            let measured = total as f64 / n as f64;
            assert!(
                (measured - mean).abs() < mean.max(1.0) * 0.15,
                "mean {mean}: measured {measured}"
            );
        }
    }

    #[test]
    fn sample_size_is_positive_with_roughly_right_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 4000;
        let total: u32 = (0..n).map(|_| sample_size(&mut rng, 4)).sum();
        let mean = f64::from(total) / f64::from(n);
        assert!((mean - 4.0).abs() < 1.0, "measured mean {mean}");
        assert_eq!(sample_size(&mut rng, 1), 1);
    }
}
