//! Property tests on trace generation and analysis.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_trace::{from_csv, to_csv, TraceConfig, TraceGenerator, TraceStats};
use dsd_units::{Gigabytes, MegabytesPerSec, TimeSpan};

fn config_strategy() -> impl Strategy<Value = (TraceConfig, u64)> {
    (
        0.2..2.0f64,    // duration hours
        10.0..500.0f64, // volume GB
        0.1..4.0f64,    // mean update MB/s
        0.0..8.0f64,    // read ratio
        1.0..4.0f64,    // peak to mean
        0.05..1.0f64,   // working set fraction
        1u32..8,        // mean io blocks
        any::<u64>(),   // seed
    )
        .prop_map(|(h, gb, upd, rr, pm, ws, io, seed)| {
            (
                TraceConfig {
                    duration: TimeSpan::from_hours(h),
                    volume: Gigabytes::new(gb),
                    mean_update: MegabytesPerSec::new(upd),
                    read_ratio: rr,
                    peak_to_mean: pm,
                    working_set_fraction: ws,
                    mean_io_blocks: io,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn analyzer_invariants_hold_for_any_generated_trace((config, seed) in config_strategy()) {
        let trace =
            TraceGenerator::new(config).generate(&mut ChaCha8Rng::seed_from_u64(seed));
        let stats = TraceStats::analyze(&trace);

        // Peak is a windowed max of the same stream the average is
        // computed from.
        prop_assert!(stats.peak_update >= stats.avg_update);
        // Distinct dirtied bytes cannot exceed written bytes.
        prop_assert!(stats.unique_update.as_f64() <= stats.avg_update.as_f64() + 1e-9);
        // Access includes the writes.
        prop_assert!(stats.avg_access.as_f64() >= stats.avg_update.as_f64() - 1e-9);
        // Unique volume is bounded by the working set.
        let unique_gb =
            stats.unique_update.as_f64() * trace.duration.as_secs() / 1024.0;
        let ws_gb = config.volume.as_f64() * config.working_set_fraction;
        prop_assert!(unique_gb <= ws_gb + 1.0, "unique {unique_gb} vs ws {ws_gb}");
        // Fraction stays in (0, 1].
        let f = stats.unique_fraction();
        prop_assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn csv_roundtrip_preserves_measured_statistics((config, seed) in config_strategy()) {
        let trace =
            TraceGenerator::new(config).generate(&mut ChaCha8Rng::seed_from_u64(seed));
        let parsed = from_csv(&to_csv(&trace)).expect("own output parses");
        let a = TraceStats::analyze(&trace);
        let b = TraceStats::analyze(&parsed);
        prop_assert!((a.avg_update.as_f64() - b.avg_update.as_f64()).abs() < 1e-6);
        prop_assert!((a.avg_access.as_f64() - b.avg_access.as_f64()).abs() < 1e-6);
        prop_assert!((a.unique_update.as_f64() - b.unique_update.as_f64()).abs() < 1e-6);
        // Peak uses 60 s windows over times rounded to 1 ms in the CSV;
        // allow a window's worth of slack.
        prop_assert!((a.peak_update.as_f64() - b.peak_update.as_f64()).abs()
            < a.peak_update.as_f64() * 0.05 + 0.2);
    }

    #[test]
    fn profile_derived_from_any_trace_is_solver_legal((config, seed) in config_strategy()) {
        use dsd_units::DollarsPerHour;
        use dsd_workload::PenaltyRates;
        let trace =
            TraceGenerator::new(config).generate(&mut ChaCha8Rng::seed_from_u64(seed));
        prop_assume!(!trace.is_empty());
        let stats = TraceStats::analyze(&trace);
        let profile = stats.to_profile(
            "generated",
            'G',
            PenaltyRates::new(DollarsPerHour::new(1e5), DollarsPerHour::new(1e4)),
        );
        // WorkloadProfile::new validates peak >= avg and fraction in (0,1];
        // reaching here without a panic is the property.
        prop_assert!(profile.capacity.as_f64() > 0.0);
    }
}
