//! Per-application protection records: technique + configuration +
//! resource placement.

use serde::{Deserialize, Serialize};

use dsd_protection::{Technique, TechniqueConfig};
use dsd_resources::{ArrayRef, RouteId, SiteId, TapeRef};
use dsd_workload::AppId;

/// Where an application's copies live on the provisioned infrastructure
/// (the "mapping of primary and secondary data copies onto the provisioned
/// resource instances", paper §2.6).
#[derive(Debug, Clone, Copy, PartialEq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// Array holding the primary copy (and snapshots, if any).
    pub primary: ArrayRef,
    /// Array holding the mirror copy, when the technique mirrors.
    pub mirror: Option<ArrayRef>,
    /// Tape library receiving backups, when the technique backs up.
    pub tape: Option<TapeRef>,
    /// Route carrying mirror traffic between primary and mirror sites.
    pub route: Option<RouteId>,
    /// Site with a spare compute server for failover.
    pub failover_site: Option<SiteId>,
}

impl Placement {
    /// A placement with only a primary copy location.
    #[must_use]
    pub fn primary_only(primary: ArrayRef) -> Self {
        Placement { primary, mirror: None, tape: None, route: None, failover_site: None }
    }

    /// Checks structural consistency against a technique: a mirror (and
    /// route) iff the technique mirrors, a tape library iff it backs up, a
    /// failover site iff recovery is failover, and the mirror on a
    /// different site than the primary.
    #[must_use]
    pub fn consistent_with(&self, technique: &Technique) -> bool {
        if technique.has_mirror() != self.mirror.is_some() {
            return false;
        }
        if technique.has_mirror() && self.route.is_none() {
            return false;
        }
        if technique.has_backup() != self.tape.is_some() {
            return false;
        }
        if technique.is_failover() != self.failover_site.is_some() {
            return false;
        }
        if let Some(mirror) = self.mirror {
            if mirror.site == self.primary.site {
                return false;
            }
            if let Some(failover) = self.failover_site {
                if failover != mirror.site {
                    return false;
                }
            }
        }
        true
    }
}

/// Everything the evaluator needs to know about one protected application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProtection {
    /// The protected application.
    pub app: AppId,
    /// The data protection technique applied to it.
    pub technique: Technique,
    /// The technique's chosen configuration parameters.
    pub config: TechniqueConfig,
    /// Where its copies live.
    pub placement: Placement,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_protection::TechniqueCatalog;

    fn technique(name: &str) -> Technique {
        let c = TechniqueCatalog::table2();
        c[c.find(name).unwrap()].clone()
    }

    const P: ArrayRef = ArrayRef { site: SiteId(0), slot: 0 };
    const M: ArrayRef = ArrayRef { site: SiteId(1), slot: 0 };

    #[test]
    fn backup_only_placement_consistency() {
        let t = technique("tape backup");
        let mut p = Placement::primary_only(P);
        assert!(!p.consistent_with(&t), "needs a tape library");
        p.tape = Some(TapeRef::first(SiteId(0)));
        assert!(p.consistent_with(&t));
        p.mirror = Some(M);
        assert!(!p.consistent_with(&t), "no mirror allowed for backup-only");
    }

    #[test]
    fn failover_placement_needs_compute_at_mirror_site() {
        let t = technique("sync mirror (F)");
        let mut p = Placement::primary_only(P);
        p.mirror = Some(M);
        p.route = Some(RouteId(0));
        assert!(!p.consistent_with(&t), "failover site missing");
        p.failover_site = Some(SiteId(0));
        assert!(!p.consistent_with(&t), "failover site must be the mirror site");
        p.failover_site = Some(SiteId(1));
        assert!(p.consistent_with(&t));
    }

    #[test]
    fn mirror_must_be_remote() {
        let t = technique("sync mirror (R)");
        let mut p = Placement::primary_only(P);
        p.mirror = Some(ArrayRef { site: SiteId(0), slot: 1 });
        p.route = Some(RouteId(0));
        assert!(!p.consistent_with(&t), "mirror at primary site gives no disaster isolation");
        p.mirror = Some(M);
        assert!(p.consistent_with(&t));
    }

    #[test]
    fn mirror_requires_route() {
        let t = technique("sync mirror (R)");
        let mut p = Placement::primary_only(P);
        p.mirror = Some(M);
        assert!(!p.consistent_with(&t));
        p.route = Some(RouteId(0));
        assert!(p.consistent_with(&t));
    }
}
