//! Scenario evaluation: loss times, recovery times, expected penalties.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_failure::{FailureScenario, FailureScope};
use dsd_protection::{CopyKind, PropagationDelays};
use dsd_resources::{DeviceRef, Provision};
use dsd_units::{Dollars, MegabytesPerSec, PerYear, TimeSpan};
use dsd_workload::{AppId, WorkloadSet};

use crate::policy::RecoveryPolicy;
use crate::protection::AppProtection;
use crate::scenario_cache::{ScenarioDigest, ScenarioOutcomeCache};
use crate::scheduler::{schedule_jobs_with, RecoveryJob};
use crate::survival::surviving_copies;

/// How a failed application was brought back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPath {
    /// Failed over to the mirror site (pre-provisioned spare compute).
    Failover,
    /// Restored the given copy onto (repaired) primary resources.
    Restore(CopyKind),
    /// Promoted the surviving mirror at the secondary site after
    /// procuring replacement compute there (reconstruct-category
    /// techniques when restoring in place would take longer, e.g. after
    /// a site disaster).
    PromoteMirror,
    /// No surviving copy: data recreated by hand at the unprotected
    /// penalty times.
    Unprotected,
}

impl fmt::Display for RecoveryPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPath::Failover => f.write_str("failover"),
            RecoveryPath::Restore(c) => write!(f, "restore from {c}"),
            RecoveryPath::PromoteMirror => f.write_str("promote mirror"),
            RecoveryPath::Unprotected => f.write_str("unprotected"),
        }
    }
}

/// Evaluation result for one application in one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// The affected application.
    pub app: AppId,
    /// The recovery path taken.
    pub path: RecoveryPath,
    /// Data outage time (failure to application-online).
    pub recovery_time: TimeSpan,
    /// Recent data loss time (staleness of the recovered copy).
    pub loss_time: TimeSpan,
    /// For failover / mirror-promotion recoveries: when the application
    /// is back *home* — hardware repaired and the dataset copied back in
    /// the background (paper §2.1: "failover requires a later fail back
    /// operation (performed in the background)"). Does not extend the
    /// outage. `None` for in-place restores.
    pub failback_time: Option<TimeSpan>,
}

/// Evaluation result of one failure scenario: outcomes for every affected
/// application (unaffected applications continue running and incur no
/// penalty).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The evaluated scenario's scope.
    pub scope: FailureScope,
    /// Per-affected-application outcomes, in app order.
    pub outcomes: Vec<AppOutcome>,
}

/// One likelihood-weighted penalty line item: a single
/// (application × failure scenario) cell of the paper's penalty tables
/// (§3, Tables 4–6), with the weighting shown explicitly.
///
/// Items are recorded in the exact order the accumulation visits them
/// (scenario order, then app order within a scenario), so folding
/// `outage` / `loss` left-to-right reproduces the matching
/// [`PenaltySummary`] totals bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyItem {
    /// The failure scenario's scope.
    pub scope: FailureScope,
    /// Annual likelihood of the scenario.
    pub likelihood: PerYear,
    /// The affected application.
    pub app: AppId,
    /// The recovery path taken.
    pub path: RecoveryPath,
    /// Data outage time in this scenario.
    pub recovery_time: TimeSpan,
    /// Recent data loss time in this scenario.
    pub loss_time: TimeSpan,
    /// Unweighted outage penalty (per occurrence of the scenario).
    pub outage_raw: Dollars,
    /// Unweighted recent-loss penalty (per occurrence of the scenario).
    pub loss_raw: Dollars,
    /// Likelihood-weighted expected annual outage penalty.
    pub outage: Dollars,
    /// Likelihood-weighted expected annual recent-loss penalty.
    pub loss: Dollars,
}

impl PenaltyItem {
    /// Weighted outage + loss contribution of this item.
    #[must_use]
    pub fn weighted_total(&self) -> Dollars {
        self.outage + self.loss
    }

    /// Folds a slice of items back into `(outage, loss)` totals, in item
    /// order — bit-identical to the [`PenaltySummary`] the items were
    /// recorded alongside.
    #[must_use]
    pub fn fold_totals(items: &[PenaltyItem]) -> (Dollars, Dollars) {
        let mut outage = Dollars::ZERO;
        let mut loss = Dollars::ZERO;
        for item in items {
            outage += item.outage;
            loss += item.loss;
        }
        (outage, loss)
    }
}

/// Expected annual penalties, likelihood-weighted over all scenarios
/// (paper §2.5).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PenaltySummary {
    /// Expected annual data outage penalty.
    pub outage: Dollars,
    /// Expected annual recent data loss penalty.
    pub loss: Dollars,
    /// Per-application (outage, loss) expected annual penalties.
    pub per_app: BTreeMap<AppId, (Dollars, Dollars)>,
}

impl PenaltySummary {
    /// Total expected annual penalty.
    #[must_use]
    pub fn total(&self) -> Dollars {
        self.outage + self.loss
    }

    /// True if every component is finite (i.e. every failure scenario has
    /// a completing recovery path for every affected application).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.total().is_finite()
    }
}

impl fmt::Display for PenaltySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "outage {} + loss {} = {}", self.outage, self.loss, self.total())
    }
}

/// Classic availability summary for one application, derived from the
/// likelihood-weighted recovery times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Availability {
    /// The application.
    pub app: AppId,
    /// Expected downtime per year over all scenarios.
    pub expected_annual_downtime: TimeSpan,
    /// Steady-state availability in `[0, 1]`.
    pub availability: f64,
}

impl Availability {
    /// The "number of nines" of the availability (e.g. 0.9995 → 3.3).
    #[must_use]
    pub fn nines(&self) -> f64 {
        if self.availability >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - self.availability).log10()
        }
    }
}

/// Evaluates designs against failure scenarios (paper §3.2).
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    workloads: &'a WorkloadSet,
    provision: &'a Provision,
    policy: RecoveryPolicy,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over the given workloads and provisioned
    /// infrastructure.
    #[must_use]
    pub fn new(
        workloads: &'a WorkloadSet,
        provision: &'a Provision,
        policy: RecoveryPolicy,
    ) -> Self {
        Evaluator { workloads, provision, policy }
    }

    /// The policy in use.
    #[must_use]
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The workload set this evaluator prices against.
    #[must_use]
    pub fn workloads(&self) -> &WorkloadSet {
        self.workloads
    }

    /// Bandwidth available to a stream of `app` on device `d` (the app's
    /// own allocation plus the device's spare); exposed for the
    /// vulnerability analysis.
    #[must_use]
    pub fn stream_rate_public(&self, app: AppId, d: DeviceRef) -> MegabytesPerSec {
        self.stream_rate(app, d)
    }

    /// Propagation delays of `protection`'s copy hierarchy given the
    /// provisioned bandwidths (the "n/w" and "tape" entries of Table 2).
    /// A recovery stream may use the application's own allocated share
    /// plus the device's spare bandwidth.
    #[must_use]
    pub fn propagation_delays(&self, protection: &AppProtection) -> PropagationDelays {
        let app = &self.workloads[protection.app];
        let network = match (protection.technique.mirror, protection.placement.route) {
            (Some(m), Some(route)) if !m.sync => {
                let batch = app.avg_update() * m.acc_win;
                let rate = self.stream_rate(protection.app, DeviceRef::Route(route));
                batch / rate
            }
            _ => TimeSpan::ZERO,
        };
        let tape = match protection.placement.tape {
            Some(t) if protection.technique.has_backup() => {
                let rate = self.stream_rate(protection.app, DeviceRef::Tape(t));
                app.capacity() / rate
            }
            _ => TimeSpan::ZERO,
        };
        PropagationDelays { network, tape }
    }

    /// Bandwidth available to a stream of `app` on device `d`: the app's
    /// own allocation plus the device's spare.
    fn stream_rate(&self, app: AppId, d: DeviceRef) -> MegabytesPerSec {
        self.provision.app_alloc_bandwidth_on(app, d) + self.provision.spare_bandwidth(d)
    }

    /// Time from the failure instant until the application is back on
    /// its (repaired) home hardware after a failover or promotion: the
    /// hardware repair lead time, then a background copy of the dataset
    /// from the mirror site over the route and arrays' spare bandwidth,
    /// then a reconfiguration. Background work — it does not contribute
    /// to the outage penalty.
    #[must_use]
    pub fn failback_time(&self, protection: &AppProtection, scope: &FailureScope) -> TimeSpan {
        let app = &self.workloads[protection.app];
        let repair = match scope {
            FailureScope::DataObject { .. } => TimeSpan::ZERO,
            FailureScope::DiskArray { .. } => self.policy.array_repair,
            FailureScope::SiteDisaster { .. } => self.policy.site_rebuild,
        };
        let mut devices = vec![DeviceRef::Array(protection.placement.primary)];
        if let Some(m) = protection.placement.mirror {
            devices.push(DeviceRef::Array(m));
        }
        if let Some(route) = protection.placement.route {
            devices.push(DeviceRef::Route(route));
        }
        let rate = devices
            .iter()
            .map(|&d| self.stream_rate(protection.app, d))
            .fold(MegabytesPerSec::new(f64::MAX / 2.0), MegabytesPerSec::min);
        repair + app.capacity() / rate + self.policy.reconfig_time
    }

    /// Worst-case staleness of `copy` for `protection` under the
    /// provisioned propagation delays.
    #[must_use]
    pub fn staleness(&self, protection: &AppProtection, copy: CopyKind) -> TimeSpan {
        let delays = self.propagation_delays(protection);
        protection.technique.staleness(copy, &protection.config, &delays)
    }

    /// Evaluates one failure scenario: decides each affected
    /// application's recovery path, schedules contending restore streams
    /// with priority serialization, and returns per-application outage
    /// and loss times.
    #[must_use]
    pub fn evaluate_scenario(
        &self,
        protections: &[AppProtection],
        scope: &FailureScope,
    ) -> ScenarioOutcome {
        let mut failover_outcomes = Vec::new();
        let mut jobs = Vec::new();
        let mut job_meta: BTreeMap<AppId, (RecoveryPath, TimeSpan, Option<TimeSpan>)> =
            BTreeMap::new();

        for protection in protections {
            if !scope.affects_app(protection.app, protection.placement.primary) {
                continue;
            }
            let app = &self.workloads[protection.app];
            let surviving = surviving_copies(protection, scope);

            // Failover short-circuits restore when the mirror survived and
            // the failover site itself is intact.
            let can_failover = protection.technique.is_failover()
                && surviving.contains(&CopyKind::Mirror)
                && protection.placement.failover_site.is_some_and(|s| !scope.fails_site(s));
            if can_failover {
                failover_outcomes.push(AppOutcome {
                    app: protection.app,
                    path: RecoveryPath::Failover,
                    recovery_time: self.policy.failover_time,
                    loss_time: self.staleness(protection, CopyKind::Mirror),
                    failback_time: Some(self.failback_time(protection, scope)),
                });
                continue;
            }

            // Otherwise restore the accessible copy with minimum staleness
            // (paper §3.2.1).
            let chosen = surviving.iter().copied().min_by(|&a, &b| {
                self.staleness(protection, a)
                    .partial_cmp(&self.staleness(protection, b))
                    .expect("staleness values are comparable")
            });
            let Some(copy) = chosen else {
                failover_outcomes.push(AppOutcome {
                    app: protection.app,
                    path: RecoveryPath::Unprotected,
                    recovery_time: self.policy.unprotected_recovery,
                    loss_time: self.policy.unprotected_loss,
                    failback_time: None,
                });
                continue;
            };

            let repair = match scope {
                FailureScope::DataObject { .. } => TimeSpan::ZERO,
                FailureScope::DiskArray { .. } => self.policy.array_repair,
                FailureScope::SiteDisaster { .. } => self.policy.site_rebuild,
            };
            let lead_time = if copy == CopyKind::Vault {
                repair.max(self.policy.vault_retrieval)
            } else {
                repair
            };

            let primary = DeviceRef::Array(protection.placement.primary);
            let devices: Vec<DeviceRef> = match copy {
                CopyKind::Snapshot => vec![primary],
                CopyKind::Backup | CopyKind::Vault => {
                    let tape = protection.placement.tape.expect("backup copies have a tape");
                    vec![DeviceRef::Tape(tape), primary]
                }
                CopyKind::Mirror => {
                    let mirror = protection.placement.mirror.expect("mirror copies have an array");
                    let mut d = vec![DeviceRef::Array(mirror), primary];
                    if let Some(route) = protection.placement.route {
                        d.push(DeviceRef::Route(route));
                    }
                    d
                }
            };
            let rate = devices
                .iter()
                .map(|&d| self.stream_rate(protection.app, d))
                .fold(MegabytesPerSec::new(f64::MAX / 2.0), MegabytesPerSec::min);
            let transfer =
                (app.capacity() * protection.technique.restore_amplification(copy)) / rate;

            // Mirror promotion: instead of restoring in place, procure
            // compute at the surviving mirror site and run from the
            // mirror copy (no bulk transfer, no shared-device seizure).
            // Chosen when it beats the in-place estimate — after a site
            // disaster the 7-day rebuild always loses to procurement.
            let promote = copy == CopyKind::Mirror
                && protection.placement.mirror.is_some_and(|m| !scope.fails_site(m.site))
                && self.policy.compute_procurement < lead_time + transfer;
            if promote {
                job_meta.insert(
                    protection.app,
                    (
                        RecoveryPath::PromoteMirror,
                        self.staleness(protection, copy),
                        Some(self.failback_time(protection, scope)),
                    ),
                );
                jobs.push(RecoveryJob {
                    app: protection.app,
                    priority: app.priority(),
                    lead_time: self.policy.compute_procurement,
                    devices: Vec::new(),
                    transfer: TimeSpan::ZERO,
                    tail: self.policy.reconfig_time,
                });
                continue;
            }

            job_meta.insert(
                protection.app,
                (RecoveryPath::Restore(copy), self.staleness(protection, copy), None),
            );
            jobs.push(RecoveryJob {
                app: protection.app,
                priority: app.priority(),
                lead_time,
                devices,
                transfer,
                tail: self.policy.reconfig_time,
            });
        }

        let schedule = schedule_jobs_with(jobs, self.policy.scheduling);
        let mut outcomes = failover_outcomes;
        for (app, (path, loss_time, failback_time)) in job_meta {
            let recovery_time = schedule.recovery_time(app).expect("every job was scheduled");
            outcomes.push(AppOutcome { app, path, recovery_time, loss_time, failback_time });
        }
        outcomes.sort_by_key(|o| o.app);
        dsd_obs::add("recovery.scenarios_evaluated", 1);
        if dsd_obs::enabled() {
            let scope_kind = match scope {
                FailureScope::DataObject { .. } => "data-object",
                FailureScope::DiskArray { .. } => "disk-array",
                FailureScope::SiteDisaster { .. } => "site-disaster",
            };
            let worst_hours =
                outcomes.iter().map(|o| o.recovery_time.as_hours()).fold(0.0f64, f64::max);
            dsd_obs::instant_with(
                "recovery.scenario",
                "recovery",
                vec![
                    ("scope", scope_kind.into()),
                    ("affected", outcomes.len().into()),
                    ("worst_recovery_hours", worst_hours.into()),
                ],
            );
        }
        ScenarioOutcome { scope: *scope, outcomes }
    }

    /// Expected annual downtime and availability per application: the
    /// likelihood-weighted sum of recovery times over all scenarios,
    /// against the 8760-hour year.
    #[must_use]
    pub fn availability(
        &self,
        protections: &[AppProtection],
        scenarios: &[FailureScenario],
    ) -> Vec<Availability> {
        let mut downtime: BTreeMap<AppId, f64> = BTreeMap::new();
        for p in protections {
            downtime.insert(p.app, 0.0);
        }
        for scenario in scenarios {
            let outcome = self.evaluate_scenario(protections, &scenario.scope);
            for o in &outcome.outcomes {
                *downtime.entry(o.app).or_insert(0.0) +=
                    scenario.likelihood.as_f64() * o.recovery_time.as_hours();
            }
        }
        downtime
            .into_iter()
            .map(|(app, hours)| Availability {
                app,
                expected_annual_downtime: TimeSpan::from_hours(hours.min(f64::MAX / 2.0)),
                availability: (1.0 - hours / dsd_units::HOURS_PER_YEAR).clamp(0.0, 1.0),
            })
            .collect()
    }

    /// Expected annual penalties over all `scenarios`, plus the detailed
    /// per-scenario outcomes (paper §2.5: each scenario's outage and loss
    /// penalties weighted by its annual likelihood and summed).
    #[must_use]
    pub fn annual_penalties(
        &self,
        protections: &[AppProtection],
        scenarios: &[FailureScenario],
    ) -> (PenaltySummary, Vec<ScenarioOutcome>) {
        let mut penalties_span = dsd_obs::span("recovery.annual_penalties", "recovery");
        penalties_span.arg("scenarios", scenarios.len());
        let mut summary = PenaltySummary::default();
        let mut details = Vec::with_capacity(scenarios.len());
        for scenario in scenarios {
            let outcome = self.evaluate_scenario(protections, &scenario.scope);
            accumulate(self.workloads, &mut summary, scenario, &outcome);
            details.push(outcome);
        }
        (summary, details)
    }

    /// [`Self::annual_penalties`] with full cost attribution: alongside
    /// the totals, records one [`PenaltyItem`] per
    /// (scenario × affected application), in accumulation order. The
    /// items' weighted fields are the exact values folded into the
    /// summary, so [`PenaltyItem::fold_totals`] over the returned items
    /// is bit-identical to the summary's `outage` / `loss` — and, by the
    /// delta-evaluation oracle invariant, to any cached or incremental
    /// evaluation of the same design.
    #[must_use]
    pub fn annual_penalties_attributed(
        &self,
        protections: &[AppProtection],
        scenarios: &[FailureScenario],
    ) -> (PenaltySummary, Vec<PenaltyItem>) {
        let mut penalties_span = dsd_obs::span("recovery.annual_penalties", "recovery");
        penalties_span.arg("scenarios", scenarios.len());
        let mut summary = PenaltySummary::default();
        let mut items = Vec::new();
        for scenario in scenarios {
            let outcome = self.evaluate_scenario(protections, &scenario.scope);
            accumulate_items(self.workloads, &mut summary, scenario, &outcome, Some(&mut items));
        }
        (summary, items)
    }

    /// [`Self::annual_penalties`] with scope-keyed scenario memoization:
    /// a scenario whose dependency-slice digest matches a cached entry
    /// replays the stored outcome instead of re-scheduling it. The
    /// likelihood-weighted accumulation runs through the same code as
    /// the uncached path, so the totals are bit-identical whenever every
    /// replayed outcome is (the digest's contract).
    ///
    /// `digests[i]` must be the dependency-slice digest of
    /// `scenarios[i]` for the provision this evaluator was built over —
    /// the caller computes them (it knows the candidate's assignment
    /// shape; see `dsd-core`'s `scenario_digests`). The cache must only
    /// ever be used with one environment (workloads, failure model,
    /// recovery policy): digests do not cover those inputs.
    ///
    /// # Panics
    ///
    /// If `digests.len() != scenarios.len()`.
    #[must_use]
    pub fn annual_penalties_cached(
        &self,
        protections: &[AppProtection],
        scenarios: &[FailureScenario],
        digests: &[ScenarioDigest],
        cache: &mut ScenarioOutcomeCache,
    ) -> (PenaltySummary, Vec<ScenarioOutcome>) {
        assert_eq!(scenarios.len(), digests.len(), "one dependency-slice digest per scenario");
        let mut penalties_span = dsd_obs::span("recovery.annual_penalties", "recovery");
        penalties_span.arg("scenarios", scenarios.len());
        let mut summary = PenaltySummary::default();
        let mut details = Vec::with_capacity(scenarios.len());
        for (scenario, &digest) in scenarios.iter().zip(digests) {
            let outcome = cache.get_or_insert_with(&scenario.scope, digest, || {
                self.evaluate_scenario(protections, &scenario.scope)
            });
            accumulate(self.workloads, &mut summary, scenario, outcome);
            details.push(outcome.clone());
        }
        (summary, details)
    }

    /// [`Self::annual_penalties_cached`] without materializing the
    /// per-scenario details: the solver's trial loop only needs the
    /// totals, and skipping the details vector means a cache hit replays
    /// an outcome without a single clone.
    ///
    /// # Panics
    ///
    /// If `digests.len() != scenarios.len()`.
    #[must_use]
    pub fn annual_penalties_cached_totals(
        &self,
        protections: &[AppProtection],
        scenarios: &[FailureScenario],
        digests: &[ScenarioDigest],
        cache: &mut ScenarioOutcomeCache,
    ) -> PenaltySummary {
        assert_eq!(scenarios.len(), digests.len(), "one dependency-slice digest per scenario");
        let mut penalties_span = dsd_obs::span("recovery.annual_penalties", "recovery");
        penalties_span.arg("scenarios", scenarios.len());
        let mut summary = PenaltySummary::default();
        for (scenario, &digest) in scenarios.iter().zip(digests) {
            let outcome = cache.get_or_insert_with(&scenario.scope, digest, || {
                self.evaluate_scenario(protections, &scenario.scope)
            });
            accumulate(self.workloads, &mut summary, scenario, outcome);
        }
        summary
    }
}

/// Folds one scenario's outcome into the running penalty summary. Shared
/// by the cached and uncached paths so both perform literally the same
/// floating-point operations in the same order (bit-identity).
fn accumulate(
    workloads: &WorkloadSet,
    summary: &mut PenaltySummary,
    scenario: &FailureScenario,
    outcome: &ScenarioOutcome,
) {
    accumulate_items(workloads, summary, scenario, outcome, None);
}

/// [`accumulate`], optionally recording one [`PenaltyItem`] per affected
/// application as it folds. The weighted `outage` / `loss` stored in each
/// item are the very values added to the summary, so an in-order fold of
/// the items reproduces the summary bit-for-bit.
fn accumulate_items(
    workloads: &WorkloadSet,
    summary: &mut PenaltySummary,
    scenario: &FailureScenario,
    outcome: &ScenarioOutcome,
    mut items: Option<&mut Vec<PenaltyItem>>,
) {
    for o in &outcome.outcomes {
        let app = &workloads[o.app];
        let model = app.penalty_model();
        let outage_raw = model.outage_penalty(o.recovery_time);
        let loss_raw = model.loss_penalty(o.loss_time);
        let outage = scenario.likelihood * outage_raw;
        let loss = scenario.likelihood * loss_raw;
        summary.outage += outage;
        summary.loss += loss;
        let entry = summary.per_app.entry(o.app).or_insert((Dollars::ZERO, Dollars::ZERO));
        entry.0 += outage;
        entry.1 += loss;
        if let Some(list) = items.as_deref_mut() {
            list.push(PenaltyItem {
                scope: outcome.scope,
                likelihood: scenario.likelihood,
                app: o.app,
                path: o.path,
                recovery_time: o.recovery_time,
                loss_time: o.loss_time,
                outage_raw,
                loss_raw,
                outage,
                loss,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::Placement;
    use dsd_failure::{FailureModel, FailureRates};
    use dsd_protection::{Demands, SizingPolicy, TechniqueCatalog};
    use dsd_resources::{ArrayRef, DeviceSpec, NetworkSpec, Site, SiteId, TapeRef, Topology};
    use dsd_units::PerYear;
    use std::sync::Arc;

    fn topology() -> Arc<Topology> {
        let sites = vec![
            Site::new(0, "P1")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
            Site::new(1, "P2")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
        ];
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high()))
    }

    /// Builds a one-app environment protected by `technique_name`, with
    /// allocations actually made on the provision.
    fn setup(technique_name: &str) -> (WorkloadSet, Provision, AppProtection) {
        let workloads = WorkloadSet::scaled_paper_mix(1); // central banking
        let app = AppId(0);
        let catalog = TechniqueCatalog::table2();
        let technique = catalog[catalog.find(technique_name).unwrap()].clone();
        let config = technique.default_config();
        let primary = ArrayRef { site: SiteId(0), slot: 0 };
        let placement = Placement {
            primary,
            mirror: technique.has_mirror().then_some(ArrayRef { site: SiteId(1), slot: 0 }),
            tape: technique.has_backup().then_some(TapeRef::first(SiteId(0))),
            route: None,
            failover_site: technique.is_failover().then_some(SiteId(1)),
        };

        let mut provision = Provision::new(topology());
        let demands =
            Demands::compute(&workloads[app], &technique, &config, &SizingPolicy::default());
        provision
            .alloc_array(app, primary, demands.primary_capacity, demands.primary_bandwidth)
            .unwrap();
        provision.alloc_compute(app, SiteId(0), 1).unwrap();
        let mut placement = placement;
        if let Some(mirror) = placement.mirror {
            provision
                .alloc_array(app, mirror, demands.mirror_capacity, demands.mirror_bandwidth)
                .unwrap();
            let route = provision
                .alloc_network(app, SiteId(0), SiteId(1), demands.network_bandwidth)
                .unwrap();
            placement.route = Some(route);
        }
        if let Some(tape) = placement.tape {
            provision.alloc_tape(app, tape, demands.tape_capacity, demands.tape_bandwidth).unwrap();
        }
        if placement.failover_site.is_some() {
            provision.alloc_compute(app, SiteId(1), 1).unwrap();
        }
        let protection = AppProtection { app, technique, config, placement };
        (workloads, provision, protection)
    }

    #[test]
    fn failover_recovery_is_fast() {
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DiskArray { array: prot.placement.primary };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        assert_eq!(out.outcomes.len(), 1);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::Failover);
        assert_eq!(o.recovery_time.as_mins(), 15.0);
        assert_eq!(o.loss_time.as_mins(), 0.5, "sync mirror staleness");
    }

    #[test]
    fn failover_reports_background_failback() {
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DiskArray { array: prot.placement.primary };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        let failback = o.failback_time.expect("failover has a failback");
        assert!(failback > o.recovery_time, "failback happens after the app is back up");
        assert!(
            failback >= RecoveryPolicy::default().array_repair,
            "failback waits for hardware repair"
        );
        assert!(failback.is_finite());
    }

    #[test]
    fn in_place_restores_have_no_failback() {
        let (w, p, prot) = setup("tape backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DataObject { app: AppId(0) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        assert_eq!(out.outcomes[0].failback_time, None);
    }

    #[test]
    fn site_disaster_failback_waits_for_site_rebuild() {
        let (w, p, prot) = setup("async mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::SiteDisaster { site: SiteId(0) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::Failover);
        assert!(o.failback_time.unwrap() >= RecoveryPolicy::default().site_rebuild);
        assert!(o.recovery_time < TimeSpan::from_hours(1.0), "outage stays short");
    }

    #[test]
    fn object_failure_restores_snapshot_even_with_mirror() {
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DataObject { app: AppId(0) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::Restore(CopyKind::Snapshot));
        assert_eq!(o.loss_time.as_hours(), 12.0);
        assert!(o.recovery_time.is_finite());
        assert!(
            o.recovery_time > TimeSpan::from_mins(30.0),
            "restore includes data copy-back plus reconfiguration"
        );
    }

    #[test]
    fn site_disaster_with_mirror_promotes_instead_of_waiting_for_rebuild() {
        let (w, p, prot) = setup("sync mirror (R)");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::SiteDisaster { site: SiteId(0) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::PromoteMirror);
        let expected =
            RecoveryPolicy::default().compute_procurement + RecoveryPolicy::default().reconfig_time;
        assert!((o.recovery_time.as_hours() - expected.as_hours()).abs() < 1e-9);
        assert!(o.recovery_time < TimeSpan::from_days(2.0));
    }

    #[test]
    fn reconstruct_mirror_restores_over_network() {
        let (w, p, prot) = setup("sync mirror (R)");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DiskArray { array: prot.placement.primary };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::Restore(CopyKind::Mirror));
        // Repair 12h + transfer over min(bw) + reconfig 30min, with the
        // network as bottleneck: route sized for 50 MB/s peak x2 headroom
        // = 5 links = 100 MB/s total bandwidth.
        let transfer_h = 1300.0 * 1024.0 / 100.0 / 3600.0;
        assert!((o.recovery_time.as_hours() - (12.0 + transfer_h + 0.5)).abs() < 0.2);
    }

    #[test]
    fn site_disaster_on_backup_only_goes_to_vault() {
        let (w, p, prot) = setup("tape backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::SiteDisaster { site: SiteId(0) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::Restore(CopyKind::Vault));
        assert!(o.recovery_time > TimeSpan::from_days(7.0), "site rebuild dominates the lead time");
        assert!(o.loss_time > TimeSpan::from_days(28.0), "vault staleness is weeks");
    }

    #[test]
    fn mirror_only_object_failure_is_unprotected() {
        let (w, p, prot) = setup("sync mirror (F)");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DataObject { app: AppId(0) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        let o = out.outcomes[0];
        assert_eq!(o.path, RecoveryPath::Unprotected);
        assert_eq!(o.recovery_time.as_days(), 28.0);
    }

    #[test]
    fn unaffected_apps_incur_nothing() {
        let (w, p, prot) = setup("tape backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scope = FailureScope::DataObject { app: AppId(42) };
        let out = ev.evaluate_scenario(std::slice::from_ref(&prot), &scope);
        assert!(out.outcomes.is_empty());
    }

    #[test]
    fn annual_penalties_weight_by_likelihood() {
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let model = FailureModel::new(FailureRates::case_study());
        let scenarios = model.enumerate([(AppId(0), prot.placement.primary)]);
        let (summary, details) = ev.annual_penalties(std::slice::from_ref(&prot), &scenarios);
        assert!(summary.is_finite());
        assert!(summary.total().as_f64() > 0.0);
        assert_eq!(details.len(), 3);
        let (o, l) = summary.per_app[&AppId(0)];
        assert!((summary.outage.as_f64() - o.as_f64()).abs() < 1e-6);
        assert!((summary.loss.as_f64() - l.as_f64()).abs() < 1e-6);

        // Doubling every likelihood doubles the penalties.
        let doubled: Vec<FailureScenario> = scenarios
            .iter()
            .map(|s| FailureScenario {
                scope: s.scope,
                likelihood: PerYear::new(s.likelihood.as_f64() * 2.0),
            })
            .collect();
        let (summary2, _) = ev.annual_penalties(std::slice::from_ref(&prot), &doubled);
        assert!((summary2.total().as_f64() - 2.0 * summary.total().as_f64()).abs() < 1e-3);
    }

    #[test]
    fn attributed_penalties_match_the_totals_bit_for_bit() {
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let model = FailureModel::new(FailureRates::case_study());
        let scenarios = model.enumerate([(AppId(0), prot.placement.primary)]);

        let (plain, details) = ev.annual_penalties(std::slice::from_ref(&prot), &scenarios);
        let (attributed, items) =
            ev.annual_penalties_attributed(std::slice::from_ref(&prot), &scenarios);
        assert_eq!(plain, attributed, "attribution must not perturb the totals");

        let outcomes: usize = details.iter().map(|d| d.outcomes.len()).sum();
        assert_eq!(items.len(), outcomes, "one item per (scenario x affected app)");

        let (outage, loss) = PenaltyItem::fold_totals(&items);
        assert_eq!(outage.as_f64().to_bits(), plain.outage.as_f64().to_bits());
        assert_eq!(loss.as_f64().to_bits(), plain.loss.as_f64().to_bits());
        for item in &items {
            let weighted = item.likelihood * item.outage_raw;
            assert_eq!(weighted.as_f64().to_bits(), item.outage.as_f64().to_bits());
            assert!(item.weighted_total().as_f64() >= 0.0);
        }
    }

    #[test]
    fn cached_annual_penalties_replay_bit_identically() {
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let model = FailureModel::new(FailureRates::case_study());
        let scenarios = model.enumerate([(AppId(0), prot.placement.primary)]);
        let digests: Vec<ScenarioDigest> =
            (0..scenarios.len()).map(|i| ScenarioDigest(i as u64, !(i as u64))).collect();

        let (full, full_details) = ev.annual_penalties(std::slice::from_ref(&prot), &scenarios);
        let mut cache = ScenarioOutcomeCache::new();
        let (cold, cold_details) = ev.annual_penalties_cached(
            std::slice::from_ref(&prot),
            &scenarios,
            &digests,
            &mut cache,
        );
        assert_eq!(cache.recomputed(), scenarios.len() as u64);
        assert_eq!(cache.hits(), 0);
        let (warm, warm_details) = ev.annual_penalties_cached(
            std::slice::from_ref(&prot),
            &scenarios,
            &digests,
            &mut cache,
        );
        assert_eq!(cache.hits(), scenarios.len() as u64, "second pass is all hits");

        for (a, b) in [(&full, &cold), (&full, &warm)] {
            assert_eq!(a.outage.as_f64().to_bits(), b.outage.as_f64().to_bits());
            assert_eq!(a.loss.as_f64().to_bits(), b.loss.as_f64().to_bits());
            assert_eq!(a.per_app.len(), b.per_app.len());
            for ((ka, va), (kb, vb)) in a.per_app.iter().zip(b.per_app.iter()) {
                assert_eq!(ka, kb);
                assert_eq!(va.0.as_f64().to_bits(), vb.0.as_f64().to_bits());
                assert_eq!(va.1.as_f64().to_bits(), vb.1.as_f64().to_bits());
            }
        }
        assert_eq!(full_details, cold_details, "details order and content match");
        assert_eq!(full_details, warm_details);
    }

    #[test]
    fn availability_reflects_recovery_speed() {
        let model = FailureModel::new(FailureRates::case_study());
        // Failover design: minutes of downtime per event.
        let (w, p, prot) = setup("sync mirror (F) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let scenarios = model.enumerate([(AppId(0), prot.placement.primary)]);
        let fast = ev.availability(std::slice::from_ref(&prot), &scenarios)[0];
        // Backup-only design: days of downtime per event.
        let (w2, p2, prot2) = setup("tape backup");
        let ev2 = Evaluator::new(&w2, &p2, RecoveryPolicy::default());
        let scenarios2 = model.enumerate([(AppId(0), prot2.placement.primary)]);
        let slow = ev2.availability(std::slice::from_ref(&prot2), &scenarios2)[0];

        assert!(fast.availability > slow.availability);
        assert!(fast.nines() > 3.0, "failover gives several nines: {}", fast.nines());
        assert!(slow.nines() < 3.0, "tape-only recovery is slow: {}", slow.nines());
        assert!(
            fast.expected_annual_downtime < slow.expected_annual_downtime,
            "{} vs {}",
            fast.expected_annual_downtime,
            slow.expected_annual_downtime
        );
        assert!((0.0..=1.0).contains(&slow.availability));
    }

    #[test]
    fn propagation_delays_reflect_bandwidth() {
        let (w, p, prot) = setup("async mirror (R) with backup");
        let ev = Evaluator::new(&w, &p, RecoveryPolicy::default());
        let delays = ev.propagation_delays(&prot);
        assert!(delays.network.is_finite());
        assert!(delays.network < TimeSpan::from_mins(10.0), "batch drains within a window");
        assert!(delays.tape.is_finite());
        assert!(delays.tape < TimeSpan::from_hours(12.0));
    }

    #[test]
    fn contention_serializes_two_restores_on_shared_tape() {
        // Two backup-only apps sharing the tape library and the MSA array.
        let workloads = WorkloadSet::scaled_paper_mix(2); // B and W
        let catalog = TechniqueCatalog::table2();
        let technique = catalog[catalog.find("tape backup").unwrap()].clone();
        let config = technique.default_config();
        let mut provision = Provision::new(topology());
        let primary = ArrayRef { site: SiteId(0), slot: 0 };
        let tape = TapeRef::first(SiteId(0));
        let mut prots = Vec::new();
        for app in workloads.iter() {
            let demands = Demands::compute(app, &technique, &config, &SizingPolicy::default());
            provision
                .alloc_array(app.id, primary, demands.primary_capacity, demands.primary_bandwidth)
                .unwrap();
            provision
                .alloc_tape(app.id, tape, demands.tape_capacity, demands.tape_bandwidth)
                .unwrap();
            let placement = Placement {
                primary,
                mirror: None,
                tape: Some(tape),
                route: None,
                failover_site: None,
            };
            prots.push(AppProtection {
                app: app.id,
                technique: technique.clone(),
                config,
                placement,
            });
        }
        let ev = Evaluator::new(&workloads, &provision, RecoveryPolicy::default());
        let scope = FailureScope::DiskArray { array: primary };
        let out = ev.evaluate_scenario(&prots, &scope);
        assert_eq!(out.outcomes.len(), 2);
        let b = out.outcomes.iter().find(|o| o.app == AppId(0)).unwrap();
        let w = out.outcomes.iter().find(|o| o.app == AppId(1)).unwrap();
        // B (higher priority: $10M/hr vs $5.005M/hr) restores first; W
        // waits for the shared devices.
        assert!(b.recovery_time < w.recovery_time);
        assert!(
            w.recovery_time > b.recovery_time + TimeSpan::from_hours(1.0),
            "the second restore is serialized behind the first"
        );
    }
}
