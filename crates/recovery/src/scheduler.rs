//! Priority-serialized recovery scheduling.
//!
//! The paper (§3.2.2) assumes: "If multiple recovery operations compete
//! for the same resource, their execution is serialized according to a
//! priority (the sum of each application's penalty rates). Recovery tasks
//! for applications with higher penalty rates get higher priority, thus
//! delaying the execution of lower-priority recovery tasks."
//!
//! [`schedule_jobs`] implements this as deterministic list scheduling:
//! jobs are considered in descending priority order; each job starts at
//! the later of its lead time (hardware repair, vault retrieval) and the
//! time its devices become free, holds its devices exclusively for its
//! transfer duration, and finishes after a fixed tail (application
//! reconfiguration). Jobs touching disjoint device sets run in parallel.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dsd_resources::DeviceRef;
use dsd_units::{DollarsPerHour, TimeSpan};
use dsd_workload::AppId;

/// How contending recovery operations share devices.
///
/// The paper assumes priority serialization (§3.2.2); the alternatives
/// implement the recovery-scheduling directions of the authors' follow-on
/// work (Keeton et al., EuroSys 2006) and are exposed for ablation
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Jobs sharing a device run one at a time, highest priority first
    /// (the paper's assumption).
    #[default]
    PriorityExclusive,
    /// Jobs sharing a device run one at a time, shortest transfer first
    /// (minimizes mean completion time, ignores business priority).
    ShortestFirst,
    /// All jobs on a device run concurrently, each receiving an equal
    /// share of the device; shares are recomputed as jobs finish
    /// (processor-sharing fluid model).
    FairShare,
}

impl SchedulingPolicy {
    /// Stable short name, used in trace events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulingPolicy::PriorityExclusive => "priority-exclusive",
            SchedulingPolicy::ShortestFirst => "shortest-first",
            SchedulingPolicy::FairShare => "fair-share",
        }
    }
}

/// One application's recovery work for a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryJob {
    /// The recovering application.
    pub app: AppId,
    /// Scheduling priority: the sum of the application's penalty rates.
    pub priority: DollarsPerHour,
    /// Time before the job may start (hardware repair, tape retrieval).
    pub lead_time: TimeSpan,
    /// Devices held exclusively while the data transfer runs.
    pub devices: Vec<DeviceRef>,
    /// Data transfer duration (with the devices held exclusively).
    pub transfer: TimeSpan,
    /// Fixed tail after the transfer (application reconfiguration); does
    /// not hold devices.
    pub tail: TimeSpan,
}

/// The computed completion times of a set of recovery jobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Per-application recovery time (from failure instant to application
    /// back online).
    completions: BTreeMap<AppId, TimeSpan>,
}

impl Schedule {
    /// Recovery time of `app`, if it was scheduled.
    #[must_use]
    pub fn recovery_time(&self, app: AppId) -> Option<TimeSpan> {
        self.completions.get(&app).copied()
    }

    /// Iterates over `(app, recovery_time)` pairs in app order.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, TimeSpan)> + '_ {
        self.completions.iter().map(|(&a, &t)| (a, t))
    }

    /// The latest completion, or zero when no jobs ran.
    #[must_use]
    pub fn makespan(&self) -> TimeSpan {
        self.completions.values().copied().fold(TimeSpan::ZERO, TimeSpan::max)
    }
}

/// Schedules `jobs` with the paper's priority serialization on shared
/// devices and returns each application's recovery time.
///
/// Ties in priority are broken by application id so the schedule is
/// deterministic. Equivalent to
/// [`schedule_jobs_with`]`(jobs, SchedulingPolicy::PriorityExclusive)`.
#[must_use]
pub fn schedule_jobs(jobs: Vec<RecoveryJob>) -> Schedule {
    schedule_jobs_with(jobs, SchedulingPolicy::PriorityExclusive)
}

/// Schedules `jobs` under the given device-sharing policy.
#[must_use]
pub fn schedule_jobs_with(jobs: Vec<RecoveryJob>, policy: SchedulingPolicy) -> Schedule {
    let n_jobs = jobs.len();
    let schedule = dispatch(jobs, policy);
    dsd_obs::observe("recovery.schedule_len", n_jobs as f64);
    dsd_obs::observe("recovery.makespan_hours", schedule.makespan().as_hours());
    // Single-job schedules are trivially contention-free; only emit
    // trace events where serialization decisions could actually occur,
    // keeping traces of large runs manageable.
    if n_jobs >= 2 && dsd_obs::enabled() {
        dsd_obs::instant_with(
            "recovery.schedule",
            "recovery",
            vec![
                ("policy", policy.name().into()),
                ("jobs", n_jobs.into()),
                ("makespan_hours", schedule.makespan().as_hours().into()),
            ],
        );
    }
    schedule
}

fn dispatch(jobs: Vec<RecoveryJob>, policy: SchedulingPolicy) -> Schedule {
    match policy {
        SchedulingPolicy::PriorityExclusive => exclusive(jobs, |a, b| {
            b.priority
                .as_f64()
                .partial_cmp(&a.priority.as_f64())
                .expect("penalty rates are finite")
                .then(a.app.cmp(&b.app))
        }),
        SchedulingPolicy::ShortestFirst => exclusive(jobs, |a, b| {
            a.transfer
                .as_secs()
                .partial_cmp(&b.transfer.as_secs())
                .expect("transfers are comparable")
                .then(a.app.cmp(&b.app))
        }),
        SchedulingPolicy::FairShare => fair_share(jobs),
    }
}

/// Deterministic list scheduling with exclusive device holds, in the
/// order induced by `cmp`.
fn exclusive(
    mut jobs: Vec<RecoveryJob>,
    cmp: impl Fn(&RecoveryJob, &RecoveryJob) -> std::cmp::Ordering,
) -> Schedule {
    jobs.sort_by(cmp);
    let mut device_free: BTreeMap<DeviceRef, TimeSpan> = BTreeMap::new();
    let mut schedule = Schedule::default();
    for job in jobs {
        let devices_ready = job
            .devices
            .iter()
            .filter_map(|d| device_free.get(d).copied())
            .fold(TimeSpan::ZERO, TimeSpan::max);
        let start = job.lead_time.max(devices_ready);
        let end = start + job.transfer;
        if end.is_finite() {
            for d in &job.devices {
                let slot = device_free.entry(*d).or_insert(TimeSpan::ZERO);
                *slot = (*slot).max(end);
            }
        } else {
            // A job that never completes would otherwise poison every
            // shared device; it alone is charged the infinite time.
            for d in &job.devices {
                device_free.entry(*d).or_insert(TimeSpan::ZERO);
            }
        }
        schedule.completions.insert(job.app, end + job.tail);
    }
    schedule
}

/// Processor-sharing fluid simulation: every active job on a device gets
/// an equal share; a job's progress rate is set by its most contended
/// device. Event-driven over arrivals (lead times) and completions.
fn fair_share(jobs: Vec<RecoveryJob>) -> Schedule {
    #[derive(Debug)]
    struct Active {
        idx: usize,
        /// Remaining work in exclusive-seconds (f64::INFINITY for jobs
        /// that never complete).
        remaining: f64,
    }

    let mut schedule = Schedule::default();
    let mut pending: Vec<usize> = (0..jobs.len()).collect();
    pending.sort_by(|&a, &b| {
        jobs[a]
            .lead_time
            .as_secs()
            .partial_cmp(&jobs[b].lead_time.as_secs())
            .expect("lead times are comparable")
            .then(jobs[a].app.cmp(&jobs[b].app))
    });
    let mut pending = std::collections::VecDeque::from(pending);
    let mut active: Vec<Active> = Vec::new();
    let mut now = 0.0_f64;

    loop {
        // Progress rate of each active job under equal sharing.
        let mut load: BTreeMap<DeviceRef, usize> = BTreeMap::new();
        for a in &active {
            for d in &jobs[a.idx].devices {
                *load.entry(*d).or_insert(0) += 1;
            }
        }
        let rate = |job: &RecoveryJob| -> f64 {
            job.devices.iter().map(|d| load[d]).max().map_or(1.0, |n| 1.0 / n as f64)
        };

        let next_completion = active
            .iter()
            .filter(|a| a.remaining.is_finite())
            .map(|a| now + a.remaining / rate(&jobs[a.idx]))
            .fold(f64::INFINITY, f64::min);
        let next_arrival =
            pending.front().map_or(f64::INFINITY, |&i| jobs[i].lead_time.as_secs().max(now));

        if !next_completion.is_finite() && !next_arrival.is_finite() {
            // Only never-completing jobs remain active.
            for a in active {
                let job = &jobs[a.idx];
                schedule.completions.insert(job.app, TimeSpan::INFINITE);
            }
            break;
        }

        let t_next = next_completion.min(next_arrival);
        // Advance all active jobs to t_next.
        for a in &mut active {
            if a.remaining.is_finite() {
                a.remaining -= rate(&jobs[a.idx]) * (t_next - now);
            }
        }
        now = t_next;

        if next_completion <= next_arrival {
            // Retire every job that just finished (remaining ~ 0).
            let mut finished = Vec::new();
            active.retain(|a| {
                if a.remaining <= 1e-6 {
                    finished.push(a.idx);
                    false
                } else {
                    true
                }
            });
            for idx in finished {
                let job = &jobs[idx];
                schedule.completions.insert(job.app, TimeSpan::from_secs(now) + job.tail);
            }
        } else {
            // Admit every job whose lead time has arrived.
            while let Some(&i) = pending.front() {
                if jobs[i].lead_time.as_secs() <= now + 1e-9 {
                    pending.pop_front();
                    active.push(Active { idx: i, remaining: jobs[i].transfer.as_secs() });
                } else {
                    break;
                }
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_resources::{ArrayRef, SiteId, TapeRef};

    fn dev_a() -> DeviceRef {
        DeviceRef::Array(ArrayRef { site: SiteId(0), slot: 0 })
    }
    fn dev_b() -> DeviceRef {
        DeviceRef::Tape(TapeRef::first(SiteId(0)))
    }

    fn job(app: usize, priority: f64, devices: Vec<DeviceRef>, transfer_h: f64) -> RecoveryJob {
        RecoveryJob {
            app: AppId(app),
            priority: DollarsPerHour::new(priority),
            lead_time: TimeSpan::ZERO,
            devices,
            transfer: TimeSpan::from_hours(transfer_h),
            tail: TimeSpan::ZERO,
        }
    }

    #[test]
    fn shared_device_serializes_by_priority() {
        let jobs = vec![
            job(0, 10.0, vec![dev_a()], 2.0),  // low priority
            job(1, 100.0, vec![dev_a()], 3.0), // high priority
        ];
        let s = schedule_jobs(jobs);
        assert_eq!(s.recovery_time(AppId(1)).unwrap().as_hours(), 3.0, "high goes first");
        assert_eq!(s.recovery_time(AppId(0)).unwrap().as_hours(), 5.0, "low waits");
    }

    #[test]
    fn disjoint_devices_run_in_parallel() {
        let jobs = vec![job(0, 10.0, vec![dev_a()], 2.0), job(1, 100.0, vec![dev_b()], 3.0)];
        let s = schedule_jobs(jobs);
        assert_eq!(s.recovery_time(AppId(0)).unwrap().as_hours(), 2.0);
        assert_eq!(s.recovery_time(AppId(1)).unwrap().as_hours(), 3.0);
        assert_eq!(s.makespan().as_hours(), 3.0);
    }

    #[test]
    fn lead_time_delays_start_but_not_device_holds() {
        let mut high = job(1, 100.0, vec![dev_a()], 2.0);
        high.lead_time = TimeSpan::from_hours(12.0);
        let low = job(0, 10.0, vec![dev_a()], 1.0);
        let s = schedule_jobs(vec![high, low]);
        // High priority starts at 12h (repair), ends 14h; low then runs
        // 14h..15h (serialized after the higher-priority job).
        assert_eq!(s.recovery_time(AppId(1)).unwrap().as_hours(), 14.0);
        assert_eq!(s.recovery_time(AppId(0)).unwrap().as_hours(), 15.0);
    }

    #[test]
    fn tail_extends_completion_without_holding_devices() {
        let mut first = job(1, 100.0, vec![dev_a()], 2.0);
        first.tail = TimeSpan::from_hours(1.0);
        let second = job(0, 10.0, vec![dev_a()], 1.0);
        let s = schedule_jobs(vec![first, second]);
        assert_eq!(s.recovery_time(AppId(1)).unwrap().as_hours(), 3.0);
        assert_eq!(
            s.recovery_time(AppId(0)).unwrap().as_hours(),
            3.0,
            "device freed at transfer end (2h), so 2h+1h transfer"
        );
    }

    #[test]
    fn priority_ties_broken_by_app_id() {
        let jobs = vec![job(7, 10.0, vec![dev_a()], 1.0), job(3, 10.0, vec![dev_a()], 1.0)];
        let s = schedule_jobs(jobs);
        assert_eq!(s.recovery_time(AppId(3)).unwrap().as_hours(), 1.0);
        assert_eq!(s.recovery_time(AppId(7)).unwrap().as_hours(), 2.0);
    }

    #[test]
    fn infinite_transfer_does_not_poison_other_jobs() {
        let mut stuck = job(1, 100.0, vec![dev_a()], 1.0);
        stuck.transfer = TimeSpan::INFINITE;
        let other = job(0, 10.0, vec![dev_a()], 1.0);
        let s = schedule_jobs(vec![stuck, other]);
        assert!(s.recovery_time(AppId(1)).unwrap().is_infinite());
        assert!(
            s.recovery_time(AppId(0)).unwrap().is_finite(),
            "unrecoverable app must not block others forever"
        );
    }

    #[test]
    fn empty_schedule() {
        let s = schedule_jobs(Vec::new());
        assert_eq!(s.makespan(), TimeSpan::ZERO);
        assert!(s.recovery_time(AppId(0)).is_none());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn shortest_first_ignores_priority() {
        let jobs = vec![
            job(0, 1.0, vec![dev_a()], 1.0),   // short, low priority
            job(1, 100.0, vec![dev_a()], 3.0), // long, high priority
        ];
        let s = schedule_jobs_with(jobs, SchedulingPolicy::ShortestFirst);
        assert_eq!(s.recovery_time(AppId(0)).unwrap().as_hours(), 1.0, "short goes first");
        assert_eq!(s.recovery_time(AppId(1)).unwrap().as_hours(), 4.0);
    }

    #[test]
    fn fair_share_splits_a_device_equally() {
        // Two equal 2h jobs sharing one device: both finish at 4h under
        // processor sharing (each progresses at half speed).
        let jobs = vec![job(0, 10.0, vec![dev_a()], 2.0), job(1, 20.0, vec![dev_a()], 2.0)];
        let s = schedule_jobs_with(jobs, SchedulingPolicy::FairShare);
        assert!((s.recovery_time(AppId(0)).unwrap().as_hours() - 4.0).abs() < 1e-6);
        assert!((s.recovery_time(AppId(1)).unwrap().as_hours() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fair_share_speeds_up_after_a_completion() {
        // A 1h job and a 3h job share a device. Phase 1: both at half
        // speed until the short one finishes at t=2h; the long one then
        // has 2h of work left at full speed -> finishes at 4h.
        let jobs = vec![job(0, 10.0, vec![dev_a()], 1.0), job(1, 20.0, vec![dev_a()], 3.0)];
        let s = schedule_jobs_with(jobs, SchedulingPolicy::FairShare);
        assert!((s.recovery_time(AppId(0)).unwrap().as_hours() - 2.0).abs() < 1e-6);
        assert!((s.recovery_time(AppId(1)).unwrap().as_hours() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fair_share_respects_lead_times_and_disjoint_devices() {
        let mut late = job(1, 1.0, vec![dev_b()], 1.0);
        late.lead_time = TimeSpan::from_hours(5.0);
        let early = job(0, 1.0, vec![dev_a()], 2.0);
        let s = schedule_jobs_with(vec![late, early], SchedulingPolicy::FairShare);
        assert!((s.recovery_time(AppId(0)).unwrap().as_hours() - 2.0).abs() < 1e-6);
        assert!((s.recovery_time(AppId(1)).unwrap().as_hours() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn fair_share_handles_infinite_jobs() {
        let mut stuck = job(1, 1.0, vec![dev_a()], 1.0);
        stuck.transfer = TimeSpan::INFINITE;
        let other = job(0, 1.0, vec![dev_a()], 1.0);
        let s = schedule_jobs_with(vec![stuck, other], SchedulingPolicy::FairShare);
        assert!(s.recovery_time(AppId(1)).unwrap().is_infinite());
        // The finite job shares the device with the stuck one forever:
        // half speed, 1h of work -> 2h.
        assert!((s.recovery_time(AppId(0)).unwrap().as_hours() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fair_share_makespan_never_beats_exclusive_for_identical_shared_jobs() {
        let mk = || (0..4).map(|i| job(i, 1.0, vec![dev_a()], 2.0)).collect::<Vec<_>>();
        let excl = schedule_jobs_with(mk(), SchedulingPolicy::PriorityExclusive);
        let fair = schedule_jobs_with(mk(), SchedulingPolicy::FairShare);
        // Total device work is identical, so the makespans agree...
        assert!((excl.makespan().as_hours() - fair.makespan().as_hours()).abs() < 1e-6);
        // ...but fair sharing finishes everything at the makespan while
        // exclusive staggers completions.
        let first_excl = excl.iter().map(|(_, t)| t).fold(TimeSpan::INFINITE, TimeSpan::min);
        let first_fair = fair.iter().map(|(_, t)| t).fold(TimeSpan::INFINITE, TimeSpan::min);
        assert!(first_excl < first_fair);
    }

    #[test]
    fn policy_default_is_the_papers() {
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::PriorityExclusive);
    }
}
