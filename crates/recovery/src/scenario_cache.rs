//! Scope-keyed memoization of per-scenario evaluation outcomes.
//!
//! A [`crate::ScenarioOutcome`] depends only on the *dependency slice* of
//! its scenario: the protections of the applications the failure scope
//! affects, and the allocation state of the devices those applications
//! touch. Successive candidate evaluations in the solver's inner loop
//! usually change one application's assignment, leaving most scenarios'
//! slices untouched — their outcomes can be replayed from a cache instead
//! of re-scheduled and re-priced.
//!
//! The cache is keyed by [`FailureScope`] with a small move-to-front MRU
//! set of ([`ScenarioDigest`], outcome) entries per scope, so the
//! apply/undo alternation of trial moves (two digests per scope) does not
//! thrash. Digest computation is the caller's job (`dsd-core` knows the
//! candidate's assignment/provision shape); this module only stores and
//! replays outcomes.
//!
//! The cache must not outlive the environment it was filled under: a
//! digest covers assignments and device allocations, not workloads,
//! failure rates, or the recovery policy.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use dsd_failure::FailureScope;

use crate::evaluate::ScenarioOutcome;

/// Minimal multiply-xor hasher for the scope-keyed map. Cache lookups
/// run once per scenario per candidate evaluation — the solver's hottest
/// path — and [`FailureScope`] keys are tiny, trusted values, so
/// SipHash's DoS resistance buys nothing here.
#[derive(Debug, Default)]
pub struct ScopeHasher(u64);

impl Hasher for ScopeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517C_C1B7_2722_0A95);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Digest of a scenario's dependency slice (two independent 64-bit
/// hashes, tagged differently, to make silent collisions negligible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioDigest(pub u64, pub u64);

/// Associativity of the per-scope MRU set: enough to hold the
/// incumbent's outcome plus a few trial variants without eviction.
pub const SCENARIO_CACHE_WAYS: usize = 4;

/// Per-candidate memo of scenario outcomes, keyed by failure scope with
/// a [`SCENARIO_CACHE_WAYS`]-way move-to-front MRU set per scope.
#[derive(Debug, Default)]
pub struct ScenarioOutcomeCache {
    entries: HashMap<
        FailureScope,
        Vec<(ScenarioDigest, ScenarioOutcome)>,
        BuildHasherDefault<ScopeHasher>,
    >,
    hits: u64,
    recomputed: u64,
}

impl ScenarioOutcomeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the outcome for `scope` under `digest`, promoting a hit
    /// to the front of the scope's MRU set.
    pub fn get(&mut self, scope: &FailureScope, digest: ScenarioDigest) -> Option<ScenarioOutcome> {
        let ways = self.entries.get_mut(scope)?;
        let pos = ways.iter().position(|(d, _)| *d == digest)?;
        ways[..=pos].rotate_right(1);
        self.hits += 1;
        dsd_obs::add("eval.delta_hits", 1);
        Some(ways[0].1.clone())
    }

    /// Looks up the outcome for `scope` under `digest`, computing and
    /// storing it via `fresh` on a miss. Returns a reference into the
    /// cache — the hot path (the solver's trial loop) replays an outcome
    /// without cloning it.
    pub fn get_or_insert_with(
        &mut self,
        scope: &FailureScope,
        digest: ScenarioDigest,
        fresh: impl FnOnce() -> ScenarioOutcome,
    ) -> &ScenarioOutcome {
        let ways = self.entries.entry(*scope).or_default();
        if let Some(pos) = ways.iter().position(|(d, _)| *d == digest) {
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            dsd_obs::add("eval.delta_hits", 1);
        } else {
            ways.insert(0, (digest, fresh()));
            ways.truncate(SCENARIO_CACHE_WAYS);
            self.recomputed += 1;
            dsd_obs::add("eval.scenarios_recomputed", 1);
        }
        &ways[0].1
    }

    /// Records a freshly computed outcome at the front of the scope's
    /// MRU set, evicting the least recently used entry beyond
    /// [`SCENARIO_CACHE_WAYS`].
    pub fn put(&mut self, scope: FailureScope, digest: ScenarioDigest, outcome: ScenarioOutcome) {
        let ways = self.entries.entry(scope).or_default();
        ways.insert(0, (digest, outcome));
        ways.truncate(SCENARIO_CACHE_WAYS);
        self.recomputed += 1;
        dsd_obs::add("eval.scenarios_recomputed", 1);
    }

    /// Number of cache hits served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of scenario outcomes computed fresh and stored.
    #[must_use]
    pub fn recomputed(&self) -> u64 {
        self.recomputed
    }

    /// Number of distinct scopes with at least one cached outcome.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached outcomes (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_workload::AppId;

    fn outcome(scope: FailureScope) -> ScenarioOutcome {
        ScenarioOutcome { scope, outcomes: Vec::new() }
    }

    #[test]
    fn get_miss_then_put_then_hit() {
        let scope = FailureScope::DataObject { app: AppId(0) };
        let mut cache = ScenarioOutcomeCache::new();
        let digest = ScenarioDigest(1, 2);
        assert!(cache.get(&scope, digest).is_none());
        cache.put(scope, digest, outcome(scope));
        let hit = cache.get(&scope, digest).expect("stored outcome is found");
        assert_eq!(hit.scope, scope);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.recomputed(), 1);
    }

    #[test]
    fn distinct_digests_coexist_up_to_associativity() {
        let scope = FailureScope::DataObject { app: AppId(7) };
        let mut cache = ScenarioOutcomeCache::new();
        for i in 0..SCENARIO_CACHE_WAYS as u64 {
            cache.put(scope, ScenarioDigest(i, i), outcome(scope));
        }
        for i in 0..SCENARIO_CACHE_WAYS as u64 {
            assert!(cache.get(&scope, ScenarioDigest(i, i)).is_some(), "way {i} retained");
        }
        // One more evicts the least recently used (digest 0 was touched
        // first in the probe loop above, so the LRU is digest 1... after
        // the probes the MRU order is 3,2,1,0 reversed: probes promoted
        // 0,1,2,3 in turn, leaving 3 most recent and 0 least).
        cache.put(scope, ScenarioDigest(99, 99), outcome(scope));
        assert!(cache.get(&scope, ScenarioDigest(0, 0)).is_none(), "LRU way evicted");
        assert!(cache.get(&scope, ScenarioDigest(99, 99)).is_some());
    }

    #[test]
    fn scopes_are_independent() {
        let a = FailureScope::DataObject { app: AppId(0) };
        let b = FailureScope::DataObject { app: AppId(1) };
        let mut cache = ScenarioOutcomeCache::new();
        cache.put(a, ScenarioDigest(5, 5), outcome(a));
        assert!(cache.get(&b, ScenarioDigest(5, 5)).is_none());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&a, ScenarioDigest(5, 5)).is_none());
    }
}
