//! Which copies survive which failure scopes.

use dsd_failure::FailureScope;
use dsd_protection::CopyKind;

use crate::protection::AppProtection;

/// The copies of `protection.app` that are still consistent and accessible
/// after `scope` (paper §3.2.1: "from these consistent secondary copies
/// that are still accessible after the failure scenario, the solver
/// chooses the copy that provides the minimum recent data loss").
///
/// Rules (see DESIGN.md §3):
///
/// * A **mirror** survives hardware failures that spare the mirror array,
///   but never a data-object failure of its own application — corruption
///   propagates through the mirror.
/// * A **snapshot** lives on the primary array: it survives data-object
///   failures (point-in-time isolation) but dies with the primary array.
/// * A **tape backup** lives in its tape library and dies only when that
///   library's site does.
/// * A **vault** copy is offsite and always survives the modeled scopes.
///
/// Returned in increasing staleness order (mirror, snapshot, backup,
/// vault).
#[must_use]
pub fn surviving_copies(protection: &AppProtection, scope: &FailureScope) -> Vec<CopyKind> {
    let placement = &protection.placement;
    let technique = &protection.technique;
    let mut out = Vec::with_capacity(4);

    if let Some(mirror) = placement.mirror {
        if technique.has_mirror()
            && !scope.fails_array(mirror)
            && !scope.corrupts_data_of(protection.app)
        {
            out.push(CopyKind::Mirror);
        }
    }
    if technique.has_backup() && !scope.fails_array(placement.primary) {
        out.push(CopyKind::Snapshot);
    }
    if let Some(tape) = placement.tape {
        if technique.has_backup() && !scope.fails_tape(tape) {
            out.push(CopyKind::Backup);
        }
    }
    if technique.has_vault() {
        out.push(CopyKind::Vault);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::Placement;
    use dsd_protection::TechniqueCatalog;
    use dsd_resources::{ArrayRef, RouteId, SiteId, TapeRef};
    use dsd_workload::AppId;

    const P: ArrayRef = ArrayRef { site: SiteId(0), slot: 0 };
    const M: ArrayRef = ArrayRef { site: SiteId(1), slot: 0 };

    fn protected(name: &str) -> AppProtection {
        let c = TechniqueCatalog::table2();
        let technique = c[c.find(name).unwrap()].clone();
        let placement = Placement {
            primary: P,
            mirror: technique.has_mirror().then_some(M),
            tape: technique.has_backup().then_some(TapeRef::first(SiteId(0))),
            route: technique.has_mirror().then_some(RouteId(0)),
            failover_site: technique.is_failover().then_some(SiteId(1)),
        };
        let config = technique.default_config();
        AppProtection { app: AppId(0), technique, config, placement }
    }

    #[test]
    fn data_object_failure_kills_mirror_keeps_pit_copies() {
        let p = protected("sync mirror (F) with backup");
        let scope = FailureScope::DataObject { app: AppId(0) };
        assert_eq!(
            surviving_copies(&p, &scope),
            vec![CopyKind::Snapshot, CopyKind::Backup, CopyKind::Vault]
        );
    }

    #[test]
    fn other_apps_object_failure_does_not_corrupt_this_mirror() {
        let p = protected("sync mirror (F) with backup");
        let scope = FailureScope::DataObject { app: AppId(5) };
        assert!(surviving_copies(&p, &scope).contains(&CopyKind::Mirror));
    }

    #[test]
    fn primary_array_failure_kills_snapshot_keeps_mirror_and_tape() {
        let p = protected("async mirror (R) with backup");
        let scope = FailureScope::DiskArray { array: P };
        assert_eq!(
            surviving_copies(&p, &scope),
            vec![CopyKind::Mirror, CopyKind::Backup, CopyKind::Vault]
        );
    }

    #[test]
    fn mirror_array_failure_spares_everything_else() {
        let p = protected("async mirror (R) with backup");
        let scope = FailureScope::DiskArray { array: M };
        assert_eq!(
            surviving_copies(&p, &scope),
            vec![CopyKind::Snapshot, CopyKind::Backup, CopyKind::Vault]
        );
    }

    #[test]
    fn primary_site_disaster_leaves_mirror_and_vault() {
        let p = protected("sync mirror (R) with backup");
        let scope = FailureScope::SiteDisaster { site: SiteId(0) };
        assert_eq!(surviving_copies(&p, &scope), vec![CopyKind::Mirror, CopyKind::Vault]);
    }

    #[test]
    fn mirror_only_design_has_nothing_after_object_failure() {
        let p = protected("sync mirror (F)");
        let scope = FailureScope::DataObject { app: AppId(0) };
        assert!(surviving_copies(&p, &scope).is_empty());
    }

    #[test]
    fn backup_only_design_survives_site_disaster_via_vault() {
        let p = protected("tape backup");
        let scope = FailureScope::SiteDisaster { site: SiteId(0) };
        assert_eq!(surviving_copies(&p, &scope), vec![CopyKind::Vault]);
    }
}
