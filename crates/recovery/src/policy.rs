//! Recovery timing constants.

use serde::{Deserialize, Serialize};

use dsd_units::TimeSpan;

use crate::scheduler::SchedulingPolicy;

/// Timing constants of the recovery process. The paper does not publish
/// hardware repair lead times; the defaults are the documented
/// substitutions from DESIGN.md §3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Lead time to repair/replace a failed disk array before data can be
    /// restored onto it.
    pub array_repair: TimeSpan,
    /// Lead time to rebuild a destroyed site (facility + replacement
    /// hardware) before restoring in place.
    pub site_rebuild: TimeSpan,
    /// Time to redirect computation to the mirror site on failover
    /// (application restart, network re-pointing).
    pub failover_time: TimeSpan,
    /// Application reconfiguration/restart time after a data restore.
    pub reconfig_time: TimeSpan,
    /// Time to retrieve vaulted tapes from the offsite location.
    pub vault_retrieval: TimeSpan,
    /// Time to procure and stand up replacement compute at a surviving
    /// mirror site when recovery *promotes* the mirror instead of
    /// restoring data in place (reconstruct-category techniques after a
    /// disaster; the paper §3.2.1 allows restoring "at the primary site
    /// or a secondary site"). Much longer than a planned failover, much
    /// shorter than rebuilding a destroyed site.
    pub compute_procurement: TimeSpan,
    /// Outage charged when *no* copy survives (e.g. a mirror-only design
    /// hit by a data object failure): the data must be recreated by hand.
    pub unprotected_recovery: TimeSpan,
    /// Recent-loss time charged in the same unprotected case.
    pub unprotected_loss: TimeSpan,
    /// How contending recovery operations share devices.
    pub scheduling: SchedulingPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            array_repair: TimeSpan::from_hours(12.0),
            site_rebuild: TimeSpan::from_days(7.0),
            failover_time: TimeSpan::from_mins(15.0),
            reconfig_time: TimeSpan::from_mins(30.0),
            vault_retrieval: TimeSpan::from_days(1.0),
            compute_procurement: TimeSpan::from_hours(24.0),
            unprotected_recovery: TimeSpan::from_days(28.0),
            unprotected_loss: TimeSpan::from_days(28.0),
            scheduling: SchedulingPolicy::PriorityExclusive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let p = RecoveryPolicy::default();
        assert!(p.failover_time < p.reconfig_time);
        assert!(p.array_repair < p.site_rebuild);
        assert!(p.site_rebuild < p.unprotected_recovery);
        assert!(p.vault_retrieval > p.array_repair);
        assert!(p.failover_time < p.compute_procurement);
        assert!(p.compute_procurement < p.site_rebuild);
    }
}
