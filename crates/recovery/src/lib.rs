#![warn(missing_docs)]

//! Recovery evaluation engine for multi-application storage designs.
//!
//! This crate extends the single-application dependability evaluation of
//! Keeton & Merchant (DSN 2004) to shared environments, as the paper's §3.2
//! requires:
//!
//! * **recent data loss time** (§3.2.1) — for each failed application,
//!   the staleness of the surviving copy chosen for recovery (the
//!   accessible copy with minimum staleness);
//! * **recovery time** (§3.2.2) — a deterministic simulation of the
//!   recovery process in which unaffected applications keep running with
//!   their assigned resources, and competing recovery operations on a
//!   shared device are *serialized in priority order* (priority = sum of
//!   the application's penalty rates);
//! * **penalties** — expected annual outage and recent-loss penalties,
//!   likelihood-weighted over all failure scenarios (§2.5).
//!
//! The main entry point is [`Evaluator`]. Inputs are the per-application
//! [`AppProtection`] records (technique + configuration + [`Placement`]),
//! the provisioned infrastructure, and a failure scenario list.
//!
//! # Examples
//!
//! See `Evaluator::annual_penalties` and the integration tests; building
//! a full input requires workloads, a topology and a provision.

mod evaluate;
mod policy;
mod protection;
mod scenario_cache;
mod scheduler;
mod survival;
mod vulnerability;

pub use evaluate::{
    AppOutcome, Availability, Evaluator, PenaltyItem, PenaltySummary, RecoveryPath, ScenarioOutcome,
};
pub use policy::RecoveryPolicy;
pub use protection::{AppProtection, Placement};
pub use scenario_cache::{ScenarioDigest, ScenarioOutcomeCache, SCENARIO_CACHE_WAYS};
pub use scheduler::{schedule_jobs, schedule_jobs_with, RecoveryJob, Schedule, SchedulingPolicy};
pub use survival::surviving_copies;
pub use vulnerability::VulnerabilityWindow;
