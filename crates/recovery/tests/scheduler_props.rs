//! Property tests on the recovery schedulers: conservation and bound
//! invariants that must hold for arbitrary job sets under every policy.

use proptest::prelude::*;

use dsd_recovery::{schedule_jobs_with, RecoveryJob, SchedulingPolicy};
use dsd_resources::{ArrayRef, DeviceRef, SiteId, TapeRef};
use dsd_units::{DollarsPerHour, TimeSpan};
use dsd_workload::AppId;

fn device(ix: u8) -> DeviceRef {
    match ix % 3 {
        0 => DeviceRef::Array(ArrayRef { site: SiteId(usize::from(ix / 3)), slot: 0 }),
        1 => DeviceRef::Array(ArrayRef { site: SiteId(usize::from(ix / 3)), slot: 1 }),
        _ => DeviceRef::Tape(TapeRef::first(SiteId(usize::from(ix / 3)))),
    }
}

#[derive(Debug, Clone)]
struct JobSpec {
    priority: f64,
    lead_h: f64,
    transfer_h: f64,
    tail_h: f64,
    devices: Vec<u8>,
}

fn job_strategy() -> impl Strategy<Value = JobSpec> {
    (0.0..1e7f64, 0.0..48.0f64, 0.01..24.0f64, 0.0..2.0f64, prop::collection::vec(0u8..6, 0..3))
        .prop_map(|(priority, lead_h, transfer_h, tail_h, devices)| JobSpec {
            priority,
            lead_h,
            transfer_h,
            tail_h,
            devices,
        })
}

fn build(specs: &[JobSpec]) -> Vec<RecoveryJob> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut devices: Vec<DeviceRef> = s.devices.iter().map(|&d| device(d)).collect();
            devices.sort();
            devices.dedup();
            RecoveryJob {
                app: AppId(i),
                priority: DollarsPerHour::new(s.priority),
                lead_time: TimeSpan::from_hours(s.lead_h),
                devices,
                transfer: TimeSpan::from_hours(s.transfer_h),
                tail: TimeSpan::from_hours(s.tail_h),
            }
        })
        .collect()
}

const POLICIES: [SchedulingPolicy; 3] = [
    SchedulingPolicy::PriorityExclusive,
    SchedulingPolicy::ShortestFirst,
    SchedulingPolicy::FairShare,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_policy_schedules_every_job_above_its_lower_bound(
        specs in prop::collection::vec(job_strategy(), 1..12)
    ) {
        let jobs = build(&specs);
        for policy in POLICIES {
            let schedule = schedule_jobs_with(jobs.clone(), policy);
            prop_assert_eq!(schedule.iter().count(), jobs.len(), "{:?}", policy);
            for job in &jobs {
                let done = schedule.recovery_time(job.app).expect("scheduled");
                // Nothing can finish before its own lead + transfer + tail,
                // no matter the policy.
                let bound = job.lead_time + job.transfer + job.tail;
                prop_assert!(
                    done.as_secs() >= bound.as_secs() - 1e-3,
                    "{:?}: {} finished at {} before bound {}",
                    policy, job.app, done, bound
                );
                prop_assert!(done.is_finite());
            }
        }
    }

    #[test]
    fn makespan_at_least_total_work_on_the_busiest_device(
        specs in prop::collection::vec(job_strategy(), 1..12)
    ) {
        let jobs = build(&specs);
        // Per-device conservation: a device processes at most one
        // exclusive-job-second per second, so the makespan (ignoring
        // tails) is at least the total transfer demand on any device.
        let mut per_device: std::collections::BTreeMap<DeviceRef, f64> = Default::default();
        for job in &jobs {
            for d in &job.devices {
                *per_device.entry(*d).or_insert(0.0) += job.transfer.as_secs();
            }
        }
        let busiest = per_device.values().copied().fold(0.0f64, f64::max);
        for policy in POLICIES {
            let schedule = schedule_jobs_with(jobs.clone(), policy);
            let last_transfer_end = jobs
                .iter()
                .map(|j| schedule.recovery_time(j.app).unwrap().as_secs() - j.tail.as_secs())
                .fold(0.0f64, f64::max);
            prop_assert!(
                last_transfer_end >= busiest - 1e-3,
                "{:?}: transfers end at {last_transfer_end} but busiest device needs {busiest}",
                policy
            );
        }
    }

    #[test]
    fn fair_share_never_beats_running_alone(
        specs in prop::collection::vec(job_strategy(), 1..10)
    ) {
        let jobs = build(&specs);
        let fair = schedule_jobs_with(jobs.clone(), SchedulingPolicy::FairShare);
        for job in &jobs {
            // Alone, the job would finish at lead + transfer + tail; with
            // sharing it can only be later or equal.
            let alone = job.lead_time + job.transfer + job.tail;
            let shared = fair.recovery_time(job.app).unwrap();
            prop_assert!(shared.as_secs() >= alone.as_secs() - 1e-3);
        }
    }

    #[test]
    fn deviceless_jobs_are_immune_to_contention(
        specs in prop::collection::vec(job_strategy(), 1..10),
        lead_h in 0.0..10.0f64,
        transfer_h in 0.01..5.0f64,
    ) {
        let mut jobs = build(&specs);
        let marker = AppId(999);
        jobs.push(RecoveryJob {
            app: marker,
            priority: DollarsPerHour::ZERO, // worst priority
            lead_time: TimeSpan::from_hours(lead_h),
            devices: Vec::new(),
            transfer: TimeSpan::from_hours(transfer_h),
            tail: TimeSpan::ZERO,
        });
        let expected = lead_h + transfer_h;
        for policy in POLICIES {
            let schedule = schedule_jobs_with(jobs.clone(), policy);
            let done = schedule.recovery_time(marker).unwrap().as_hours();
            prop_assert!(
                (done - expected).abs() < 1e-6,
                "{:?}: deviceless job finished at {done}, expected {expected}",
                policy
            );
        }
    }

    #[test]
    fn exclusive_policies_serialize_shared_devices_exactly(
        transfers in prop::collection::vec(0.01..10.0f64, 2..8)
    ) {
        // All jobs share one device, no leads/tails: completions must be
        // the prefix sums of the execution order, whatever that order is.
        let jobs: Vec<RecoveryJob> = transfers
            .iter()
            .enumerate()
            .map(|(i, &t)| RecoveryJob {
                app: AppId(i),
                priority: DollarsPerHour::new(1000.0 * i as f64),
                lead_time: TimeSpan::ZERO,
                devices: vec![device(0)],
                transfer: TimeSpan::from_hours(t),
                tail: TimeSpan::ZERO,
            })
            .collect();
        let total: f64 = transfers.iter().sum();
        for policy in [SchedulingPolicy::PriorityExclusive, SchedulingPolicy::ShortestFirst] {
            let schedule = schedule_jobs_with(jobs.clone(), policy);
            let mut completions: Vec<f64> =
                jobs.iter().map(|j| schedule.recovery_time(j.app).unwrap().as_hours()).collect();
            completions.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // The last completion is the total work; each completion is a
            // distinct prefix sum.
            prop_assert!((completions.last().unwrap() - total).abs() < 1e-6);
            for pair in completions.windows(2) {
                prop_assert!(pair[1] > pair[0] - 1e-9);
            }
        }
    }
}
