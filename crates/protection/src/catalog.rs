//! The Table 2 catalog of data protection alternatives.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use dsd_workload::AppClass;

use crate::technique::{BackupChain, MirrorSpec, RecoveryKind, Technique};

/// Identifier of a technique within a [`TechniqueCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TechniqueId(pub usize);

impl fmt::Display for TechniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpt#{}", self.0)
    }
}

/// An ordered catalog of candidate [`Technique`]s the solvers choose from.
///
/// # Examples
///
/// ```
/// use dsd_protection::TechniqueCatalog;
/// use dsd_workload::AppClass;
///
/// let catalog = TechniqueCatalog::table2();
/// assert_eq!(catalog.len(), 9);
/// // Bronze applications may be protected by any technique:
/// assert_eq!(catalog.eligible_for(AppClass::Bronze).count(), 9);
/// // Gold applications only by gold techniques:
/// assert_eq!(catalog.eligible_for(AppClass::Gold).count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueCatalog {
    techniques: Vec<Technique>,
}

impl TechniqueCatalog {
    /// Builds a catalog from an explicit list.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    #[must_use]
    pub fn new(techniques: Vec<Technique>) -> Self {
        assert!(!techniques.is_empty(), "catalog must contain at least one technique");
        TechniqueCatalog { techniques }
    }

    /// The paper's Table 2: nine data protection alternatives.
    ///
    /// | technique | recovery | category |
    /// |---|---|---|
    /// | sync mirror with backup | failover | gold |
    /// | sync mirror with backup | reconstruct | silver |
    /// | async mirror with backup | failover | gold |
    /// | async mirror with backup | reconstruct | silver |
    /// | sync mirror | failover | gold |
    /// | sync mirror | reconstruct | silver |
    /// | async mirror | failover | gold |
    /// | async mirror | reconstruct | silver |
    /// | tape backup | reconstruct | bronze |
    #[must_use]
    pub fn table2() -> Self {
        use RecoveryKind::{Failover, Reconstruct};
        let sync = MirrorSpec::synchronous;
        let async_ = MirrorSpec::asynchronous;
        let chain = BackupChain::table2;
        let techniques = vec![
            Technique::new(
                "sync mirror (F) with backup",
                AppClass::Gold,
                Failover,
                Some(sync()),
                Some(chain()),
            ),
            Technique::new(
                "sync mirror (R) with backup",
                AppClass::Silver,
                Reconstruct,
                Some(sync()),
                Some(chain()),
            ),
            Technique::new(
                "async mirror (F) with backup",
                AppClass::Gold,
                Failover,
                Some(async_()),
                Some(chain()),
            ),
            Technique::new(
                "async mirror (R) with backup",
                AppClass::Silver,
                Reconstruct,
                Some(async_()),
                Some(chain()),
            ),
            Technique::new("sync mirror (F)", AppClass::Gold, Failover, Some(sync()), None),
            Technique::new("sync mirror (R)", AppClass::Silver, Reconstruct, Some(sync()), None),
            Technique::new("async mirror (F)", AppClass::Gold, Failover, Some(async_()), None),
            Technique::new("async mirror (R)", AppClass::Silver, Reconstruct, Some(async_()), None),
            Technique::new("tape backup", AppClass::Bronze, Reconstruct, None, Some(chain())),
        ];
        TechniqueCatalog::new(techniques)
    }

    /// The Table 2 catalog plus incremental-backup variants of the
    /// backup-bearing techniques (extension; see
    /// [`crate::BackupMode::FullPlusIncrementals`]). Incremental variants
    /// keep each base technique's category and recovery kind.
    #[must_use]
    pub fn extended() -> Self {
        let mut techniques = TechniqueCatalog::table2().techniques;
        let incremental: Vec<Technique> = techniques
            .iter()
            .filter(|t| t.backup.is_some())
            .map(|t| {
                Technique::new(
                    format!("{} [incremental]", t.name),
                    t.category,
                    t.recovery,
                    t.mirror,
                    Some(BackupChain::table2_incremental()),
                )
            })
            .collect();
        techniques.extend(incremental);
        TechniqueCatalog::new(techniques)
    }

    /// Number of techniques in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.techniques.len()
    }

    /// True if the catalog is empty (never true for validated catalogs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.techniques.is_empty()
    }

    /// Iterates over the techniques in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Technique> {
        self.techniques.iter()
    }

    /// All technique ids.
    pub fn ids(&self) -> impl Iterator<Item = TechniqueId> + '_ {
        (0..self.techniques.len()).map(TechniqueId)
    }

    /// Looks up a technique by id.
    #[must_use]
    pub fn get(&self, id: TechniqueId) -> Option<&Technique> {
        self.techniques.get(id.0)
    }

    /// Looks up a technique id by exact name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<TechniqueId> {
        self.techniques.iter().position(|t| t.name == name).map(TechniqueId)
    }

    /// Techniques eligible for an application of class `required`: those of
    /// the same or a better category (paper §3.1.3: "for a given
    /// application class, the algorithm considers only data protection
    /// configurations from the corresponding class or better").
    pub fn eligible_for(
        &self,
        required: AppClass,
    ) -> impl Iterator<Item = (TechniqueId, &Technique)> + '_ {
        self.techniques
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.category.satisfies(required))
            .map(|(i, t)| (TechniqueId(i), t))
    }
}

impl Index<TechniqueId> for TechniqueCatalog {
    type Output = Technique;

    /// # Panics
    ///
    /// Panics if `id` is not a member of this catalog.
    fn index(&self, id: TechniqueId) -> &Technique {
        &self.techniques[id.0]
    }
}

impl<'a> IntoIterator for &'a TechniqueCatalog {
    type Item = &'a Technique;
    type IntoIter = std::slice::Iter<'a, Technique>;
    fn into_iter(self) -> Self::IntoIter {
        self.techniques.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::CopyKind;

    #[test]
    fn extended_catalog_adds_incremental_variants() {
        let c = TechniqueCatalog::extended();
        // Five backup-bearing base techniques gain a variant each.
        assert_eq!(c.len(), 14);
        let inc: Vec<&Technique> = c.iter().filter(|t| t.name.contains("[incremental]")).collect();
        assert_eq!(inc.len(), 5);
        for t in inc {
            assert!(t.backup.expect("has chain").is_incremental());
            let base_name = t.name.replace(" [incremental]", "");
            let base = &c[c.find(&base_name).expect("base exists")];
            assert_eq!(t.category, base.category);
            assert_eq!(t.recovery, base.recovery);
            assert_eq!(t.mirror, base.mirror);
        }
    }

    #[test]
    fn table2_has_nine_rows_with_paper_categories() {
        let c = TechniqueCatalog::table2();
        assert_eq!(c.len(), 9);
        let gold = c.iter().filter(|t| t.category == AppClass::Gold).count();
        let silver = c.iter().filter(|t| t.category == AppClass::Silver).count();
        let bronze = c.iter().filter(|t| t.category == AppClass::Bronze).count();
        assert_eq!((gold, silver, bronze), (4, 4, 1));
    }

    #[test]
    fn all_gold_techniques_are_failover_mirrors() {
        let c = TechniqueCatalog::table2();
        for t in c.iter().filter(|t| t.category == AppClass::Gold) {
            assert_eq!(t.recovery, RecoveryKind::Failover);
            assert!(t.has_mirror());
        }
    }

    #[test]
    fn bronze_technique_is_backup_only() {
        let c = TechniqueCatalog::table2();
        let id = c.find("tape backup").expect("tape backup in catalog");
        let t = &c[id];
        assert!(!t.has_mirror());
        assert!(t.has_backup());
        assert!(t.has_vault());
        assert!(t.has_copy(CopyKind::Vault));
    }

    #[test]
    fn eligibility_is_monotone_in_class() {
        let c = TechniqueCatalog::table2();
        let gold = c.eligible_for(AppClass::Gold).count();
        let silver = c.eligible_for(AppClass::Silver).count();
        let bronze = c.eligible_for(AppClass::Bronze).count();
        assert!(gold <= silver && silver <= bronze);
        assert_eq!((gold, silver, bronze), (4, 8, 9));
    }

    #[test]
    fn find_and_get_agree() {
        let c = TechniqueCatalog::table2();
        let id = c.find("async mirror (F) with backup").unwrap();
        assert_eq!(c.get(id).unwrap().name, "async mirror (F) with backup");
        assert!(c.find("nonexistent").is_none());
        assert!(c.get(TechniqueId(99)).is_none());
    }

    #[test]
    fn ids_cover_catalog() {
        let c = TechniqueCatalog::table2();
        assert_eq!(c.ids().count(), c.len());
        for id in c.ids() {
            assert!(c.get(id).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least one technique")]
    fn empty_catalog_rejected() {
        let _ = TechniqueCatalog::new(Vec::new());
    }
}
