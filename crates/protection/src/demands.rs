//! Resource demands: what a (workload, technique, configuration) triple
//! requires from the infrastructure in normal operation (paper §2.2).

use serde::{Deserialize, Serialize};

use dsd_units::{Gigabytes, MegabytesPerSec, TimeSpan};
use dsd_workload::ApplicationWorkload;

use crate::technique::{Technique, TechniqueConfig};

/// Tunable sizing assumptions used when translating techniques into
/// resource demands. The paper does not publish these constants; defaults
/// are documented substitutions (DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingPolicy {
    /// Window within which a full backup must complete ("the backups will
    /// complete overnight", paper §1). Determines tape drive bandwidth.
    pub backup_window: TimeSpan,
    /// Space-efficient snapshot overhead on the primary array, as a
    /// fraction of the dataset.
    pub snapshot_space_fraction: f64,
    /// Full backup copies retained in the tape library (current +
    /// previous cycle).
    pub retained_tape_copies: f64,
    /// Failover spare-server sharing ratio in `(0, 1]`: the spare pool
    /// at a site holds `ceil(ratio × failover apps targeting it)`.
    /// 1.0 (default) dedicates a spare per application — the paper's
    /// implicit model; lower ratios share spares N+M style, betting that
    /// simultaneous multi-application failovers to one site are rare.
    pub failover_spare_ratio: f64,
    /// Network over-provisioning factor for *synchronous* mirroring.
    /// Every application write blocks on the remote acknowledgment, so
    /// the link must absorb bursts above the sampled peak without
    /// stalling the application; synchronous links are sized at
    /// `peak × sync_peak_headroom` (asynchronous mirrors batch updates
    /// and are sized at the average rate, paper §2.2).
    pub sync_peak_headroom: f64,
}

impl Default for SizingPolicy {
    fn default() -> Self {
        SizingPolicy {
            backup_window: TimeSpan::from_hours(12.0),
            snapshot_space_fraction: 0.2,
            retained_tape_copies: 2.0,
            failover_spare_ratio: 1.0,
            sync_peak_headroom: 2.0,
        }
    }
}

/// The capacity and bandwidth an application + technique demands from each
/// resource type during *normal operation*. The configuration solver uses
/// these to provision devices; the recovery engine reuses the allocations
/// to compute spare bandwidth during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Demands {
    /// Capacity on the primary disk array: the dataset plus snapshot space.
    pub primary_capacity: Gigabytes,
    /// Bandwidth on the primary array: application access plus the backup
    /// stream while a backup is running.
    pub primary_bandwidth: MegabytesPerSec,
    /// Capacity on the mirror array (zero when no mirror).
    pub mirror_capacity: Gigabytes,
    /// Bandwidth on the mirror array: mirror write traffic, and for
    /// failover techniques enough to serve the application after failover.
    pub mirror_bandwidth: MegabytesPerSec,
    /// Inter-site network bandwidth for mirror propagation: peak update
    /// rate for synchronous mirrors, average update rate for asynchronous
    /// (paper §2.2).
    pub network_bandwidth: MegabytesPerSec,
    /// Tape library capacity: retained full copies.
    pub tape_capacity: Gigabytes,
    /// Tape drive bandwidth so a full backup fits in the backup window.
    pub tape_bandwidth: MegabytesPerSec,
    /// Offsite vault media per cycle (cartridge purchase, not library
    /// slots).
    pub vault_media: Gigabytes,
    /// Whether a spare compute server is needed at the mirror site
    /// (failover recovery).
    pub needs_spare_compute: bool,
}

impl Demands {
    /// Computes the demands of protecting `app` with `technique` under
    /// `config` and `policy`.
    #[must_use]
    pub fn compute(
        app: &ApplicationWorkload,
        technique: &Technique,
        config: &TechniqueConfig,
        policy: &SizingPolicy,
    ) -> Self {
        let data = app.capacity();

        let snapshot_space = if technique.has_backup() {
            data * policy.snapshot_space_fraction
        } else {
            Gigabytes::ZERO
        };
        let primary_capacity = data + snapshot_space;

        let backup_stream = if technique.has_backup() {
            backup_stream_rate(data, config, policy)
        } else {
            MegabytesPerSec::ZERO
        };
        let primary_bandwidth = app.avg_access() + backup_stream;

        let (mirror_capacity, mirror_bandwidth, network_bandwidth) = match technique.mirror {
            None => (Gigabytes::ZERO, MegabytesPerSec::ZERO, MegabytesPerSec::ZERO),
            Some(m) => {
                let (array_write, network) = if m.sync {
                    (app.peak_update(), app.peak_update() * policy.sync_peak_headroom)
                } else {
                    (app.avg_update(), app.avg_update())
                };
                let mirror_bw = if technique.is_failover() {
                    // After failover the mirror array serves the full
                    // application access stream.
                    array_write.max(app.avg_access())
                } else {
                    array_write
                };
                (data, mirror_bw, network)
            }
        };

        let (tape_capacity, tape_bandwidth, vault_media) = if let Some(chain) = technique.backup {
            let vault = if technique.has_vault() { data } else { Gigabytes::ZERO };
            let mut capacity = data * policy.retained_tape_copies;
            let mut bandwidth = backup_stream;
            if chain.is_incremental() {
                // Incrementals stream the unique update rate continuously
                // and accumulate one cycle's worth of deltas per retained
                // full copy.
                bandwidth += app.unique_update_rate();
                capacity +=
                    (app.unique_update_rate() * config.backup_cycle) * policy.retained_tape_copies;
            }
            (capacity, bandwidth, vault)
        } else {
            (Gigabytes::ZERO, MegabytesPerSec::ZERO, Gigabytes::ZERO)
        };

        Demands {
            primary_capacity,
            primary_bandwidth,
            mirror_capacity,
            mirror_bandwidth,
            network_bandwidth,
            tape_capacity,
            tape_bandwidth,
            vault_media,
            needs_spare_compute: technique.is_failover(),
        }
    }
}

/// Rate at which a full backup streams from the primary array to tape so it
/// completes within the smaller of the backup window and the backup cycle.
fn backup_stream_rate(
    data: Gigabytes,
    config: &TechniqueConfig,
    policy: &SizingPolicy,
) -> MegabytesPerSec {
    let window = policy.backup_window.min(config.backup_cycle);
    if window.is_zero() {
        return MegabytesPerSec::ZERO;
    }
    MegabytesPerSec::new(data.as_megabytes() / window.as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TechniqueCatalog;
    use dsd_workload::WorkloadSet;
    use proptest::prelude::*;

    fn app() -> ApplicationWorkload {
        WorkloadSet::scaled_paper_mix(1).iter().next().unwrap().clone()
    }

    fn technique(name: &str) -> Technique {
        let c = TechniqueCatalog::table2();
        c[c.find(name).expect("known technique")].clone()
    }

    #[test]
    fn backup_only_demands() {
        let t = technique("tape backup");
        let d = Demands::compute(&app(), &t, &t.default_config(), &SizingPolicy::default());
        assert_eq!(d.mirror_capacity, Gigabytes::ZERO);
        assert_eq!(d.network_bandwidth, MegabytesPerSec::ZERO);
        assert!(!d.needs_spare_compute);
        // 1300 GB * 1.2 snapshot overhead on primary.
        assert!((d.primary_capacity.as_f64() - 1560.0).abs() < 1e-9);
        // Two retained copies on tape.
        assert!((d.tape_capacity.as_f64() - 2600.0).abs() < 1e-9);
        // Vault ships one full copy of media.
        assert!((d.vault_media.as_f64() - 1300.0).abs() < 1e-9);
        // Full backup in 12 h: 1300*1024 MB / 43200 s.
        let expected = 1300.0 * 1024.0 / (12.0 * 3600.0);
        assert!((d.tape_bandwidth.as_f64() - expected).abs() < 1e-6);
        assert!((d.primary_bandwidth.as_f64() - (50.0 + expected)).abs() < 1e-6);
    }

    #[test]
    fn sync_mirror_uses_peak_rate_with_network_headroom() {
        let t = technique("sync mirror (R)");
        let d = Demands::compute(&app(), &t, &t.default_config(), &SizingPolicy::default());
        assert_eq!(
            d.network_bandwidth.as_f64(),
            100.0,
            "peak update rate x2 headroom: writes must not stall"
        );
        assert_eq!(d.mirror_bandwidth.as_f64(), 50.0, "array absorbs the raw peak");
        assert_eq!(d.mirror_capacity.as_f64(), 1300.0);
        assert_eq!(d.tape_capacity, Gigabytes::ZERO);
        assert!(!d.needs_spare_compute);
    }

    #[test]
    fn headroom_of_one_recovers_raw_peak_sizing() {
        let t = technique("sync mirror (R)");
        let policy = SizingPolicy { sync_peak_headroom: 1.0, ..SizingPolicy::default() };
        let d = Demands::compute(&app(), &t, &t.default_config(), &policy);
        assert_eq!(d.network_bandwidth.as_f64(), 50.0);
    }

    #[test]
    fn async_mirror_uses_average_rate() {
        let t = technique("async mirror (R)");
        let d = Demands::compute(&app(), &t, &t.default_config(), &SizingPolicy::default());
        assert_eq!(d.network_bandwidth.as_f64(), 5.0, "average update rate");
        assert_eq!(d.mirror_bandwidth.as_f64(), 5.0);
    }

    #[test]
    fn failover_reserves_access_bandwidth_and_compute() {
        let t = technique("async mirror (F)");
        let d = Demands::compute(&app(), &t, &t.default_config(), &SizingPolicy::default());
        assert!(d.needs_spare_compute);
        assert_eq!(
            d.mirror_bandwidth.as_f64(),
            50.0,
            "mirror array must serve the 50 MB/s access stream after failover"
        );
        assert_eq!(d.network_bandwidth.as_f64(), 5.0, "propagation still at average rate");
    }

    #[test]
    fn longer_backup_cycle_does_not_change_stream_rate_below_window() {
        let t = technique("tape backup");
        let policy = SizingPolicy::default();
        let mut config = t.default_config();
        let d7 = Demands::compute(&app(), &t, &config, &policy);
        config.backup_cycle = dsd_units::TimeSpan::from_days(28.0);
        let d28 = Demands::compute(&app(), &t, &config, &policy);
        assert_eq!(
            d7.tape_bandwidth, d28.tape_bandwidth,
            "stream rate is window-bound, not cycle-bound"
        );
    }

    #[test]
    fn tight_cycle_bounds_stream_rate() {
        let t = technique("tape backup");
        let policy = SizingPolicy {
            backup_window: dsd_units::TimeSpan::from_days(30.0),
            ..SizingPolicy::default()
        };
        let config = t.default_config(); // 7-day cycle < 30-day window
        let d = Demands::compute(&app(), &t, &config, &policy);
        let expected = 1300.0 * 1024.0 / (7.0 * 86_400.0);
        assert!((d.tape_bandwidth.as_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn incremental_mode_adds_tape_bandwidth_and_capacity() {
        let c = TechniqueCatalog::extended();
        let full = c[c.find("tape backup").unwrap()].clone();
        let inc = c[c.find("tape backup [incremental]").unwrap()].clone();
        let policy = SizingPolicy::default();
        let config = full.default_config();
        let df = Demands::compute(&app(), &full, &config, &policy);
        let di = Demands::compute(&app(), &inc, &config, &policy);
        // Unique rate = 5 * 0.6 = 3 MB/s extra drive bandwidth.
        assert!((di.tape_bandwidth.as_f64() - df.tape_bandwidth.as_f64() - 3.0).abs() < 1e-9);
        // One 7-day cycle of deltas per retained copy:
        // 3 MB/s * 7d = 1771.875 GB, x2 copies.
        let extra = 3.0 * 7.0 * 86_400.0 / 1024.0 * 2.0;
        assert!((di.tape_capacity.as_f64() - df.tape_capacity.as_f64() - extra).abs() < 1e-6);
        // Vault media and primary-side demands are unchanged.
        assert_eq!(di.vault_media, df.vault_media);
        assert_eq!(di.primary_bandwidth, df.primary_bandwidth);
    }

    proptest! {
        #[test]
        fn prop_demands_scale_with_capacity(scale in 0.1..10.0f64) {
            use dsd_workload::{WorkloadProfile, GeneratorConfig, WorkloadGenerator};
            let _ = (GeneratorConfig::default(), WorkloadGenerator::default());
            let base = app();
            let mut profile = base.profile.clone();
            profile.capacity = profile.capacity * scale;
            let scaled = ApplicationWorkload { id: base.id, name: base.name.clone(), profile };
            let _ = WorkloadProfile::paper_mix();

            let t = technique("sync mirror (F) with backup");
            let policy = SizingPolicy::default();
            let d0 = Demands::compute(&base, &t, &t.default_config(), &policy);
            let d1 = Demands::compute(&scaled, &t, &t.default_config(), &policy);
            prop_assert!((d1.mirror_capacity.as_f64() - d0.mirror_capacity.as_f64() * scale).abs() < 1e-6);
            prop_assert!((d1.tape_capacity.as_f64() - d0.tape_capacity.as_f64() * scale).abs() < 1e-6);
            // Network bandwidth is rate-driven, not capacity-driven.
            prop_assert!((d1.network_bandwidth.as_f64() - d0.network_bandwidth.as_f64()).abs() < 1e-9);
        }
    }
}
