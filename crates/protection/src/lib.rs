#![warn(missing_docs)]

//! Data protection and recovery technique modeling.
//!
//! Implements the copy-hierarchy framework of Keeton & Merchant (DSN 2004)
//! that the paper builds on (§2.1): the primary copy plus a hierarchy of
//! secondary copies, each level characterized by an *accumulation window*
//! (how often copies are made) and a *propagation window* (how long a copy
//! takes to reach that level).
//!
//! A [`Technique`] combines an optional remote [`MirrorSpec`] (synchronous
//! or asynchronous inter-array mirroring, propagated over the network) with
//! an optional [`BackupChain`] (array-internal snapshots feeding periodic
//! tape backups, optionally shipped to an offsite vault), and prescribes a
//! [`RecoveryKind`] — *failover* to the mirror or *reconstruct* at the
//! primary.
//!
//! [`TechniqueCatalog::table2`] provides the nine alternatives of the
//! paper's Table 2. [`Demands`] translates a (workload, technique,
//! configuration) triple into the capacity and bandwidth the design must
//! provision.
//!
//! # Examples
//!
//! ```
//! use dsd_protection::{TechniqueCatalog, CopyKind, PropagationDelays};
//! use dsd_units::TimeSpan;
//!
//! let catalog = TechniqueCatalog::table2();
//! let gold = catalog
//!     .iter()
//!     .find(|t| t.name == "sync mirror (F) with backup")
//!     .unwrap();
//! assert!(gold.has_mirror());
//! let delays = PropagationDelays { network: TimeSpan::ZERO, tape: TimeSpan::from_hours(2.0) };
//! let loss = gold.staleness(CopyKind::Mirror, &gold.default_config(), &delays);
//! assert_eq!(loss.as_mins(), 0.5);
//! ```

mod catalog;
mod demands;
mod technique;

pub use catalog::{TechniqueCatalog, TechniqueId};
pub use demands::{Demands, SizingPolicy};
pub use technique::{
    BackupChain, BackupMode, CopyKind, MirrorSpec, PropagationDelays, RecoveryKind, Technique,
    TechniqueConfig, INCREMENTAL_RESTORE_AMPLIFICATION,
};
