//! Techniques: mirrors, backup chains, recovery kinds, staleness algebra.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_units::TimeSpan;
use dsd_workload::AppClass;

/// How a failed application is brought back (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryKind {
    /// Fail over to the secondary mirror and resume computation there;
    /// requires spare compute at the mirror site. Fail-back runs in the
    /// background and does not extend the outage.
    Failover,
    /// Restore a secondary copy onto (repaired) primary resources.
    Reconstruct,
}

impl fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryKind::Failover => f.write_str("failover"),
            RecoveryKind::Reconstruct => f.write_str("reconstruct"),
        }
    }
}

/// Remote inter-array mirroring (Table 2, level 1 "M" rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MirrorSpec {
    /// Synchronous (writes acknowledged at both sites) or asynchronous
    /// (updates batched and shipped every `acc_win`).
    pub sync: bool,
    /// Accumulation window: 0.5 min for sync, 10 min for async in Table 2.
    pub acc_win: TimeSpan,
}

impl MirrorSpec {
    /// Table 2 synchronous mirror (0.5 min accumulation window).
    #[must_use]
    pub fn synchronous() -> Self {
        MirrorSpec { sync: true, acc_win: TimeSpan::from_mins(0.5) }
    }

    /// Table 2 asynchronous mirror (10 min accumulation window).
    #[must_use]
    pub fn asynchronous() -> Self {
        MirrorSpec { sync: false, acc_win: TimeSpan::from_mins(10.0) }
    }
}

/// What a backup cycle writes to tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackupMode {
    /// A full copy every backup cycle (the paper's Table 2 scheme).
    #[default]
    FullOnly,
    /// A full copy every backup cycle plus an incremental of the unique
    /// updates at every snapshot interval — an extension of the Table 2
    /// scheme (cf. Chervenak et al.'s backup-technique survey, paper
    /// ref \[5\]). Tape copies are much fresher, at the cost of extra tape
    /// bandwidth/capacity and a slower restore (the full must be
    /// replayed with its incrementals).
    FullPlusIncrementals,
}

impl fmt::Display for BackupMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupMode::FullOnly => f.write_str("full"),
            BackupMode::FullPlusIncrementals => f.write_str("full+incremental"),
        }
    }
}

/// Snapshot → tape backup → offsite vault chain (Table 2 "S"/tape/vault
/// levels). Windows are the *defaults*; the configuration solver explores
/// discrete alternatives via [`Technique::config_space`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackupChain {
    /// Snapshot accumulation window (12 h in Table 2). Snapshots are
    /// array-internal and propagate instantly.
    pub snapshot_interval: TimeSpan,
    /// Tape backup accumulation window (7 days in Table 2); propagation is
    /// the tape transfer time of a full copy.
    pub backup_cycle: TimeSpan,
    /// Vault accumulation window (28 days in Table 2).
    pub vault_cycle: TimeSpan,
    /// Vault propagation window (1 day in Table 2: shipping tapes offsite).
    pub vault_prop: TimeSpan,
    /// Whether the chain includes the offsite vault level.
    pub vault: bool,
    /// Full-only (Table 2) or full-plus-incremental backups.
    pub mode: BackupMode,
}

impl BackupChain {
    /// The Table 2 chain: 12 h snapshots, 7 d full tape backups, 28 d
    /// vault with 1 d shipping.
    #[must_use]
    pub fn table2() -> Self {
        BackupChain {
            snapshot_interval: TimeSpan::from_hours(12.0),
            backup_cycle: TimeSpan::from_days(7.0),
            vault_cycle: TimeSpan::from_days(28.0),
            vault_prop: TimeSpan::from_days(1.0),
            vault: true,
            mode: BackupMode::FullOnly,
        }
    }

    /// The Table 2 chain with incremental backups shipped to tape at
    /// every snapshot interval (extension).
    #[must_use]
    pub fn table2_incremental() -> Self {
        BackupChain { mode: BackupMode::FullPlusIncrementals, ..BackupChain::table2() }
    }

    /// True if the chain ships incrementals.
    #[must_use]
    pub fn is_incremental(&self) -> bool {
        self.mode == BackupMode::FullPlusIncrementals
    }
}

/// Tunable configuration parameters of a technique — the knobs the
/// configuration solver optimizes (paper §3.2: "exhaustive search over a
/// discretized range of values").
#[derive(Debug, Clone, Copy, PartialEq, Hash, Serialize, Deserialize)]
pub struct TechniqueConfig {
    /// Chosen snapshot accumulation window (policy: 12-hour increments).
    pub snapshot_interval: TimeSpan,
    /// Chosen tape backup cycle (policy: multiples of the 7-day base).
    pub backup_cycle: TimeSpan,
}

impl TechniqueConfig {
    /// Returns true if both windows are positive and snapshot ≤ backup.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        !self.snapshot_interval.is_zero()
            && !self.backup_cycle.is_zero()
            && self.snapshot_interval <= self.backup_cycle
    }
}

impl fmt::Display for TechniqueConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap {} / backup {}", self.snapshot_interval, self.backup_cycle)
    }
}

/// The kinds of data copies a technique maintains, in increasing staleness
/// order. Which copies survive which failures is decided by the failure
/// model; which copy is *used* for a recovery is the accessible one with
/// minimum staleness (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyKind {
    /// Remote mirror on a peer disk array.
    Mirror,
    /// Array-internal point-in-time snapshot (same array as the primary).
    Snapshot,
    /// Full backup in a tape library at the primary site.
    Backup,
    /// Offsite vault copy.
    Vault,
}

impl CopyKind {
    /// All copy kinds in increasing-staleness order.
    pub const ALL: [CopyKind; 4] =
        [CopyKind::Mirror, CopyKind::Snapshot, CopyKind::Backup, CopyKind::Vault];
}

impl fmt::Display for CopyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CopyKind::Mirror => "mirror",
            CopyKind::Snapshot => "snapshot",
            CopyKind::Backup => "tape backup",
            CopyKind::Vault => "vault",
        };
        f.write_str(s)
    }
}

/// Propagation delays that depend on provisioned resources rather than on
/// the technique itself (Table 2 marks these "n/w" and "tape"): the time
/// for an update batch to cross the inter-site network and the time for a
/// full backup to stream to tape.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PropagationDelays {
    /// Network propagation of an async mirror batch.
    pub network: TimeSpan,
    /// Tape transfer time of one full backup.
    pub tape: TimeSpan,
}

/// A data protection and recovery technique — one row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technique {
    /// Descriptive name, e.g. `"async mirror (F) with backup"`.
    pub name: String,
    /// Protection category (paper §3.1.3): failover-mirror techniques are
    /// gold, reconstruct-mirror techniques silver, backup-only bronze.
    pub category: AppClass,
    /// How recovery is performed.
    pub recovery: RecoveryKind,
    /// Remote mirroring level, if any.
    pub mirror: Option<MirrorSpec>,
    /// Snapshot/backup/vault chain, if any.
    pub backup: Option<BackupChain>,
}

impl Technique {
    /// Creates a technique, validating that it protects *something* and
    /// that failover recovery has a mirror to fail over to.
    ///
    /// # Panics
    ///
    /// Panics if neither a mirror nor a backup chain is present, or if
    /// `recovery` is [`RecoveryKind::Failover`] without a mirror.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        category: AppClass,
        recovery: RecoveryKind,
        mirror: Option<MirrorSpec>,
        backup: Option<BackupChain>,
    ) -> Self {
        assert!(
            mirror.is_some() || backup.is_some(),
            "a technique must maintain at least one secondary copy"
        );
        assert!(
            !(recovery == RecoveryKind::Failover && mirror.is_none()),
            "failover recovery requires a mirror"
        );
        Technique { name: name.into(), category, recovery, mirror, backup }
    }

    /// True if the technique maintains a remote mirror.
    #[must_use]
    pub fn has_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// True if the mirror, if any, is synchronous.
    #[must_use]
    pub fn has_sync_mirror(&self) -> bool {
        self.mirror.is_some_and(|m| m.sync)
    }

    /// True if the technique maintains a snapshot/backup chain.
    #[must_use]
    pub fn has_backup(&self) -> bool {
        self.backup.is_some()
    }

    /// True if the backup chain ships copies to an offsite vault.
    #[must_use]
    pub fn has_vault(&self) -> bool {
        self.backup.is_some_and(|b| b.vault)
    }

    /// True if recovery is by failover (needs spare compute at the mirror
    /// site).
    #[must_use]
    pub fn is_failover(&self) -> bool {
        self.recovery == RecoveryKind::Failover
    }

    /// The copies this technique maintains, in increasing staleness order.
    #[must_use]
    pub fn copies(&self) -> Vec<CopyKind> {
        let mut out = Vec::with_capacity(4);
        if self.mirror.is_some() {
            out.push(CopyKind::Mirror);
        }
        if let Some(chain) = self.backup {
            out.push(CopyKind::Snapshot);
            out.push(CopyKind::Backup);
            if chain.vault {
                out.push(CopyKind::Vault);
            }
        }
        out
    }

    /// True if this technique maintains the given copy.
    #[must_use]
    pub fn has_copy(&self, copy: CopyKind) -> bool {
        match copy {
            CopyKind::Mirror => self.mirror.is_some(),
            CopyKind::Snapshot | CopyKind::Backup => self.backup.is_some(),
            CopyKind::Vault => self.has_vault(),
        }
    }

    /// The default configuration: the Table 2 windows as printed.
    #[must_use]
    pub fn default_config(&self) -> TechniqueConfig {
        let chain = self.backup.unwrap_or_else(BackupChain::table2);
        TechniqueConfig {
            snapshot_interval: chain.snapshot_interval,
            backup_cycle: chain.backup_cycle,
        }
    }

    /// The discretized configuration space the configuration solver
    /// explores (paper §3.2: e.g. "the period between successive backups
    /// must be in 12-hour increments"). Snapshot intervals of 12/24/48 h
    /// crossed with backup cycles of 7/14/28 d, filtered to valid
    /// combinations; techniques without a backup chain have a single
    /// (default) configuration.
    #[must_use]
    pub fn config_space(&self) -> Vec<TechniqueConfig> {
        if self.backup.is_none() {
            return vec![self.default_config()];
        }
        let mut out = Vec::new();
        for snap_hours in [12.0, 24.0, 48.0] {
            for backup_days in [7.0, 14.0, 28.0] {
                let config = TechniqueConfig {
                    snapshot_interval: TimeSpan::from_hours(snap_hours),
                    backup_cycle: TimeSpan::from_days(backup_days),
                };
                if config.is_valid() {
                    out.push(config);
                }
            }
        }
        out
    }

    /// Worst-case staleness of `copy` under `config`: the recent data loss
    /// if that copy is used for recovery (paper §3.2.1, the sum of
    /// accumulation and propagation windows along the hierarchy path —
    /// Keeton & Merchant's bound).
    ///
    /// Returns [`TimeSpan::INFINITE`] if the technique does not maintain
    /// the copy.
    #[must_use]
    pub fn staleness(
        &self,
        copy: CopyKind,
        config: &TechniqueConfig,
        delays: &PropagationDelays,
    ) -> TimeSpan {
        match copy {
            CopyKind::Mirror => match self.mirror {
                None => TimeSpan::INFINITE,
                Some(m) if m.sync => m.acc_win,
                Some(m) => m.acc_win + delays.network,
            },
            CopyKind::Snapshot => match self.backup {
                None => TimeSpan::INFINITE,
                Some(_) => config.snapshot_interval,
            },
            CopyKind::Backup => match self.backup {
                None => TimeSpan::INFINITE,
                // Incrementals reach tape every snapshot interval, so the
                // tape copy is at most two snapshot windows stale (plus
                // the transfer), instead of a whole backup cycle.
                Some(chain) if chain.is_incremental() => {
                    config.snapshot_interval * 2.0 + delays.tape
                }
                Some(_) => config.snapshot_interval + config.backup_cycle + delays.tape,
            },
            CopyKind::Vault => match self.backup {
                Some(chain) if chain.vault => {
                    config.snapshot_interval
                        + config.backup_cycle
                        + delays.tape
                        + chain.vault_cycle
                        + chain.vault_prop
                }
                _ => TimeSpan::INFINITE,
            },
        }
    }
}

/// Restore slow-down when a full backup must be replayed together with
/// its incrementals.
pub const INCREMENTAL_RESTORE_AMPLIFICATION: f64 = 1.25;

impl Technique {
    /// Multiplier on the restore transfer volume for recovering from the
    /// given copy: 1.0 except for incremental-mode tape backups, which
    /// replay the last full plus its incrementals
    /// ([`INCREMENTAL_RESTORE_AMPLIFICATION`]).
    #[must_use]
    pub fn restore_amplification(&self, copy: CopyKind) -> f64 {
        match (copy, self.backup) {
            (CopyKind::Backup, Some(chain)) if chain.is_incremental() => {
                INCREMENTAL_RESTORE_AMPLIFICATION
            }
            _ => 1.0,
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold_full() -> Technique {
        Technique::new(
            "sync mirror (F) with backup",
            AppClass::Gold,
            RecoveryKind::Failover,
            Some(MirrorSpec::synchronous()),
            Some(BackupChain::table2()),
        )
    }

    fn bronze_backup() -> Technique {
        Technique::new(
            "tape backup",
            AppClass::Bronze,
            RecoveryKind::Reconstruct,
            None,
            Some(BackupChain::table2()),
        )
    }

    #[test]
    fn copies_listed_in_staleness_order() {
        assert_eq!(
            gold_full().copies(),
            vec![CopyKind::Mirror, CopyKind::Snapshot, CopyKind::Backup, CopyKind::Vault]
        );
        assert_eq!(
            bronze_backup().copies(),
            vec![CopyKind::Snapshot, CopyKind::Backup, CopyKind::Vault]
        );
    }

    #[test]
    fn staleness_increases_up_the_hierarchy() {
        let t = gold_full();
        let config = t.default_config();
        let delays = PropagationDelays {
            network: TimeSpan::from_mins(5.0),
            tape: TimeSpan::from_hours(2.0),
        };
        let values: Vec<TimeSpan> =
            t.copies().iter().map(|&c| t.staleness(c, &config, &delays)).collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1], "staleness must be monotone: {pair:?}");
        }
    }

    #[test]
    fn sync_mirror_ignores_network_delay() {
        let t = gold_full();
        let config = t.default_config();
        let slow = PropagationDelays { network: TimeSpan::from_hours(5.0), tape: TimeSpan::ZERO };
        assert_eq!(t.staleness(CopyKind::Mirror, &config, &slow).as_mins(), 0.5);
    }

    #[test]
    fn async_mirror_adds_network_delay() {
        let t = Technique::new(
            "async mirror (R)",
            AppClass::Silver,
            RecoveryKind::Reconstruct,
            Some(MirrorSpec::asynchronous()),
            None,
        );
        let delays = PropagationDelays { network: TimeSpan::from_mins(20.0), tape: TimeSpan::ZERO };
        let loss = t.staleness(CopyKind::Mirror, &t.default_config(), &delays);
        assert_eq!(loss.as_mins(), 30.0);
    }

    #[test]
    fn missing_copies_have_infinite_staleness() {
        let t = bronze_backup();
        let config = t.default_config();
        let delays = PropagationDelays::default();
        assert!(t.staleness(CopyKind::Mirror, &config, &delays).is_infinite());
        let mirror_only = Technique::new(
            "sync mirror (F)",
            AppClass::Gold,
            RecoveryKind::Failover,
            Some(MirrorSpec::synchronous()),
            None,
        );
        assert!(mirror_only
            .staleness(CopyKind::Snapshot, &mirror_only.default_config(), &delays)
            .is_infinite());
        assert!(mirror_only
            .staleness(CopyKind::Vault, &mirror_only.default_config(), &delays)
            .is_infinite());
    }

    #[test]
    fn backup_staleness_matches_table2_defaults() {
        let t = bronze_backup();
        let config = t.default_config();
        let delays = PropagationDelays { network: TimeSpan::ZERO, tape: TimeSpan::from_hours(1.0) };
        let backup = t.staleness(CopyKind::Backup, &config, &delays);
        assert_eq!(backup.as_hours(), 12.0 + 7.0 * 24.0 + 1.0);
        let vault = t.staleness(CopyKind::Vault, &config, &delays);
        assert_eq!(vault.as_hours(), backup.as_hours() + 28.0 * 24.0 + 24.0);
    }

    #[test]
    fn incremental_backup_is_much_fresher_but_slower_to_restore() {
        let full = bronze_backup();
        let inc = Technique::new(
            "incremental tape backup",
            AppClass::Bronze,
            RecoveryKind::Reconstruct,
            None,
            Some(BackupChain::table2_incremental()),
        );
        let config = full.default_config();
        let delays = PropagationDelays { network: TimeSpan::ZERO, tape: TimeSpan::from_hours(1.0) };
        let full_staleness = full.staleness(CopyKind::Backup, &config, &delays);
        let inc_staleness = inc.staleness(CopyKind::Backup, &config, &delays);
        assert_eq!(inc_staleness.as_hours(), 2.0 * 12.0 + 1.0);
        assert!(inc_staleness < full_staleness / 5.0, "days fresher");
        // Vault staleness is mode-independent (fulls are shipped).
        assert_eq!(
            full.staleness(CopyKind::Vault, &config, &delays),
            inc.staleness(CopyKind::Vault, &config, &delays)
        );
        // Restores are amplified only for the incremental tape copy.
        assert_eq!(full.restore_amplification(CopyKind::Backup), 1.0);
        assert_eq!(inc.restore_amplification(CopyKind::Backup), INCREMENTAL_RESTORE_AMPLIFICATION);
        assert_eq!(inc.restore_amplification(CopyKind::Snapshot), 1.0);
        assert_eq!(inc.restore_amplification(CopyKind::Vault), 1.0);
    }

    #[test]
    fn backup_mode_display() {
        assert_eq!(BackupMode::FullOnly.to_string(), "full");
        assert_eq!(BackupMode::FullPlusIncrementals.to_string(), "full+incremental");
        assert!(BackupChain::table2_incremental().is_incremental());
        assert!(!BackupChain::table2().is_incremental());
    }

    #[test]
    fn config_space_is_valid_and_nonempty() {
        let t = gold_full();
        let space = t.config_space();
        assert_eq!(space.len(), 9, "3 snapshot x 3 backup options, all valid");
        assert!(space.iter().all(TechniqueConfig::is_valid));
        let mirror_only = Technique::new(
            "sync mirror (R)",
            AppClass::Silver,
            RecoveryKind::Reconstruct,
            Some(MirrorSpec::synchronous()),
            None,
        );
        assert_eq!(mirror_only.config_space().len(), 1);
    }

    #[test]
    fn invalid_config_detected() {
        let bad = TechniqueConfig {
            snapshot_interval: TimeSpan::from_days(10.0),
            backup_cycle: TimeSpan::from_days(7.0),
        };
        assert!(!bad.is_valid());
    }

    #[test]
    #[should_panic(expected = "at least one secondary copy")]
    fn empty_technique_rejected() {
        let _ = Technique::new("nothing", AppClass::Bronze, RecoveryKind::Reconstruct, None, None);
    }

    #[test]
    #[should_panic(expected = "failover recovery requires a mirror")]
    fn failover_without_mirror_rejected() {
        let _ = Technique::new(
            "bad",
            AppClass::Gold,
            RecoveryKind::Failover,
            None,
            Some(BackupChain::table2()),
        );
    }

    #[test]
    fn has_copy_agrees_with_copies() {
        for t in [gold_full(), bronze_backup()] {
            let listed = t.copies();
            for kind in CopyKind::ALL {
                assert_eq!(listed.contains(&kind), t.has_copy(kind));
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(RecoveryKind::Failover.to_string(), "failover");
        assert_eq!(CopyKind::Vault.to_string(), "vault");
        assert!(gold_full().to_string().contains("gold"));
    }
}
