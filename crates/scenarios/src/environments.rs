//! The paper's evaluation environments (§4.2–§4.5).

use std::sync::Arc;

use dsd_core::Environment;
use dsd_failure::{FailureModel, FailureRates};
use dsd_protection::TechniqueCatalog;
use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd_workload::WorkloadSet;

/// One evaluation site as used throughout §4: one high-end (XP1200) and
/// one low-end (MSA1500) disk array slot, a single high-end tape library,
/// and compute for `compute` applications.
#[must_use]
pub fn paper_site(id: usize, name: impl Into<String>, compute: u32) -> Site {
    Site::new(id, name)
        .with_array_slot(DeviceSpec::xp1200())
        .with_array_slot(DeviceSpec::msa1500())
        .with_tape_library(DeviceSpec::tape_library_high())
        .with_compute(compute)
}

/// The peer-sites case study (§4.3): eight applications (two from each
/// Table 1 class) on two sites P1 and P2, each with up to two disk arrays
/// (one high-end, one low-end), a single tape library, compute for eight
/// applications, and a high-end network of up to 32 links between the
/// sites. Failure likelihoods: data object and disk array once in three
/// years, site disaster once in five years.
#[must_use]
pub fn peer_sites() -> Environment {
    peer_sites_with(8)
}

/// Peer-sites topology with a custom number of applications (cycling
/// through the Table 1 mix).
#[must_use]
pub fn peer_sites_with(apps: usize) -> Environment {
    let sites = vec![paper_site(0, "P1", 8), paper_site(1, "P2", 8)];
    Environment::new(
        WorkloadSet::scaled_paper_mix(apps),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

/// The scalability setting (§4.4): four fully connected sites (six
/// routes), each with two disk array types, one tape library and compute
/// resources; scaled by four applications at a time. Uses the case-study
/// failure rates as in §4.3.
#[must_use]
pub fn four_sites(apps: usize) -> Environment {
    let sites = (0..4).map(|i| paper_site(i, format!("S{}", i + 1), 8)).collect();
    Environment::new(
        WorkloadSet::scaled_paper_mix(apps),
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high())),
        TechniqueCatalog::table2(),
        FailureModel::new(FailureRates::case_study()),
    )
}

/// The sensitivity setting (§4.5): sixteen applications on four fully
/// connected sites, with the §4.5 baseline failure rates (data object
/// twice a year, disk once in five years, site once in twenty years).
/// Individual rates are swept by the Figure 5–7 drivers.
#[must_use]
pub fn sensitivity(rates: FailureRates) -> Environment {
    let mut env = four_sites(16);
    env.failures = FailureModel::new(rates);
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_units::PerYear;

    #[test]
    fn peer_sites_matches_case_study_shape() {
        let env = peer_sites();
        assert_eq!(env.workloads.len(), 8);
        assert_eq!(env.topology.site_count(), 2);
        assert_eq!(env.topology.route_count(), 1);
        let p1 = env.topology.site(dsd_resources::SiteId(0));
        assert_eq!(p1.array_slots.len(), 2);
        assert_eq!(p1.array_slots[0].name, "XP1200");
        assert_eq!(p1.array_slots[1].name, "MSA1500");
        assert_eq!(p1.tape_slots.len(), 1);
        assert_eq!(p1.max_compute, 8);
        assert_eq!(env.topology.route(dsd_resources::RouteId(0)).network.max_links, 32);
        let rates = env.failures.rates();
        assert_eq!(rates.data_object.mean_interval_years(), Some(3.0));
        assert_eq!(rates.site_disaster.mean_interval_years(), Some(5.0));
    }

    #[test]
    fn four_sites_is_fully_connected() {
        let env = four_sites(16);
        assert_eq!(env.topology.site_count(), 4);
        assert_eq!(env.topology.route_count(), 6, "six routes connect all the sites");
        assert_eq!(env.workloads.len(), 16);
    }

    #[test]
    fn sensitivity_overrides_rates() {
        let rates =
            FailureRates::sensitivity_baseline().with_data_object(PerYear::once_every_years(10.0));
        let env = sensitivity(rates);
        assert_eq!(env.workloads.len(), 16);
        assert_eq!(env.failures.rates().data_object.mean_interval_years(), Some(10.0));
    }
}
