#![warn(missing_docs)]

//! Paper environments and experiment drivers.
//!
//! [`environments`] builds the two evaluation settings of the paper's §4:
//! the *peer sites* case study (eight applications on two sites, §4.3)
//! and the *fully connected four-site* scalability setting (§4.4–4.5).
//!
//! [`fleet`] generates seeded fleet-scale instances (hundreds of
//! applications, ring/mesh/hub-spoke site graphs) — the large-instance
//! benchmark substrate for the portfolio solver.
//!
//! [`experiments`] contains one driver per table/figure of the evaluation;
//! each returns structured data and renders a text table comparable to
//! the paper's, so the `dsd-bench` binaries and Criterion benches stay
//! thin.
//!
//! # Examples
//!
//! ```
//! use dsd_scenarios::environments;
//!
//! let env = environments::peer_sites();
//! assert_eq!(env.workloads.len(), 8);
//! assert_eq!(env.topology.site_count(), 2);
//! ```

pub mod environments;
pub mod experiments;
pub mod fleet;
