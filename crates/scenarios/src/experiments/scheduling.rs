//! Recovery-scheduling study (extension).
//!
//! The paper fixes priority serialization for contending recovery
//! operations (§3.2.2) and cites its authors' follow-on work on
//! scheduling recovery for multiple workloads (Keeton et al., EuroSys
//! 2006). This experiment quantifies what the scheduling policy choice
//! does to a *fixed* design: solve the peer-sites case study once, then
//! re-evaluate its worst shared-fate scenario (a site disaster) under
//! each [`SchedulingPolicy`].

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use std::collections::BTreeMap;

use dsd_core::{Budget, DesignSolver, Environment};
use dsd_failure::FailureScope;
use dsd_protection::TechniqueCatalog;
use dsd_recovery::{Evaluator, SchedulingPolicy};
use dsd_resources::ArrayRef;
use dsd_units::{DollarsPerHour, TimeSpan};
use dsd_workload::{AppClass, ClassThresholds};

use crate::environments::peer_sites;

/// Recovery-time statistics for one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// The policy evaluated.
    pub policy: SchedulingPolicy,
    /// Mean recovery time over affected applications.
    pub mean_recovery: TimeSpan,
    /// Worst recovery time.
    pub max_recovery: TimeSpan,
    /// Mean recovery time of intrinsically gold-class applications
    /// (classified by the default Table 1 thresholds, not the study's
    /// relaxed ones).
    pub gold_mean_recovery: TimeSpan,
    /// Expected penalty of the scenario (unweighted by likelihood).
    pub scenario_penalty_dollars: f64,
}

/// The full scheduling study.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulingStudy {
    /// The scenario evaluated.
    pub scope: FailureScope,
    /// One row per policy.
    pub outcomes: Vec<PolicyOutcome>,
}

impl fmt::Display for SchedulingStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Recovery scheduling study — {}", self.scope)?;
        writeln!(
            f,
            "{:<20} {:>14} {:>14} {:>16} {:>14}",
            "policy", "mean recovery", "max recovery", "gold mean", "penalty $M"
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "{:<20} {:>14} {:>14} {:>16} {:>14.2}",
                format!("{:?}", o.policy),
                o.mean_recovery.to_string(),
                o.max_recovery.to_string(),
                o.gold_mean_recovery.to_string(),
                o.scenario_penalty_dollars / 1e6
            )?;
        }
        Ok(())
    }
}

/// The environment of the study: peer sites, but with failover excluded
/// from the catalog (failover recoveries are contention-free, so a
/// scheduling study needs reconstruct-based designs) and class
/// thresholds relaxed so the reconstruct-only catalog is eligible for
/// every application.
#[must_use]
pub fn reconstruct_only_environment() -> Environment {
    let mut env = peer_sites();
    env.catalog = TechniqueCatalog::new(
        TechniqueCatalog::table2().iter().filter(|t| !t.is_failover()).cloned().collect(),
    );
    env.thresholds = ClassThresholds {
        gold_at_least: DollarsPerHour::new(f64::MAX / 2.0),
        silver_at_least: DollarsPerHour::new(1e5),
    };
    env
}

/// Solves the reconstruct-only environment once, then evaluates the
/// failure of the array hosting the most primaries under every
/// scheduling policy — the scenario with the most restore contention.
#[must_use]
pub fn run(budget: Budget, seed: u64) -> Option<SchedulingStudy> {
    let env = reconstruct_only_environment();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let best = DesignSolver::new(&env).solve(budget, &mut rng).best?;
    let protections = best.protections(&env);
    let mut per_array: BTreeMap<ArrayRef, usize> = BTreeMap::new();
    for (_, primary) in best.primaries() {
        *per_array.entry(primary).or_insert(0) += 1;
    }
    let (&busiest, _) = per_array.iter().max_by_key(|(_, &n)| n)?;
    let scope = FailureScope::DiskArray { array: busiest };

    let mut outcomes = Vec::new();
    for policy in [
        SchedulingPolicy::PriorityExclusive,
        SchedulingPolicy::ShortestFirst,
        SchedulingPolicy::FairShare,
    ] {
        let mut recovery_policy = env.recovery;
        recovery_policy.scheduling = policy;
        let evaluator = Evaluator::new(&env.workloads, best.provision(), recovery_policy);
        let outcome = evaluator.evaluate_scenario(&protections, &scope);
        if outcome.outcomes.is_empty() {
            continue;
        }

        let n = outcome.outcomes.len() as f64;
        let total: TimeSpan = outcome.outcomes.iter().map(|o| o.recovery_time).sum();
        let max =
            outcome.outcomes.iter().map(|o| o.recovery_time).fold(TimeSpan::ZERO, TimeSpan::max);
        let gold: Vec<TimeSpan> = outcome
            .outcomes
            .iter()
            .filter(|o| env.workloads[o.app].class() == AppClass::Gold)
            .map(|o| o.recovery_time)
            .collect();
        let gold_mean = if gold.is_empty() {
            TimeSpan::ZERO
        } else {
            gold.iter().copied().sum::<TimeSpan>() / gold.len() as f64
        };
        let penalty: f64 = outcome
            .outcomes
            .iter()
            .map(|o| {
                let m = env.workloads[o.app].penalty_model();
                (m.outage_penalty(o.recovery_time) + m.loss_penalty(o.loss_time)).as_f64()
            })
            .sum();

        outcomes.push(PolicyOutcome {
            policy,
            mean_recovery: total / n,
            max_recovery: max,
            gold_mean_recovery: gold_mean,
            scenario_penalty_dollars: penalty,
        });
    }
    Some(SchedulingStudy { scope, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_covers_all_policies_with_real_contention() {
        let study = run(Budget::iterations(25), 61).expect("feasible");
        assert_eq!(study.outcomes.len(), 3);
        for o in &study.outcomes {
            assert!(o.mean_recovery.is_finite());
            assert!(o.max_recovery >= o.mean_recovery);
        }
        let text = study.to_string();
        assert!(text.contains("PriorityExclusive"));
        assert!(text.contains("FairShare"));
    }

    #[test]
    fn policies_differentiate_under_contention() {
        // Larger budget => the solver consolidates primaries and the
        // busiest-array scenario has several contending restores.
        let study = run(Budget::iterations(120), 62).expect("feasible");
        let by_policy = |p: SchedulingPolicy| {
            study.outcomes.iter().find(|o| o.policy == p).copied().expect("present")
        };
        let priority = by_policy(SchedulingPolicy::PriorityExclusive);
        let fair = by_policy(SchedulingPolicy::FairShare);
        let shortest = by_policy(SchedulingPolicy::ShortestFirst);
        // Priority ordering exists to keep expensive applications short;
        // under fair sharing the highest-priority job cannot finish
        // earlier than it does with strict priority (it shares instead of
        // owning the devices).
        assert!(
            priority.gold_mean_recovery <= fair.gold_mean_recovery + TimeSpan::from_mins(1.0),
            "priority {} vs fair {}",
            priority.gold_mean_recovery,
            fair.gold_mean_recovery
        );
        // Shortest-first exists to shrink the unweighted mean.
        assert!(
            shortest.mean_recovery <= priority.mean_recovery + TimeSpan::from_mins(1.0),
            "shortest {} vs priority {}",
            shortest.mean_recovery,
            priority.mean_recovery
        );
    }
}
