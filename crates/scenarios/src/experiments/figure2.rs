//! Figure 2: the empirical distribution of random-solution costs for the
//! peer-sites environment.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_core::heuristics::{histogram, HistogramBin, RandomSampler, SampleSummary};
use dsd_core::Environment;

use crate::environments::peer_sites;

/// The regenerated Figure 2 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2 {
    /// Raw sampling results.
    pub summary: SampleSummary,
    /// Equal-width histogram over the sampled costs.
    pub bins: Vec<HistogramBin>,
}

impl Figure2 {
    /// Ratio of the most expensive to the cheapest sampled solution; the
    /// paper observes "more than an order of magnitude".
    #[must_use]
    pub fn cost_spread(&self) -> Option<f64> {
        match (self.summary.min(), self.summary.max()) {
            (Some(min), Some(max)) if min > 0.0 => Some(max / min),
            _ => None,
        }
    }
}

impl fmt::Display for Figure2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2: distribution of {} random solution costs ({} infeasible attempts)",
            self.summary.costs.len(),
            self.summary.infeasible
        )?;
        let peak = self.bins.iter().map(|b| b.count).max().unwrap_or(1).max(1);
        for bin in &self.bins {
            let bar = "#".repeat(bin.count * 50 / peak);
            writeln!(
                f,
                "${:>10.3}M..${:>10.3}M | {:>7} {bar}",
                bin.lo / 1e6,
                bin.hi / 1e6,
                bin.count
            )?;
        }
        if let Some(spread) = self.cost_spread() {
            writeln!(f, "max/min cost spread: {spread:.1}x")?;
        }
        if let Some(r) = self.summary.underprotection_correlation() {
            writeln!(
                f,
                "cost vs apps-without-backup correlation: r={r:.2} \
                 (the modes are point-in-time protection choices)"
            )?;
        }
        Ok(())
    }
}

/// Samples `samples` random designs of the peer-sites environment
/// (paper: ~10⁸; configurable here) and bins their costs.
#[must_use]
pub fn run(samples: usize, bins: usize, seed: u64) -> Figure2 {
    run_in(&peer_sites(), samples, bins, seed)
}

/// Same, against a caller-provided environment.
#[must_use]
pub fn run_in(env: &Environment, samples: usize, bins: usize, seed: u64) -> Figure2 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let summary = RandomSampler::new(env).sample(samples, &mut rng);
    let bins = histogram(&summary.costs, bins);
    Figure2 { summary, bins }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shows_wide_multimodal_spread() {
        let fig = run(150, 20, 3);
        assert!(fig.summary.costs.len() >= 100);
        let spread = fig.cost_spread().expect("feasible samples");
        assert!(spread > 5.0, "costs vary widely across the space: {spread:.1}x");
        let total: usize = fig.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, fig.summary.costs.len());
        // Multi-modality proxy: occupied bins are not contiguous or at
        // least the distribution spans many bins.
        let occupied = fig.bins.iter().filter(|b| b.count > 0).count();
        assert!(occupied >= 3, "distribution spans several modes: {occupied} bins");
        // The paper's reading of the modes: they track how many
        // applications were left without point-in-time protection.
        let r = fig.summary.underprotection_correlation().expect("recorded");
        assert!(r > 0.4, "modes track backup-less apps: r={r:.2}");
    }

    #[test]
    fn figure2_renders() {
        let fig = run(40, 10, 4);
        let text = fig.to_string();
        assert!(text.contains("Figure 2"));
        assert!(text.contains('#'));
    }
}
