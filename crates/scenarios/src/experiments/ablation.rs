//! Ablation study over the design tool's own design choices.
//!
//! Not a paper figure — this quantifies the ingredients the paper's §3
//! argues for (and the extensions this reproduction adds), on the
//! peer-sites case study:
//!
//! * the refit stage vs. greedy-only (value of the local search);
//! * the refit shape `b × d` (breadth/depth trade-off);
//! * the configuration solver's resource-addition loop;
//! * the resource-selection bias α_util (load balance vs. diversity);
//! * the recovery scheduling policy (priority-exclusive vs. fair-share
//!   vs. shortest-first);
//! * the extended technique catalog with incremental backups.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_core::heuristics::{SimulatedAnnealing, TabuSearch};
use dsd_core::{Budget, DesignSolver, Environment, RefitParams};
use dsd_protection::TechniqueCatalog;
use dsd_recovery::SchedulingPolicy;

use crate::environments::four_sites;

/// One ablation variant's results over the seed set.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Best total cost per seed (feasible runs only), dollars.
    pub costs: Vec<f64>,
    /// Seeds that found no feasible design.
    pub infeasible: usize,
}

impl AblationRow {
    /// Mean of the per-seed best costs.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.costs.is_empty() {
            None
        } else {
            Some(self.costs.iter().sum::<f64>() / self.costs.len() as f64)
        }
    }

    /// Best cost over all seeds.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.costs.iter().copied().reduce(f64::min)
    }
}

/// The full ablation table.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// One row per variant, baseline first.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// The baseline (full design tool) row.
    #[must_use]
    pub fn baseline(&self) -> &AblationRow {
        &self.rows[0]
    }

    /// mean(variant) / mean(baseline) for a named variant.
    #[must_use]
    pub fn relative_mean(&self, variant: &str) -> Option<f64> {
        let base = self.baseline().mean()?;
        let row = self.rows.iter().find(|r| r.variant == variant)?;
        Some(row.mean()? / base)
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: design-tool ingredients on the ablation environment ($M/yr, lower is better)")?;
        writeln!(
            f,
            "{:<44} {:>10} {:>10} {:>9} {:>6}",
            "variant", "mean", "min", "vs base", "inf"
        )?;
        let base_mean = self.baseline().mean();
        for r in &self.rows {
            let rel = match (r.mean(), base_mean) {
                (Some(m), Some(b)) if b > 0.0 => format!("{:.3}x", m / b),
                _ => "-".to_string(),
            };
            writeln!(
                f,
                "{:<44} {:>10} {:>10} {:>9} {:>6}",
                r.variant,
                r.mean().map_or("-".into(), |v| format!("{:.2}", v / 1e6)),
                r.min().map_or("-".into(), |v| format!("{:.2}", v / 1e6)),
                rel,
                r.infeasible
            )?;
        }
        Ok(())
    }
}

fn run_variant(
    label: &str,
    env: &Environment,
    budget: Budget,
    seeds: &[u64],
    build: impl Fn(&Environment) -> DesignSolver<'_>,
) -> AblationRow {
    let mut costs = Vec::new();
    let mut infeasible = 0;
    for &seed in seeds {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match build(env).solve(budget, &mut rng).best {
            Some(best) => costs.push(best.cost().total().as_f64()),
            None => infeasible += 1,
        }
    }
    AblationRow { variant: label.to_string(), costs, infeasible }
}

/// Runs every ablation variant with the given per-run budget and seeds on
/// the default ablation environment: twelve applications on four fully
/// connected sites (tight enough that the search ingredients matter; the
/// peer-sites case study is near-solved by the greedy stage alone).
#[must_use]
pub fn run(budget: Budget, seeds: &[u64]) -> Ablation {
    run_in(&four_sites(12), budget, seeds)
}

/// Runs every ablation variant against a caller-provided environment.
#[must_use]
pub fn run_in(base_env: &Environment, budget: Budget, seeds: &[u64]) -> Ablation {
    let mut rows = Vec::new();

    rows.push(run_variant("full design tool (baseline)", base_env, budget, seeds, |e| {
        DesignSolver::new(e)
    }));
    rows.push(run_variant("greedy only (refit disabled)", base_env, budget, seeds, |e| {
        DesignSolver::new(e).with_refit(RefitParams { breadth: 3, depth: 5, max_rounds: 0 })
    }));
    rows.push(run_variant("refit b=1, d=1", base_env, budget, seeds, |e| {
        DesignSolver::new(e).with_refit(RefitParams { breadth: 1, depth: 1, max_rounds: 25 })
    }));
    rows.push(run_variant("refit b=5, d=3", base_env, budget, seeds, |e| {
        DesignSolver::new(e).with_refit(RefitParams { breadth: 5, depth: 3, max_rounds: 25 })
    }));
    rows.push(run_variant("no resource-addition loop", base_env, budget, seeds, |e| {
        DesignSolver::new(e).with_addition_limits(0, 0)
    }));
    rows.push(run_variant("alpha_util = 0 (history-only bias)", base_env, budget, seeds, |e| {
        DesignSolver::new(e).with_alpha_util(0.0)
    }));

    let mut fair = base_env.clone();
    fair.recovery.scheduling = SchedulingPolicy::FairShare;
    rows.push(run_variant("fair-share recovery scheduling", &fair, budget, seeds, |e| {
        DesignSolver::new(e)
    }));
    let mut shortest = base_env.clone();
    shortest.recovery.scheduling = SchedulingPolicy::ShortestFirst;
    rows.push(run_variant("shortest-first recovery scheduling", &shortest, budget, seeds, |e| {
        DesignSolver::new(e)
    }));

    // Related-work baseline: simulated annealing over the same moves.
    {
        let mut costs = Vec::new();
        let mut infeasible = 0;
        for &seed in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            match SimulatedAnnealing::new(base_env).solve(budget, &mut rng).best {
                Some(best) => costs.push(best.cost().total().as_f64()),
                None => infeasible += 1,
            }
        }
        rows.push(AblationRow {
            variant: "simulated annealing (related work)".into(),
            costs,
            infeasible,
        });
    }
    {
        let mut costs = Vec::new();
        let mut infeasible = 0;
        for &seed in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            match TabuSearch::new(base_env).solve(budget, &mut rng).best {
                Some(best) => costs.push(best.cost().total().as_f64()),
                None => infeasible += 1,
            }
        }
        rows.push(AblationRow { variant: "tabu search (related work)".into(), costs, infeasible });
    }

    let mut shared_spares = base_env.clone();
    shared_spares.sizing.failover_spare_ratio = 0.5;
    rows.push(run_variant(
        "shared failover spares (ratio 0.5)",
        &shared_spares,
        budget,
        seeds,
        |e| DesignSolver::new(e),
    ));

    let mut extended = base_env.clone();
    extended.catalog = TechniqueCatalog::extended();
    rows.push(run_variant(
        "extended catalog (incremental backups)",
        &extended,
        budget,
        seeds,
        |e| DesignSolver::new(e),
    ));

    Ablation { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_all_variants() {
        let a = run(Budget::iterations(10), &[1, 2]);
        assert_eq!(a.rows.len(), 12);
        assert_eq!(a.baseline().variant, "full design tool (baseline)");
        for r in &a.rows {
            assert_eq!(r.costs.len() + r.infeasible, 2, "{}: every seed accounted", r.variant);
        }
        let text = a.to_string();
        assert!(text.contains("greedy only"));
        assert!(text.contains("incremental"));
    }

    #[test]
    fn baseline_is_competitive_with_every_variant() {
        // Not a per-run dominance claim (different variants consume the
        // RNG differently); over a few seeds the full tool's mean must
        // stay within a small factor of the best ablated variant.
        let a = run(Budget::iterations(25), &[3, 4, 5]);
        let base = a.baseline().mean().expect("baseline feasible");
        let best = a.rows.iter().filter_map(AblationRow::mean).fold(f64::INFINITY, f64::min);
        assert!(base <= best * 1.10, "baseline {base} vs best variant {best}");
    }

    #[test]
    fn relative_mean_of_baseline_is_one() {
        let a = run(Budget::iterations(5), &[4]);
        let rel = a.relative_mean("full design tool (baseline)").unwrap();
        assert!((rel - 1.0).abs() < 1e-12);
        assert!(a.relative_mean("nonexistent variant").is_none());
    }
}
