//! Figure 3: comparison of the design tool against the human and random
//! heuristics on the peer-sites case study.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_core::heuristics::{HumanHeuristic, RandomHeuristic, RandomSampler};
use dsd_core::{Budget, CostBreakdown, DesignSolver, Environment};

use crate::environments::peer_sites;

/// Cost breakdown of one heuristic's best design, or `None` when it found
/// no feasible design within its budget.
pub type HeuristicResult = Option<CostBreakdown>;

/// The regenerated Figure 3 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3 {
    /// Design tool result.
    pub tool: HeuristicResult,
    /// Human heuristic result.
    pub human: HeuristicResult,
    /// Random heuristic result.
    pub random: HeuristicResult,
    /// Where the tool's solution falls in the sampled solution-cost
    /// distribution (fraction of random solutions at or below its cost);
    /// `None` when percentile sampling was skipped.
    pub tool_percentile: Option<f64>,
}

impl Figure3 {
    /// human/tool total-cost ratio (the paper reports ≈1.9×).
    #[must_use]
    pub fn human_over_tool(&self) -> Option<f64> {
        ratio(&self.human, &self.tool)
    }

    /// random/tool total-cost ratio (the paper reports ≈1.3×).
    #[must_use]
    pub fn random_over_tool(&self) -> Option<f64> {
        ratio(&self.random, &self.tool)
    }
}

fn ratio(num: &HeuristicResult, den: &HeuristicResult) -> Option<f64> {
    match (num, den) {
        (Some(n), Some(d)) if d.total().as_f64() > 0.0 => {
            Some(n.total().as_f64() / d.total().as_f64())
        }
        _ => None,
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: data protection solution costs for peer sites ($M/yr)")?;
        writeln!(
            f,
            "{:<12} {:>10} {:>14} {:>14} {:>10}",
            "heuristic", "outlay", "loss penalty", "outage penalty", "total"
        )?;
        for (name, result) in
            [("design tool", &self.tool), ("human", &self.human), ("random", &self.random)]
        {
            match result {
                Some(c) => writeln!(
                    f,
                    "{:<12} {:>10.3} {:>14.3} {:>14.3} {:>10.3}",
                    name,
                    c.outlay.as_f64() / 1e6,
                    c.penalties.loss.as_f64() / 1e6,
                    c.penalties.outage.as_f64() / 1e6,
                    c.total().as_f64() / 1e6
                )?,
                None => writeln!(f, "{name:<12} {:>10}", "infeasible")?,
            }
        }
        if let Some(r) = self.human_over_tool() {
            writeln!(f, "human / tool  = {r:.2}x")?;
        }
        if let Some(r) = self.random_over_tool() {
            writeln!(f, "random / tool = {r:.2}x")?;
        }
        if let Some(p) = self.tool_percentile {
            writeln!(f, "tool solution sits at the {:.2} percentile of the space", p * 100.0)?;
        }
        Ok(())
    }
}

/// Runs the three heuristics on the peer-sites environment with equal
/// budgets (the paper gives each thirty minutes; we give each the same
/// iteration budget). `percentile_samples > 0` additionally samples the
/// space to place the tool's solution in the cost distribution.
#[must_use]
pub fn run(budget: Budget, percentile_samples: usize, seed: u64) -> Figure3 {
    run_in(&peer_sites(), budget, percentile_samples, seed)
}

/// Same, against a caller-provided environment.
#[must_use]
pub fn run_in(env: &Environment, budget: Budget, percentile_samples: usize, seed: u64) -> Figure3 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tool = DesignSolver::new(env).solve(budget, &mut rng).best.map(|b| b.cost().clone());

    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
    let human = HumanHeuristic::new(env).solve(budget, &mut rng).best.map(|b| b.cost().clone());

    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(2));
    let random = RandomHeuristic::new(env).solve(budget, &mut rng).best.map(|b| b.cost().clone());

    let tool_percentile = if percentile_samples > 0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(3));
        let summary = RandomSampler::new(env).sample(percentile_samples, &mut rng);
        tool.as_ref().and_then(|c| summary.percentile_of(c.total().as_f64()))
    } else {
        None
    };

    Figure3 { tool, human, random, tool_percentile }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_beats_both_baselines() {
        let fig = run(Budget::iterations(30), 0, 11);
        let tool = fig.tool.as_ref().expect("tool finds a design").total();
        let human = fig.human.as_ref().expect("human finds a design").total();
        let random = fig.random.as_ref().expect("random finds a design").total();
        assert!(tool <= human, "tool {tool} must not lose to human {human}");
        assert!(tool <= random, "tool {tool} must not lose to random {random}");
        assert!(fig.human_over_tool().unwrap() >= 1.0);
        assert!(fig.random_over_tool().unwrap() >= 1.0);
    }

    #[test]
    fn percentile_places_tool_near_the_left_tail() {
        let fig = run(Budget::iterations(25), 60, 12);
        let p = fig.tool_percentile.expect("sampled");
        assert!(p <= 0.3, "tool sits in the cheap tail of the space: {p}");
    }

    #[test]
    fn renders_table() {
        let fig = run(Budget::iterations(5), 0, 13);
        let text = fig.to_string();
        assert!(text.contains("design tool"));
        assert!(text.contains("human"));
        assert!(text.contains("random"));
    }
}
