//! One driver per table/figure of the paper's evaluation (§4).
//!
//! | driver | regenerates |
//! |---|---|
//! | [`table4`] | Table 4 — solution chosen for the peer-sites case study |
//! | [`figure2`] | Figure 2 — random-solution cost distribution |
//! | [`figure3`] | Figure 3 — cost comparison of the three heuristics |
//! | [`figure4`] | Figure 4 — scalability with application count |
//! | [`sensitivity`] | Figures 5–7 — sensitivity to failure likelihoods |
//! | [`ablation`] | (extension) ablation of the tool's own design choices |
//! | [`scheduling`] | (extension) recovery-scheduling policy study |
//!
//! Every driver is deterministic under a seed and budgeted in solver
//! iterations, so the experiments run in seconds yet scale to the paper's
//! thirty-minute setting via [`dsd_core::Budget::wall_clock`].

pub mod ablation;
pub mod csv;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod scheduling;
pub mod sensitivity;
pub mod table4;
