//! Table 4: the data protection solution chosen by the design tool for
//! the peer-sites case study.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_core::{Budget, CostBreakdown, DesignSolver, Environment};
use dsd_workload::AppId;

use crate::environments::peer_sites;

/// One row of Table 4: an application's chosen technique and footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Application number (1-based, as in the paper).
    pub app: usize,
    /// Table 1 type code (B, W, C, S).
    pub type_code: char,
    /// Chosen technique name.
    pub technique: String,
    /// Name of the primary site.
    pub primary_site: String,
    /// Per-site: does the design place an array copy (primary or mirror)
    /// of this application there?
    pub uses_array: Vec<bool>,
    /// Per-site: does the application back up to a tape library there?
    pub uses_tape: Vec<bool>,
    /// Whether the design consumes inter-site network links.
    pub network: bool,
}

/// The regenerated Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Site names, in id order (column headers).
    pub sites: Vec<String>,
    /// Per-application rows in application order.
    pub rows: Vec<Table4Row>,
    /// Cost of the chosen solution.
    pub cost: CostBreakdown,
}

impl Table4 {
    /// True if every application's design includes some form of tape
    /// backup — the paper's headline observation for this table.
    #[must_use]
    pub fn all_have_backup(&self) -> bool {
        self.rows.iter().all(|r| r.uses_tape.iter().any(|&t| t))
    }

    /// True if every gold application (high outage penalty) recovers by
    /// failover.
    #[must_use]
    pub fn gold_apps_use_failover(&self) -> bool {
        self.rows.iter().filter(|r| r.type_code == 'B').all(|r| r.technique.contains("(F)"))
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: data protection solution chosen by design tool for peer sites")?;
        write!(f, "{:<4} {:<5} {:<30} {:<8}", "App", "Type", "Technique", "Primary")?;
        for s in &self.sites {
            write!(f, " {s}.array {s}.tape")?;
        }
        writeln!(f, " network")?;
        for r in &self.rows {
            write!(f, "{:<4} {:<5} {:<30} {:<8}", r.app, r.type_code, r.technique, r.primary_site)?;
            for i in 0..self.sites.len() {
                let mark = |b: bool| if b { "x" } else { "-" };
                write!(f, " {:>8} {:>7}", mark(r.uses_array[i]), mark(r.uses_tape[i]))?;
            }
            writeln!(f, " {:>7}", if r.network { "x" } else { "-" })?;
        }
        writeln!(f, "solution cost: {}", self.cost)
    }
}

/// Runs the design tool on the peer-sites environment and formats its
/// chosen solution as Table 4. Returns `None` if no feasible design was
/// found within the budget (does not happen at the paper's scale).
#[must_use]
pub fn run(budget: Budget, seed: u64) -> Option<Table4> {
    let env = peer_sites();
    run_in(&env, budget, seed)
}

/// Same, against a caller-provided environment.
#[must_use]
pub fn run_in(env: &Environment, budget: Budget, seed: u64) -> Option<Table4> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let outcome = DesignSolver::new(env).solve(budget, &mut rng);
    let best = outcome.best?;

    let sites: Vec<String> = env.topology.sites().iter().map(|s| s.name.clone()).collect();
    let rows = env
        .workloads
        .iter()
        .map(|app| {
            let a = best.assignment(app.id).expect("complete design");
            let technique = &env.catalog[a.technique];
            let mut uses_array = vec![false; sites.len()];
            let mut uses_tape = vec![false; sites.len()];
            uses_array[a.placement.primary.site.0] = true;
            if let Some(m) = a.placement.mirror {
                uses_array[m.site.0] = true;
            }
            if let Some(t) = a.placement.tape {
                uses_tape[t.site.0] = true;
            }
            Table4Row {
                app: app.id.0 + 1,
                type_code: app.profile.code,
                technique: technique.name.clone(),
                primary_site: sites[a.placement.primary.site.0].clone(),
                uses_array,
                uses_tape,
                network: a.placement.mirror.is_some(),
            }
        })
        .collect();
    let _ = AppId(0);
    Some(Table4 { sites, rows, cost: best.cost().clone() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_paper_shape() {
        let t = run(Budget::iterations(25), 2).expect("peer sites is feasible");
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.sites, vec!["P1", "P2"]);
        assert!(t.all_have_backup(), "every app employs some form of tape backup");
        assert!(t.gold_apps_use_failover(), "high outage penalty => failover recovery");
        let text = t.to_string();
        assert!(text.contains("Table 4"));
        assert!(text.contains("central") || text.contains("mirror"));
    }

    #[test]
    fn table4_deterministic_under_seed() {
        let a = run(Budget::iterations(10), 7).unwrap();
        let b = run(Budget::iterations(10), 7).unwrap();
        assert_eq!(a, b);
    }
}
