//! Figures 5–7: sensitivity of the design tool's solution cost to the
//! likelihood of each failure kind (sixteen applications, four fully
//! connected sites, §4.5 baseline rates for the non-swept kinds).

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_core::{Budget, DesignSolver};
use dsd_failure::FailureRates;
use dsd_units::PerYear;

use crate::environments::sensitivity;

/// Which failure likelihood a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Figure 5: data object failures.
    DataObject,
    /// Figure 6: disk array failures.
    DiskArray,
    /// Figure 7: site disasters.
    SiteDisaster,
}

impl SweepKind {
    /// Paper figure number.
    #[must_use]
    pub fn figure(self) -> u32 {
        match self {
            SweepKind::DataObject => 5,
            SweepKind::DiskArray => 6,
            SweepKind::SiteDisaster => 7,
        }
    }

    /// The paper's swept ranges: data object from twice a year to once in
    /// ten years; disk from once in two to once in twenty years; site
    /// from once in five to once in fifty years.
    #[must_use]
    pub fn paper_rates(self) -> Vec<PerYear> {
        let years: &[f64] = match self {
            SweepKind::DataObject => &[0.5, 1.0, 2.0, 3.0, 5.0, 10.0],
            SweepKind::DiskArray => &[2.0, 3.0, 5.0, 10.0, 20.0],
            SweepKind::SiteDisaster => &[5.0, 10.0, 20.0, 50.0],
        };
        years.iter().map(|&y| PerYear::once_every_years(y)).collect()
    }
}

impl fmt::Display for SweepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepKind::DataObject => f.write_str("data object failure"),
            SweepKind::DiskArray => f.write_str("disk array failure"),
            SweepKind::SiteDisaster => f.write_str("site disaster"),
        }
    }
}

/// Solution cost at one swept likelihood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Swept annual likelihood.
    pub likelihood: PerYear,
    /// Amortized annual outlay, dollars (`None` when infeasible).
    pub outlay: Option<f64>,
    /// Expected annual penalties, dollars.
    pub penalties: Option<f64>,
    /// Total, dollars.
    pub total: Option<f64>,
}

/// The regenerated sensitivity figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityFigure {
    /// What was swept.
    pub kind: SweepKind,
    /// One point per swept likelihood, in input order.
    pub points: Vec<SweepPoint>,
}

impl fmt::Display for SensitivityFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure {}: design tool's sensitivity to the likelihood of {}",
            self.kind.figure(),
            self.kind
        )?;
        writeln!(
            f,
            "{:>18} {:>12} {:>12} {:>12}",
            "likelihood", "outlay $M", "penalty $M", "total $M"
        )?;
        let cell = |v: Option<f64>| match v {
            Some(c) => format!("{:.2}", c / 1e6),
            None => "infeasible".to_string(),
        };
        for p in &self.points {
            writeln!(
                f,
                "{:>18} {:>12} {:>12} {:>12}",
                p.likelihood.to_string(),
                cell(p.outlay),
                cell(p.penalties),
                cell(p.total)
            )?;
        }
        Ok(())
    }
}

/// Sweeps one failure likelihood over `rates` (others pinned at the §4.5
/// baseline) and runs the design tool at each point.
#[must_use]
pub fn run(kind: SweepKind, rates: &[PerYear], budget: Budget, seed: u64) -> SensitivityFigure {
    let points = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let swept = match kind {
                SweepKind::DataObject => {
                    FailureRates::sensitivity_baseline().with_data_object(rate)
                }
                SweepKind::DiskArray => FailureRates::sensitivity_baseline().with_disk_array(rate),
                SweepKind::SiteDisaster => {
                    FailureRates::sensitivity_baseline().with_site_disaster(rate)
                }
            };
            let env = sensitivity(swept);
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64 * 101));
            let best = DesignSolver::new(&env).solve(budget, &mut rng).best;
            match best {
                Some(b) => SweepPoint {
                    likelihood: rate,
                    outlay: Some(b.cost().outlay.as_f64()),
                    penalties: Some(b.cost().penalties.total().as_f64()),
                    total: Some(b.cost().total().as_f64()),
                },
                None => SweepPoint { likelihood: rate, outlay: None, penalties: None, total: None },
            }
        })
        .collect();
    SensitivityFigure { kind, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ranges_match_section_4_5() {
        assert_eq!(SweepKind::DataObject.paper_rates().len(), 6);
        assert_eq!(SweepKind::DataObject.paper_rates()[0].as_f64(), 2.0);
        assert_eq!(
            SweepKind::SiteDisaster.paper_rates().last().unwrap().mean_interval_years(),
            Some(50.0)
        );
        assert_eq!(SweepKind::DiskArray.figure(), 6);
    }

    #[test]
    fn sweep_runs_and_costs_rise_with_object_failure_rate() {
        // Two extreme points of the Figure 5 sweep on a small budget.
        let rates = [PerYear::once_every_years(10.0), PerYear::new(2.0)];
        let fig = run(SweepKind::DataObject, &rates, Budget::iterations(8), 41);
        assert_eq!(fig.points.len(), 2);
        let rare = fig.points[0].total.expect("feasible");
        let frequent = fig.points[1].total.expect("feasible");
        assert!(
            frequent >= rare,
            "more frequent data-object failures cannot be cheaper: {rare} vs {frequent}"
        );
    }

    #[test]
    fn renders_figure() {
        let fig = run(
            SweepKind::SiteDisaster,
            &[PerYear::once_every_years(20.0)],
            Budget::iterations(4),
            42,
        );
        let text = fig.to_string();
        assert!(text.contains("Figure 7"));
        assert!(text.contains("site disaster"));
    }
}
