//! CSV rendering of experiment results, for external plotting.
//!
//! Plain string building — the formats are flat tables, no quoting
//! needed beyond what [`escape`] provides for free-text labels.

use std::fmt::Write as _;

use crate::experiments::ablation::Ablation;
use crate::experiments::figure2::Figure2;
use crate::experiments::figure3::Figure3;
use crate::experiments::figure4::Figure4;
use crate::experiments::sensitivity::SensitivityFigure;
use crate::experiments::table4::Table4;

/// Quotes a CSV field if it contains separators or quotes.
#[must_use]
pub fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or(String::new(), |x| format!("{x}"))
}

/// Table 4 as CSV: one row per application.
#[must_use]
pub fn table4_csv(t: &Table4) -> String {
    let mut out = String::from("app,type,technique,primary_site");
    for s in &t.sites {
        let _ = write!(out, ",{}_array,{}_tape", escape(s), escape(s));
    }
    out.push_str(",network\n");
    for r in &t.rows {
        let _ = write!(
            out,
            "{},{},{},{}",
            r.app,
            r.type_code,
            escape(&r.technique),
            escape(&r.primary_site)
        );
        for i in 0..t.sites.len() {
            let _ = write!(out, ",{},{}", r.uses_array[i], r.uses_tape[i]);
        }
        let _ = writeln!(out, ",{}", r.network);
    }
    out
}

/// Figure 2 as CSV: histogram bins.
#[must_use]
pub fn figure2_csv(f: &Figure2) -> String {
    let mut out = String::from("bin_lo_dollars,bin_hi_dollars,count\n");
    for b in &f.bins {
        let _ = writeln!(out, "{},{},{}", b.lo, b.hi, b.count);
    }
    out
}

/// Figure 3 as CSV: one row per heuristic.
#[must_use]
pub fn figure3_csv(f: &Figure3) -> String {
    let mut out =
        String::from("heuristic,outlay_dollars,loss_dollars,outage_dollars,total_dollars\n");
    for (name, result) in [("design_tool", &f.tool), ("human", &f.human), ("random", &f.random)] {
        match result {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "{name},{},{},{},{}",
                    c.outlay.as_f64(),
                    c.penalties.loss.as_f64(),
                    c.penalties.outage.as_f64(),
                    c.total().as_f64()
                );
            }
            None => {
                let _ = writeln!(out, "{name},,,,");
            }
        }
    }
    out
}

/// Figure 4 as CSV: one row per application count.
#[must_use]
pub fn figure4_csv(f: &Figure4) -> String {
    let mut out = String::from("apps,tool_dollars,human_dollars,random_dollars\n");
    for p in &f.points {
        let _ = writeln!(out, "{},{},{},{}", p.apps, opt(p.tool), opt(p.human), opt(p.random));
    }
    out
}

/// Figures 5–7 as CSV: one row per swept likelihood.
#[must_use]
pub fn sensitivity_csv(f: &SensitivityFigure) -> String {
    let mut out = String::from("events_per_year,outlay_dollars,penalties_dollars,total_dollars\n");
    for p in &f.points {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            p.likelihood.as_f64(),
            opt(p.outlay),
            opt(p.penalties),
            opt(p.total)
        );
    }
    out
}

/// Ablation table as CSV: one row per variant.
#[must_use]
pub fn ablation_csv(a: &Ablation) -> String {
    let mut out = String::from("variant,mean_dollars,min_dollars,infeasible_seeds\n");
    for r in &a.rows {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            escape(&r.variant),
            opt(r.mean()),
            opt(r.min()),
            r.infeasible
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{figure2, figure4, sensitivity, table4};
    use dsd_core::Budget;
    use dsd_units::PerYear;

    #[test]
    fn escape_handles_commas_and_quotes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn table4_csv_has_row_per_app() {
        let t = table4::run(Budget::iterations(8), 2).expect("feasible");
        let csv = table4_csv(&t);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + t.rows.len());
        assert!(lines[0].starts_with("app,type,technique"));
        assert!(lines[1].contains("mirror") || lines[1].contains("backup"));
    }

    #[test]
    fn figure2_csv_counts_match() {
        let f = figure2::run(30, 8, 1);
        let csv = figure2_csv(&f);
        let total: usize = csv
            .trim()
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, f.summary.costs.len());
    }

    #[test]
    fn figure4_csv_marks_infeasible_as_empty() {
        let f = figure4::Figure4 {
            points: vec![figure4::Figure4Point {
                apps: 99,
                tool: None,
                human: Some(1.5e6),
                random: None,
            }],
        };
        let csv = figure4_csv(&f);
        assert!(csv.lines().nth(1).unwrap().starts_with("99,,1500000,"));
    }

    #[test]
    fn sensitivity_csv_lists_rates() {
        let fig = sensitivity::run(
            sensitivity::SweepKind::DiskArray,
            &[PerYear::once_every_years(5.0)],
            Budget::iterations(3),
            4,
        );
        let csv = sensitivity_csv(&fig);
        assert!(csv.lines().nth(1).unwrap().starts_with("0.2,"));
    }
}
