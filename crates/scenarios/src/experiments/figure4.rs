//! Figure 4: scalability of the three heuristics with the number of
//! applications on four fully connected sites.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dsd_core::heuristics::{HumanHeuristic, RandomHeuristic};
use dsd_core::{Budget, DesignSolver};

use crate::environments::four_sites;

/// Results at one application count. `None` = no feasible design found
/// within the budget (the paper observes the human heuristic and the
/// design solver failing first as the fixed resources saturate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure4Point {
    /// Number of applications.
    pub apps: usize,
    /// Design tool total annual cost, dollars.
    pub tool: Option<f64>,
    /// Human heuristic total annual cost, dollars.
    pub human: Option<f64>,
    /// Random heuristic total annual cost, dollars.
    pub random: Option<f64>,
}

/// The regenerated Figure 4 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4 {
    /// One point per application count.
    pub points: Vec<Figure4Point>,
}

impl Figure4 {
    /// Advantage of the tool over the human heuristic at each feasible
    /// point (the paper reports 2–3×).
    #[must_use]
    pub fn human_ratios(&self) -> Vec<f64> {
        self.points
            .iter()
            .filter_map(|p| match (p.human, p.tool) {
                (Some(h), Some(t)) if t > 0.0 => Some(h / t),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: design tool scalability, fully connected four sites ($M/yr)")?;
        writeln!(f, "{:>5} {:>12} {:>12} {:>12}", "apps", "tool", "human", "random")?;
        let cell = |v: Option<f64>| match v {
            Some(c) => format!("{:.2}", c / 1e6),
            None => "infeasible".to_string(),
        };
        for p in &self.points {
            writeln!(
                f,
                "{:>5} {:>12} {:>12} {:>12}",
                p.apps,
                cell(p.tool),
                cell(p.human),
                cell(p.random)
            )?;
        }
        Ok(())
    }
}

/// Sweeps the application count (the paper scales "by four applications
/// at a time, one from each class") and runs all three heuristics at each
/// point with equal budgets.
#[must_use]
pub fn run(app_counts: &[usize], budget: Budget, seed: u64) -> Figure4 {
    let points = app_counts
        .iter()
        .map(|&apps| {
            let env = four_sites(apps);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (apps as u64) << 8);
            let tool = DesignSolver::new(&env)
                .solve(budget, &mut rng)
                .best
                .map(|b| b.cost().total().as_f64());
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (apps as u64) << 8 ^ 1);
            let human = HumanHeuristic::new(&env)
                .solve(budget, &mut rng)
                .best
                .map(|b| b.cost().total().as_f64());
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (apps as u64) << 8 ^ 2);
            let random = RandomHeuristic::new(&env)
                .solve(budget, &mut rng)
                .best
                .map(|b| b.cost().total().as_f64());
            Figure4Point { apps, tool, human, random }
        })
        .collect();
    Figure4 { points }
}

/// The paper's application counts: 4 to 24 in steps of four.
#[must_use]
pub fn paper_app_counts() -> Vec<usize> {
    (1..=6).map(|i| i * 4).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_step_by_four() {
        assert_eq!(paper_app_counts(), vec![4, 8, 12, 16, 20, 24]);
    }

    #[test]
    fn tool_leads_at_small_scale() {
        let fig = run(&[4, 8], Budget::iterations(20), 31);
        for p in &fig.points {
            let tool = p.tool.expect("feasible at small scale");
            if let Some(h) = p.human {
                assert!(tool <= h, "apps={}: tool {tool} vs human {h}", p.apps);
            }
            if let Some(r) = p.random {
                assert!(tool <= r, "apps={}: tool {tool} vs random {r}", p.apps);
            }
        }
        assert!(fig.human_ratios().iter().all(|&r| r >= 1.0));
    }

    #[test]
    fn cost_grows_with_scale() {
        let fig = run(&[4, 12], Budget::iterations(15), 32);
        let small = fig.points[0].tool.unwrap();
        let large = fig.points[1].tool.unwrap();
        assert!(large > small, "more applications must cost more: {small} -> {large}");
    }

    #[test]
    fn renders_series() {
        let fig = run(&[4], Budget::iterations(5), 33);
        assert!(fig.to_string().contains("Figure 4"));
    }
}
