//! Fleet-scale environment generation.
//!
//! The paper's case study tops out at sixteen applications on four
//! sites; the ROADMAP north-star is fleets of thousands. This module
//! generates large seeded instances — parameterized app count,
//! site-graph shape, catalog subset, and workload spread — that serve
//! as the benchmark substrate for the portfolio solver alongside
//! [`crate::environments::four_sites`].
//!
//! Determinism contract: [`fleet`] is a pure function of its
//! [`FleetParams`]. The same params (including `seed`) produce a
//! byte-identical [`Environment`] — all randomness flows through one
//! `ChaCha8Rng` seeded from `params.seed`, and nothing reads ambient
//! state. This is what makes fleet benchmarks reproducible across
//! machines and lets the portfolio invariant tests pin exact instances.
//!
//! ```
//! use dsd_scenarios::fleet::{fleet, FleetParams, SiteGraph};
//!
//! let params = FleetParams::new(32).with_sites(6, SiteGraph::Ring);
//! let env = fleet(&params);
//! assert_eq!(env.workloads.len(), 32);
//! assert_eq!(env.topology.site_count(), 6);
//! assert_eq!(env.topology.route_count(), 6); // a 6-cycle
//! ```

use std::sync::Arc;

use dsd_core::Environment;
use dsd_failure::{FailureModel, FailureRates};
use dsd_protection::TechniqueCatalog;
use dsd_resources::{DeviceSpec, NetworkSpec, Route, Site, SiteId, Topology};
use dsd_workload::{GeneratorConfig, WorkloadGenerator, WorkloadSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How the sites of a fleet are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteGraph {
    /// Each site links to its two neighbors in a cycle (`n` routes for
    /// `n ≥ 3` sites; degenerate cases fall back to a single link or
    /// none).
    Ring,
    /// Every pair of sites is linked (`n·(n-1)/2` routes) — the shape of
    /// the paper's four-site setting.
    Mesh,
    /// Site 0 is the hub; every other site links only to it (`n-1`
    /// routes). Models a primary datacenter with satellite sites.
    HubSpoke,
}

impl SiteGraph {
    /// Parses the CLI spelling (`ring` / `mesh` / `hub-spoke`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "ring" => Some(SiteGraph::Ring),
            "mesh" => Some(SiteGraph::Mesh),
            "hub-spoke" | "hub" => Some(SiteGraph::HubSpoke),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SiteGraph::Ring => "ring",
            SiteGraph::Mesh => "mesh",
            SiteGraph::HubSpoke => "hub-spoke",
        }
    }
}

/// Which protection catalog a fleet instance searches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatalogChoice {
    /// The paper's Table 2 (nine techniques).
    Table2,
    /// Table 2 plus incremental-backup variants.
    Extended,
    /// The first `n` techniques of Table 2 (clamped to `[1, 9]`). Any
    /// prefix is feasible for every application class because Table 2
    /// leads with a gold technique, which satisfies every class.
    Prefix(usize),
}

impl CatalogChoice {
    fn build(self) -> TechniqueCatalog {
        match self {
            CatalogChoice::Table2 => TechniqueCatalog::table2(),
            CatalogChoice::Extended => TechniqueCatalog::extended(),
            CatalogChoice::Prefix(n) => {
                let full = TechniqueCatalog::table2();
                let keep = n.clamp(1, full.len());
                TechniqueCatalog::new(full.iter().take(keep).cloned().collect())
            }
        }
    }
}

/// Parameters of a fleet-scale instance. Construct with
/// [`FleetParams::new`] and refine builder-style; every field also stays
/// public so benchmarks can sweep them directly.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetParams {
    /// Number of applications (cycled through the Table 1 mix, then
    /// perturbed when `spread > 0`).
    pub apps: usize,
    /// Number of sites.
    pub sites: usize,
    /// Site interconnect shape.
    pub graph: SiteGraph,
    /// Protection catalog to search over.
    pub catalog: CatalogChoice,
    /// Multiplicative workload perturbation half-width: each app's sizes,
    /// rates, and penalties are scaled by independent factors drawn from
    /// `[1/(1+spread), 1+spread]`. `0.0` reproduces the exact scaled
    /// paper mix.
    pub spread: f64,
    /// RNG seed; the sole source of randomness.
    pub seed: u64,
}

impl FleetParams {
    /// A fleet of `apps` applications with the default shape: four-sites
    /// mesh (the paper's scalability setting), full Table 2 catalog, 50%
    /// workload spread, seed 2006.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is zero.
    #[must_use]
    pub fn new(apps: usize) -> Self {
        assert!(apps > 0, "a fleet needs at least one application");
        FleetParams {
            apps,
            sites: 4,
            graph: SiteGraph::Mesh,
            catalog: CatalogChoice::Table2,
            spread: 0.5,
            seed: 2006,
        }
    }

    /// Overrides the site count and interconnect shape.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    #[must_use]
    pub fn with_sites(mut self, sites: usize, graph: SiteGraph) -> Self {
        assert!(sites > 0, "a fleet needs at least one site");
        self.sites = sites;
        self.graph = graph;
        self
    }

    /// Overrides the protection catalog.
    #[must_use]
    pub fn with_catalog(mut self, catalog: CatalogChoice) -> Self {
        self.catalog = catalog;
        self
    }

    /// Overrides the workload perturbation half-width (≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `spread` is negative or not finite.
    #[must_use]
    pub fn with_spread(mut self, spread: f64) -> Self {
        assert!(spread.is_finite() && spread >= 0.0, "spread must be finite and non-negative");
        self.spread = spread;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Route list for `sites` sites wired as `graph`.
fn routes_for(sites: usize, graph: SiteGraph, network: &NetworkSpec) -> Vec<Route> {
    let link = |a: usize, b: usize| Route { a: SiteId(a), b: SiteId(b), network: network.clone() };
    match graph {
        SiteGraph::Mesh => {
            let mut routes = Vec::new();
            for i in 0..sites {
                for j in i + 1..sites {
                    routes.push(link(i, j));
                }
            }
            routes
        }
        SiteGraph::Ring => match sites {
            0 | 1 => Vec::new(),
            // A 2-cycle would duplicate the single possible route.
            2 => vec![link(0, 1)],
            n => (0..n).map(|i| link(i, (i + 1) % n)).collect(),
        },
        SiteGraph::HubSpoke => (1..sites).map(|i| link(0, i)).collect(),
    }
}

/// One paper slot set (and one 32-link route budget) per four apps
/// expected at a site — the density of the §4.3 case study, which the
/// fleet keeps as it grows instead of pinning every site to the
/// case-study's fixed hardware.
fn slot_sets(per_site: usize) -> usize {
    per_site.div_ceil(4).max(1)
}

/// Builds one fleet site: the paper's slot set (one XP1200, one
/// MSA1500, one tape library) repeated once per [`slot_sets`], so
/// device capacity keeps the §4.3 density as the fleet grows.
fn fleet_site(id: usize, per_site: usize, compute: u32) -> Site {
    let slot_sets = slot_sets(per_site);
    let mut site = Site::new(id, format!("F{}", id + 1)).with_compute(compute);
    for _ in 0..slot_sets {
        site = site
            .with_array_slot(DeviceSpec::xp1200())
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_high());
    }
    site
}

/// Generates a fleet-scale environment from `params`. Byte-deterministic:
/// equal params yield an identical [`Environment`].
///
/// Sites repeat the paper's per-site slot set (one XP1200 slot, one
/// MSA1500 slot, one tape library per four apps hosted) with compute
/// sized to twice the mean apps per site, matching the 2× headroom of
/// the §4.3 case study; routes likewise get one 32-link budget per
/// four apps per site, so inter-site mirroring stays provisionable at
/// fleet scale. Failure rates are the case-study rates, as in
/// [`crate::environments::four_sites`].
#[must_use]
pub fn fleet(params: &FleetParams) -> Environment {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let workloads = if params.spread > 0.0 {
        let scale = 1.0 + params.spread;
        let config = GeneratorConfig {
            scale_min: 1.0 / scale,
            scale_max: scale,
            penalty_scale_min: 1.0 / scale,
            penalty_scale_max: scale,
        };
        WorkloadGenerator::new(config).generate(params.apps, &mut rng)
    } else {
        WorkloadSet::scaled_paper_mix(params.apps)
    };

    // 2× headroom over the mean apps-per-site, so failover placements
    // have somewhere to go even on unbalanced fleets.
    let per_site = params.apps.div_ceil(params.sites);
    let compute = u32::try_from((2 * per_site).max(2)).unwrap_or(u32::MAX);
    let sites = (0..params.sites).map(|i| fleet_site(i, per_site, compute)).collect();
    let mut network = NetworkSpec::high();
    network.max_links =
        network.max_links.saturating_mul(u32::try_from(slot_sets(per_site)).unwrap_or(u32::MAX));
    let routes = routes_for(params.sites, params.graph, &network);

    Environment::new(
        workloads,
        Arc::new(Topology::new(sites, routes)),
        params.catalog.build(),
        FailureModel::new(FailureRates::case_study()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_shape_matches_four_sites_mesh() {
        let env = fleet(&FleetParams::new(16));
        assert_eq!(env.workloads.len(), 16);
        assert_eq!(env.topology.site_count(), 4);
        assert_eq!(env.topology.route_count(), 6);
    }

    #[test]
    fn graph_shapes_have_the_expected_route_counts() {
        let n = 8;
        let count = |graph| {
            let params = FleetParams::new(4).with_sites(n, graph);
            fleet(&params).topology.route_count()
        };
        assert_eq!(count(SiteGraph::Mesh), n * (n - 1) / 2);
        assert_eq!(count(SiteGraph::Ring), n);
        assert_eq!(count(SiteGraph::HubSpoke), n - 1);
    }

    #[test]
    fn tiny_rings_do_not_duplicate_routes() {
        for sites in 1..=3 {
            let params = FleetParams::new(2).with_sites(sites, SiteGraph::Ring);
            let env = fleet(&params);
            let expected = match sites {
                1 => 0,
                2 => 1,
                _ => sites,
            };
            assert_eq!(env.topology.route_count(), expected, "{sites} sites");
        }
    }

    #[test]
    fn hub_spoke_routes_all_touch_the_hub() {
        let params = FleetParams::new(4).with_sites(5, SiteGraph::HubSpoke);
        let env = fleet(&params);
        assert!(env.topology.routes().iter().all(|r| r.touches(SiteId(0))));
    }

    #[test]
    fn zero_spread_reproduces_the_paper_mix() {
        let params = FleetParams::new(12).with_spread(0.0);
        let env = fleet(&params);
        let expected = WorkloadSet::scaled_paper_mix(12);
        assert_eq!(env.workloads, expected);
    }

    #[test]
    fn catalog_prefix_is_clamped_and_feasible() {
        let full = TechniqueCatalog::table2().len();
        let count = |choice| {
            let params = FleetParams::new(2).with_catalog(choice);
            fleet(&params).catalog.len()
        };
        assert_eq!(count(CatalogChoice::Prefix(3)), 3);
        assert_eq!(count(CatalogChoice::Prefix(0)), 1, "clamped up to one technique");
        assert_eq!(count(CatalogChoice::Prefix(99)), full, "clamped down to the full table");
        assert!(count(CatalogChoice::Extended) > full);
    }

    #[test]
    fn sites_get_twice_the_mean_apps_of_compute() {
        let params = FleetParams::new(64).with_sites(4, SiteGraph::Mesh);
        let env = fleet(&params);
        assert!(env.topology.sites().iter().all(|s| s.max_compute == 32));
    }

    #[test]
    fn device_slots_scale_with_fleet_density() {
        // 16 apps on 4 sites = the paper density: one slot set per site.
        let small = fleet(&FleetParams::new(16));
        assert!(small.topology.sites().iter().all(|s| s.array_slots.len() == 2));
        assert!(small.topology.routes().iter().all(|r| r.network.max_links == 32));
        // 256 apps on 4 sites = 64 per site → 16 slot sets, so large
        // fleets stay provisionable instead of going infeasible.
        let large = fleet(&FleetParams::new(256));
        for site in large.topology.sites() {
            assert_eq!(site.array_slots.len(), 32);
            assert_eq!(site.tape_slots.len(), 16);
        }
        assert!(large.topology.routes().iter().all(|r| r.network.max_links == 512));
    }

    #[test]
    #[ignore = "multi-minute at fleet scale; the fleet bench runs it in CI at small scale"]
    fn large_fleets_are_solvable() {
        use dsd_core::{Budget, DesignSolver};
        use rand::SeedableRng;

        let env = fleet(&FleetParams::new(256));
        let mut rng = ChaCha8Rng::seed_from_u64(2006);
        let outcome = DesignSolver::new(&env).solve(Budget::iterations(1), &mut rng);
        assert!(outcome.best.is_some(), "fleet(256) must admit a feasible design");
    }

    #[test]
    fn seeds_change_the_workloads() {
        let a = fleet(&FleetParams::new(8).with_seed(1));
        let b = fleet(&FleetParams::new(8).with_seed(2));
        assert_ne!(a.workloads, b.workloads);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The determinism contract: equal params → byte-identical
        /// environments, across every graph shape and catalog choice.
        #[test]
        fn fleet_is_byte_deterministic(
            apps in 1usize..40,
            sites in 1usize..8,
            graph_pick in 0u8..3,
            prefix in 0usize..12,
            spread in 0u32..200,
            seed in any::<u64>(),
        ) {
            let graph = match graph_pick {
                0 => SiteGraph::Ring,
                1 => SiteGraph::Mesh,
                _ => SiteGraph::HubSpoke,
            };
            let catalog = if prefix == 0 { CatalogChoice::Table2 } else { CatalogChoice::Prefix(prefix) };
            let params = FleetParams::new(apps)
                .with_sites(sites, graph)
                .with_catalog(catalog)
                .with_spread(f64::from(spread) / 100.0)
                .with_seed(seed);
            let a = fleet(&params);
            let b = fleet(&params);
            prop_assert_eq!(a.workloads, b.workloads);
            prop_assert_eq!(a.topology.as_ref(), b.topology.as_ref());
            prop_assert_eq!(a.catalog.len(), b.catalog.len());
        }
    }
}
