//! Live progress rendering for `dsd design --progress`.
//!
//! A [`ProgressMonitor`] owns a [`ProgressChannel`] plus a background
//! consumer thread that polls it (~10 Hz), folds the events into a
//! [`StatusState`], and — in live mode — repaints a one-line status on
//! stderr (stderr so piped stdout stays clean). All drained events are
//! retained and handed back by [`ProgressMonitor::finish`], so the same
//! stream can be written to a `--progress-log` JSONL file afterwards.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dsd_obs::progress::ProgressKind;
use dsd_obs::{ProgressChannel, ProgressEvent, ProgressGuard};

/// Rolling digest of a progress stream, rendered as the status line.
#[derive(Debug, Default, Clone)]
pub struct StatusState {
    phase: String,
    cost: Option<f64>,
    gap_pct: Option<f64>,
    lane_evals: BTreeMap<u64, u64>,
    restarts: u64,
    steals: u64,
    adoptions: u64,
    done: u64,
    elapsed_ns: u64,
}

impl StatusState {
    /// Folds a batch of events into the digest. Returns `true` when the
    /// batch changed anything worth repainting.
    pub fn absorb(&mut self, events: &[ProgressEvent]) -> bool {
        let mut dirty = false;
        for event in events {
            self.elapsed_ns = self.elapsed_ns.max(event.elapsed_ns);
            match &event.kind {
                ProgressKind::PhaseEntered { phase } => {
                    self.phase = phase.clone();
                }
                ProgressKind::IncumbentImproved { cost, gap_pct, evals } => {
                    self.cost = Some(*cost);
                    self.gap_pct = *gap_pct;
                    self.lane_evals.insert(event.worker, *evals);
                }
                ProgressKind::WorkerHeartbeat { evals, .. } => {
                    self.lane_evals.insert(event.worker, *evals);
                }
                ProgressKind::Restart { restarts } => {
                    self.restarts = self.restarts.max(*restarts);
                }
                ProgressKind::TaskStolen { .. } => {
                    self.steals += 1;
                }
                ProgressKind::IncumbentAdopted { .. } => {
                    self.adoptions += 1;
                }
                ProgressKind::Done { cost, gap_pct, evals } => {
                    if cost.is_some() {
                        self.cost = *cost;
                        self.gap_pct = *gap_pct;
                    }
                    self.lane_evals.insert(event.worker, *evals);
                    self.done += 1;
                }
            }
            dirty = true;
        }
        dirty
    }

    /// Total evaluations across worker lanes (each lane reports a
    /// cumulative count, so the sum over lane maxima is exact).
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.lane_evals.values().sum()
    }

    /// The one-line status rendering.
    #[must_use]
    pub fn line(&self) -> String {
        let mut out = format!("{:7.1}s", self.elapsed_ns as f64 / 1e9);
        if !self.phase.is_empty() {
            out.push_str(&format!(" [{}]", self.phase));
        }
        match self.cost {
            Some(cost) => out.push_str(&format!(" cost ${cost:.0}")),
            None => out.push_str(" cost —"),
        }
        if let Some(gap) = self.gap_pct {
            out.push_str(&format!(" gap {gap:.1}%"));
        }
        out.push_str(&format!(" evals {}", self.evals()));
        if self.lane_evals.len() > 1 {
            out.push_str(&format!(" workers {}", self.lane_evals.len()));
        }
        if self.restarts > 0 {
            out.push_str(&format!(" restarts {}", self.restarts));
        }
        if self.steals > 0 {
            out.push_str(&format!(" steals {}", self.steals));
        }
        if self.adoptions > 0 {
            out.push_str(&format!(" adoptions {}", self.adoptions));
        }
        if self.done > 0 {
            out.push_str(" done");
        }
        out
    }
}

/// Channel + consumer thread behind `--progress` / `--progress-log`.
pub struct ProgressMonitor {
    channel: ProgressChannel,
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<Vec<ProgressEvent>>,
}

impl ProgressMonitor {
    /// Starts the monitor. `live` controls the stderr status line; the
    /// event stream is collected either way.
    #[must_use]
    pub fn start(live: bool) -> Self {
        let channel = ProgressChannel::new();
        let stop = Arc::new(AtomicBool::new(false));
        let (poller, stopper) = (channel.clone(), Arc::clone(&stop));
        let handle = thread::spawn(move || {
            let mut events = Vec::new();
            let mut state = StatusState::default();
            loop {
                let finished = stopper.load(Ordering::Acquire);
                let batch = poller.poll();
                let dirty = state.absorb(&batch);
                events.extend(batch);
                if live && dirty {
                    // \r + clear-to-end keeps repaints on a single line.
                    eprint!("\r\x1b[K{}", state.line());
                    let _ = std::io::stderr().flush();
                }
                if finished {
                    break;
                }
                thread::sleep(Duration::from_millis(100));
            }
            if live {
                // Leave the final status visible and restore the cursor.
                eprintln!();
            }
            events
        });
        ProgressMonitor { channel, stop, handle }
    }

    /// Installs the underlying channel on the calling thread (the solver
    /// thread), returning the emission guard.
    #[must_use]
    pub fn install(&self) -> ProgressGuard {
        self.channel.install()
    }

    /// Events dropped by the bounded queue so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.channel.dropped()
    }

    /// Stops the consumer (after one final drain) and returns every
    /// collected event in emission order.
    #[must_use]
    pub fn finish(self) -> Vec<ProgressEvent> {
        self.stop.store(true, Ordering::Release);
        self.handle.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(worker: u64, ns: u64, kind: ProgressKind) -> ProgressEvent {
        ProgressEvent { worker, elapsed_ns: ns, kind }
    }

    #[test]
    fn status_line_digests_the_stream() {
        let mut state = StatusState::default();
        assert!(!state.absorb(&[]));
        let dirty = state.absorb(&[
            event(0, 1_000_000, ProgressKind::PhaseEntered { phase: "greedy".into() }),
            event(
                0,
                2_000_000,
                ProgressKind::IncumbentImproved { cost: 1234.0, gap_pct: Some(7.5), evals: 10 },
            ),
            event(
                1,
                3_000_000,
                ProgressKind::WorkerHeartbeat {
                    evals: 20,
                    evals_per_sec: 5.0,
                    cache_hit_rate: 0.5,
                },
            ),
            event(0, 4_000_000, ProgressKind::Restart { restarts: 2 }),
        ]);
        assert!(dirty);
        let line = state.line();
        assert!(line.contains("[greedy]"), "{line}");
        assert!(line.contains("cost $1234"), "{line}");
        assert!(line.contains("gap 7.5%"), "{line}");
        assert!(line.contains("evals 30"), "{line}");
        assert!(line.contains("workers 2"), "{line}");
        assert!(line.contains("restarts 2"), "{line}");
        assert!(!line.contains("done"), "{line}");

        state.absorb(&[event(
            0,
            5_000_000,
            ProgressKind::Done { cost: Some(1200.0), gap_pct: Some(5.0), evals: 15 },
        )]);
        let line = state.line();
        assert!(line.contains("cost $1200"), "{line}");
        assert!(line.contains("done"), "{line}");
        assert!(line.contains("evals 35"), "{line}");
    }

    #[test]
    fn monitor_collects_events_across_threads() {
        let monitor = ProgressMonitor::start(false);
        {
            let _g = monitor.install();
            dsd_obs::progress::phase_entered("greedy");
            dsd_obs::progress::incumbent_improved(10.0, Some(1.0), 5);
            dsd_obs::progress::done(Some(10.0), Some(1.0), 5);
        }
        assert_eq!(monitor.dropped(), 0);
        let events = monitor.finish();
        assert_eq!(events.len(), 3);
        assert!(matches!(events.last().unwrap().kind, ProgressKind::Done { .. }));
    }
}
