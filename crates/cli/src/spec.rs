//! TOML environment specification.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dsd_core::Environment;
use dsd_failure::{FailureModel, FailureRates};
use dsd_protection::TechniqueCatalog;
use dsd_resources::{DeviceSpec, NetworkSpec, Site, Topology};
use dsd_units::TimeSpan;
use dsd_units::{DollarsPerHour, Gigabytes, MegabytesPerSec, PerYear};
use dsd_workload::{PenaltyRates, PenaltySchedule, WorkloadProfile, WorkloadSet};

/// Errors raised while parsing or validating a spec.
#[derive(Debug)]
pub enum SpecError {
    /// The TOML text failed to parse.
    Parse(toml::de::Error),
    /// The spec parsed but is semantically invalid.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec parse error: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Parse(e) => Some(e),
            SpecError::Invalid(_) => None,
        }
    }
}

/// One application entry: either a named Table 1 profile or a fully
/// custom workload, optionally repeated `count` times.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ApplicationSpec {
    /// Built-in profile: `central-banking`, `company-web-service`,
    /// `consumer-banking`, or `student-accounts`.
    pub profile: Option<String>,
    /// Custom profile name (required when `profile` is absent).
    pub name: Option<String>,
    /// One-letter code for reports (custom profiles; default `X`).
    pub code: Option<char>,
    /// Outage penalty rate, $/hr (custom profiles).
    pub outage_per_hour: Option<f64>,
    /// Recent-loss penalty rate, $/hr (custom profiles).
    pub loss_per_hour: Option<f64>,
    /// Dataset capacity in GB (custom profiles).
    pub capacity_gb: Option<f64>,
    /// Average update rate, MB/s (custom profiles).
    pub avg_update_mbps: Option<f64>,
    /// Peak update rate, MB/s (custom profiles).
    pub peak_update_mbps: Option<f64>,
    /// Average access rate, MB/s (custom profiles).
    pub avg_access_mbps: Option<f64>,
    /// Unique-update fraction (default 0.6).
    pub unique_fraction: Option<f64>,
    /// Recovery-time objective in hours: outage up to this is free
    /// (deductible SLA schedule; requires `rpo_hours`).
    pub rto_hours: Option<f64>,
    /// Recovery-point objective in hours: loss up to this is free.
    pub rpo_hours: Option<f64>,
    /// One-time fine per breached objective (default 0).
    pub breach_fine: Option<f64>,
    /// Number of instances (default 1).
    pub count: Option<usize>,
}

/// Validates that a user-supplied numeric field is finite and
/// non-negative before it reaches an asserting constructor.
fn non_negative(value: f64, what: &str) -> Result<f64, SpecError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(SpecError::Invalid(format!("`{what}` must be finite and non-negative: {value}")))
    }
}

impl ApplicationSpec {
    fn schedule(&self) -> Result<PenaltySchedule, SpecError> {
        match (self.rto_hours, self.rpo_hours) {
            (None, None) => Ok(PenaltySchedule::Linear),
            (Some(rto), Some(rpo)) => Ok(PenaltySchedule::Deductible {
                rto: TimeSpan::from_hours(non_negative(rto, "rto_hours")?),
                rpo: TimeSpan::from_hours(non_negative(rpo, "rpo_hours")?),
                breach_fine: dsd_units::Dollars::new(non_negative(
                    self.breach_fine.unwrap_or(0.0),
                    "breach_fine",
                )?),
            }),
            _ => Err(SpecError::Invalid("rto_hours and rpo_hours must be given together".into())),
        }
    }

    fn to_profile(&self) -> Result<WorkloadProfile, SpecError> {
        let schedule = self.schedule()?;
        if let Some(name) = &self.profile {
            let base = match name.as_str() {
                "central-banking" => WorkloadProfile::central_banking(),
                "company-web-service" => WorkloadProfile::company_web_service(),
                "consumer-banking" => WorkloadProfile::consumer_banking(),
                "student-accounts" => WorkloadProfile::student_accounts(),
                other => {
                    return Err(SpecError::Invalid(format!("unknown built-in profile: {other}")))
                }
            };
            return Ok(base.with_schedule(schedule));
        }
        let field = |v: Option<f64>, what: &str| {
            let value = v.ok_or_else(|| {
                SpecError::Invalid(format!("custom application missing `{what}`"))
            })?;
            non_negative(value, what)
        };
        let name = self
            .name
            .clone()
            .ok_or_else(|| SpecError::Invalid("application needs `profile` or `name`".into()))?;
        let unique_fraction = self.unique_fraction.unwrap_or(0.6);
        if !(unique_fraction > 0.0 && unique_fraction <= 1.0) {
            return Err(SpecError::Invalid(format!(
                "`unique_fraction` must be in (0, 1]: {unique_fraction}"
            )));
        }
        let avg_update = field(self.avg_update_mbps, "avg_update_mbps")?;
        let peak_update = field(self.peak_update_mbps, "peak_update_mbps")?;
        if peak_update < avg_update {
            return Err(SpecError::Invalid(format!(
                "`peak_update_mbps` ({peak_update}) must be at least `avg_update_mbps` ({avg_update})"
            )));
        }
        Ok(WorkloadProfile::new(
            name,
            self.code.unwrap_or('X'),
            PenaltyRates::new(
                DollarsPerHour::new(field(self.outage_per_hour, "outage_per_hour")?),
                DollarsPerHour::new(field(self.loss_per_hour, "loss_per_hour")?),
            ),
            Gigabytes::new(field(self.capacity_gb, "capacity_gb")?),
            MegabytesPerSec::new(avg_update),
            MegabytesPerSec::new(peak_update),
            MegabytesPerSec::new(field(self.avg_access_mbps, "avg_access_mbps")?),
            unique_fraction,
        )
        .with_schedule(schedule))
    }
}

/// One site entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SiteSpec {
    /// Site name.
    pub name: String,
    /// Array slots: `xp1200`, `eva800`, or `msa1500`.
    #[serde(default)]
    pub arrays: Vec<String>,
    /// Tape library slots: `high` or `med`.
    #[serde(default)]
    pub tape_libraries: Vec<String>,
    /// Compute servers available (default 0).
    #[serde(default)]
    pub compute: u32,
    /// Facility cost in dollars (default $1M, Table 3).
    pub facility_cost: Option<f64>,
}

impl SiteSpec {
    fn to_site(&self, id: usize) -> Result<Site, SpecError> {
        let mut site = Site::new(id, self.name.clone()).with_compute(self.compute);
        if let Some(cost) = self.facility_cost {
            site = site
                .with_facility_cost(dsd_units::Dollars::new(non_negative(cost, "facility_cost")?));
        }
        for a in &self.arrays {
            let spec = match a.as_str() {
                "xp1200" => DeviceSpec::xp1200(),
                "eva800" => DeviceSpec::eva800(),
                "msa1500" => DeviceSpec::msa1500(),
                other => return Err(SpecError::Invalid(format!("unknown array model: {other}"))),
            };
            site = site.with_array_slot(spec);
        }
        for t in &self.tape_libraries {
            let spec = match t.as_str() {
                "high" => DeviceSpec::tape_library_high(),
                "med" => DeviceSpec::tape_library_med(),
                other => {
                    return Err(SpecError::Invalid(format!("unknown tape library class: {other}")))
                }
            };
            site = site.with_tape_library(spec);
        }
        Ok(site)
    }
}

/// Network section: all sites are fully connected with this link class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct NetworkSpecEntry {
    /// Link class: `high` (20 MB/s, 32 links) or `med` (10 MB/s, 16).
    pub class: String,
}

/// Failure likelihood section (annualized rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FailureSpec {
    /// Data object failures per application per year.
    pub data_object_per_year: f64,
    /// Disk array failures per array per year.
    pub disk_array_per_year: f64,
    /// Site disasters per site per year.
    pub site_disaster_per_year: f64,
}

impl Default for FailureSpec {
    /// The paper's case-study rates.
    fn default() -> Self {
        FailureSpec {
            data_object_per_year: 1.0 / 3.0,
            disk_array_per_year: 1.0 / 3.0,
            site_disaster_per_year: 1.0 / 5.0,
        }
    }
}

/// A complete environment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct EnvironmentSpec {
    /// Application entries.
    pub applications: Vec<ApplicationSpec>,
    /// Site entries.
    pub sites: Vec<SiteSpec>,
    /// Inter-site network (fully connected).
    pub network: NetworkSpecEntry,
    /// Failure rates (default: the paper's case study).
    #[serde(default)]
    pub failures: FailureSpec,
    /// Technique catalog: `table2` (default) or `extended`.
    pub catalog: Option<String>,
}

impl EnvironmentSpec {
    /// Parses a TOML spec.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed TOML.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        toml::from_str(text).map_err(SpecError::Parse)
    }

    /// Renders the spec back to TOML (for `dsd init` scaffolding).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    #[must_use]
    pub fn to_toml(&self) -> String {
        toml::to_string_pretty(self).expect("spec serializes")
    }

    /// Builds the solver environment.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when the spec is semantically broken (no
    /// applications, unknown device names, missing custom fields, ...).
    pub fn to_environment(&self) -> Result<Environment, SpecError> {
        if self.applications.is_empty() {
            return Err(SpecError::Invalid("at least one application is required".into()));
        }
        if self.sites.is_empty() {
            return Err(SpecError::Invalid("at least one site is required".into()));
        }

        let mut workloads = WorkloadSet::new();
        for entry in &self.applications {
            let profile = entry.to_profile()?;
            for _ in 0..entry.count.unwrap_or(1) {
                workloads.push(profile.clone());
            }
        }
        if workloads.is_empty() {
            return Err(SpecError::Invalid(
                "every application entry has `count = 0`; nothing to protect".into(),
            ));
        }

        let sites = self
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| s.to_site(i))
            .collect::<Result<Vec<_>, _>>()?;
        let network = match self.network.class.as_str() {
            "high" => NetworkSpec::high(),
            "med" => NetworkSpec::med(),
            other => return Err(SpecError::Invalid(format!("unknown network class: {other}"))),
        };
        let topology = Arc::new(Topology::fully_connected(sites, network));

        let catalog = match self.catalog.as_deref() {
            None | Some("table2") => TechniqueCatalog::table2(),
            Some("extended") => TechniqueCatalog::extended(),
            Some(other) => return Err(SpecError::Invalid(format!("unknown catalog: {other}"))),
        };

        let rates = FailureRates {
            data_object: PerYear::new(non_negative(
                self.failures.data_object_per_year,
                "data_object_per_year",
            )?),
            disk_array: PerYear::new(non_negative(
                self.failures.disk_array_per_year,
                "disk_array_per_year",
            )?),
            site_disaster: PerYear::new(non_negative(
                self.failures.site_disaster_per_year,
                "site_disaster_per_year",
            )?),
        };

        Ok(Environment::new(workloads, topology, catalog, FailureModel::new(rates)))
    }

    /// A ready-to-edit example spec (the peer-sites case study).
    #[must_use]
    pub fn example() -> Self {
        EnvironmentSpec {
            applications: vec![
                ApplicationSpec {
                    profile: Some("central-banking".into()),
                    count: Some(2),
                    ..ApplicationSpec::default()
                },
                ApplicationSpec {
                    profile: Some("company-web-service".into()),
                    count: Some(2),
                    ..ApplicationSpec::default()
                },
                ApplicationSpec {
                    profile: Some("consumer-banking".into()),
                    count: Some(2),
                    ..ApplicationSpec::default()
                },
                ApplicationSpec {
                    profile: Some("student-accounts".into()),
                    count: Some(2),
                    ..ApplicationSpec::default()
                },
            ],
            sites: ["P1", "P2"]
                .iter()
                .map(|name| SiteSpec {
                    name: (*name).into(),
                    arrays: vec!["xp1200".into(), "msa1500".into()],
                    tape_libraries: vec!["high".into()],
                    compute: 8,
                    facility_cost: None,
                })
                .collect(),
            network: NetworkSpecEntry { class: "high".into() },
            failures: FailureSpec::default(),
            catalog: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_spec_roundtrips_and_builds() {
        let spec = EnvironmentSpec::example();
        let toml_text = spec.to_toml();
        let parsed = EnvironmentSpec::from_toml(&toml_text).expect("valid");
        assert_eq!(parsed, spec);
        let env = parsed.to_environment().expect("buildable");
        assert_eq!(env.workloads.len(), 8);
        assert_eq!(env.topology.site_count(), 2);
        assert_eq!(env.catalog.len(), 9);
    }

    #[test]
    fn custom_application_parses() {
        let text = r#"
            [[applications]]
            name = "oltp"
            code = "O"
            outage_per_hour = 1000000.0
            loss_per_hour = 50000.0
            capacity_gb = 2000.0
            avg_update_mbps = 3.0
            peak_update_mbps = 30.0
            avg_access_mbps = 30.0

            [[sites]]
            name = "A"
            arrays = ["eva800"]
            tape_libraries = ["med"]
            compute = 4

            [network]
            class = "med"
        "#;
        let spec = EnvironmentSpec::from_toml(text).expect("parses");
        let env = spec.to_environment().expect("builds");
        assert_eq!(env.workloads.len(), 1);
        let app = env.workloads.iter().next().unwrap();
        assert_eq!(app.profile.name, "oltp");
        assert_eq!(app.capacity().as_f64(), 2000.0);
        assert_eq!(env.failures.rates().site_disaster.as_f64(), 0.2, "defaults applied");
    }

    #[test]
    fn sla_schedule_parses() {
        let text = r#"
            [[applications]]
            profile = "consumer-banking"
            rto_hours = 4.0
            rpo_hours = 0.5
            breach_fine = 250000.0

            [[sites]]
            name = "A"
            arrays = ["eva800"]
            tape_libraries = ["med"]
            compute = 4

            [network]
            class = "med"
        "#;
        let env = EnvironmentSpec::from_toml(text).unwrap().to_environment().unwrap();
        let app = env.workloads.iter().next().unwrap();
        match app.profile.schedule {
            PenaltySchedule::Deductible { rto, rpo, breach_fine } => {
                assert_eq!(rto.as_hours(), 4.0);
                assert_eq!(rpo.as_mins(), 30.0);
                assert_eq!(breach_fine.as_f64(), 250_000.0);
            }
            PenaltySchedule::Linear => panic!("expected deductible schedule"),
        }
    }

    #[test]
    fn lone_rto_is_rejected() {
        let text = r#"
            [[applications]]
            profile = "student-accounts"
            rto_hours = 4.0

            [[sites]]
            name = "A"

            [network]
            class = "med"
        "#;
        let err = EnvironmentSpec::from_toml(text).unwrap().to_environment().unwrap_err();
        assert!(err.to_string().contains("rto_hours and rpo_hours"));
    }

    #[test]
    fn extended_catalog_selectable() {
        let mut spec = EnvironmentSpec::example();
        spec.catalog = Some("extended".into());
        let env = spec.to_environment().unwrap();
        assert_eq!(env.catalog.len(), 14);
    }

    #[test]
    fn bad_specs_are_rejected_with_messages() {
        let mut spec = EnvironmentSpec::example();
        spec.applications.clear();
        assert!(matches!(spec.to_environment(), Err(SpecError::Invalid(_))));

        let mut spec = EnvironmentSpec::example();
        spec.sites[0].arrays.push("weird9000".into());
        let err = spec.to_environment().unwrap_err();
        assert!(err.to_string().contains("weird9000"));

        let mut spec = EnvironmentSpec::example();
        spec.network.class = "quantum".into();
        assert!(spec.to_environment().is_err());

        let missing = r#"
            [[applications]]
            name = "incomplete"

            [[sites]]
            name = "A"

            [network]
            class = "med"
        "#;
        let err = EnvironmentSpec::from_toml(missing).unwrap().to_environment().unwrap_err();
        assert!(
            err.to_string().contains("missing"),
            "incomplete custom app must name a missing field: {err}"
        );
    }

    #[test]
    fn invalid_numeric_values_become_spec_errors_not_panics() {
        // Negative failure rate.
        let mut spec = EnvironmentSpec::example();
        spec.failures.data_object_per_year = -1.0;
        let err = spec.to_environment().unwrap_err();
        assert!(err.to_string().contains("data_object_per_year"));

        // Out-of-range unique fraction on a custom profile.
        let text = r#"
            [[applications]]
            name = "x"
            outage_per_hour = 1.0
            loss_per_hour = 1.0
            capacity_gb = 10.0
            avg_update_mbps = 1.0
            peak_update_mbps = 2.0
            avg_access_mbps = 2.0
            unique_fraction = 7.0

            [[sites]]
            name = "A"

            [network]
            class = "med"
        "#;
        let err = EnvironmentSpec::from_toml(text).unwrap().to_environment().unwrap_err();
        assert!(err.to_string().contains("unique_fraction"));

        // Peak below average.
        let text = text
            .replace("peak_update_mbps = 2.0", "peak_update_mbps = 0.5")
            .replace("unique_fraction = 7.0", "unique_fraction = 0.5");
        let err = EnvironmentSpec::from_toml(&text).unwrap().to_environment().unwrap_err();
        assert!(err.to_string().contains("peak_update_mbps"));

        // Negative capacity.
        let text2 = text
            .replace("capacity_gb = 10.0", "capacity_gb = -10.0")
            .replace("peak_update_mbps = 0.5", "peak_update_mbps = 2.0");
        let err = EnvironmentSpec::from_toml(&text2).unwrap().to_environment().unwrap_err();
        assert!(err.to_string().contains("capacity_gb"));
    }

    #[test]
    fn all_zero_counts_rejected() {
        let mut spec = EnvironmentSpec::example();
        for a in &mut spec.applications {
            a.count = Some(0);
        }
        let err = spec.to_environment().unwrap_err();
        assert!(err.to_string().contains("count = 0"));
    }

    #[test]
    fn unknown_toml_keys_rejected() {
        let text = r#"
            typo_section = true

            [[applications]]
            profile = "central-banking"

            [[sites]]
            name = "A"

            [network]
            class = "med"
        "#;
        assert!(matches!(EnvironmentSpec::from_toml(text), Err(SpecError::Parse(_))));
    }
}
